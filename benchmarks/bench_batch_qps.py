"""Batch-execution throughput — single-query vs batched vs parallel QPS.

Writes the ``BENCH_batch_qps.json`` perf-trajectory artifact at the repo
root so CI can track executor throughput over time.  Runnable standalone
(``PYTHONPATH=src python benchmarks/bench_batch_qps.py``) or through
pytest like the other bench files.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench import cache
from repro.bench.efficiency import batch_throughput
from repro.bench.harness import format_table, save_table
from repro.core.query import Query, SearchOptions

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_batch_qps.json"


def run(kind: str = "image") -> dict:
    """Run the experiment and write the JSON artifact."""
    table, payload = batch_throughput(kind)
    save_table(table, "batch_qps")
    print(format_table(table))
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_batch_qps(benchmark, capsys):
    from benchmarks.conftest import emit

    table, payload = batch_throughput("image")
    emit(table, "batch_qps", capsys)
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    # Acceptance guard: the GEMM-batched exact path must beat the
    # per-query exact loop on throughput.
    modes = payload["modes"]
    assert (
        modes["exact/executor GEMM batch"]["qps"]
        > modes["exact/single-query loop"]["qps"]
    )
    # Wave acceptance: the lockstep engine must actually have run as
    # the default batch plan, beat the single-query graph loop by the
    # ≥1.5× bar, and give up no recall against the per-query engine.
    wave = modes["graph/wave"]
    assert wave["plan"] == "graph/wave"
    assert wave["qps"] >= 1.5 * modes["graph/single-query loop"]["qps"]
    assert wave["recall"] >= modes["graph/executor n_jobs=1"]["recall"] - 0.005
    enc, must = cache.largescale_must("image")
    queries = list(enc.queries[:16])
    benchmark(
        lambda: must.query(
            [Query(q) for q in queries], SearchOptions(k=10, l=80, n_jobs=4)
        )
    )


def main() -> int:
    """Standalone entry point; non-zero exit on a broken/empty harness
    so the CI bench-smoke job cannot green-wash a failed run."""
    out = run()
    modes = out.get("modes", {})
    if not modes or not all(m.get("qps", 0.0) > 0.0 for m in modes.values()):
        print("bench_batch_qps: empty or zero-QPS payload", file=sys.stderr)
        return 1
    print(json.dumps(modes, indent=2))
    print(f"wrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
