"""Vector-store compression trade-off — bytes vs recall vs QPS.

Re-seats one fused graph on every :data:`~repro.store.STORE_KINDS`
backend (float32 / float16 / int8-SQ / PQ) and measures resident
hot-tier bytes, graph-search recall against exact full-precision ground
truth (raw codes and with the two-stage ``refine=`` rerank), and batched
QPS.  Writes the ``BENCH_compression.json`` artifact at the repo root.
Runnable standalone
(``PYTHONPATH=src python benchmarks/bench_compression.py``) or through
pytest like the other bench files.  Scale via ``REPRO_COMPRESSION_N``
and ``REPRO_LARGESCALE_QUERIES``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.efficiency import compression_tradeoff
from repro.bench.harness import format_table, save_table
from repro.core.query import Query, SearchOptions

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_compression.json"


def run(kind: str = "image") -> dict:
    """Run the experiment and write the JSON artifact."""
    table, payload = compression_tradeoff(kind)
    save_table(table, "compression")
    print(format_table(table))
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_compression_tradeoff(benchmark, capsys):
    from benchmarks.conftest import emit

    table, payload = compression_tradeoff("image")
    emit(table, "compression", capsys)
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    backends = payload["backends"]
    # The dense backend is the bit-identical reference point.
    assert backends["none"]["compression_ratio"] == 1.0
    # Acceptance guards (ISSUE 3): the quantised backends must cut
    # resident vector bytes >= 3x while refine=4 holds recall@10 at
    # >= 0.95 of exact search.
    for kind in ("int8", "pq"):
        assert backends[kind]["compression_ratio"] >= 3.0, kind
        assert backends[kind]["recall_at_10"] >= 0.95, kind
    assert backends["float16"]["compression_ratio"] >= 2.0
    assert backends["float16"]["recall_at_10"] >= 0.95
    # Rerank actually ran on the compressed backends.
    for kind in ("float16", "int8", "pq"):
        assert backends[kind]["reranked_per_query"] > 0, kind

    from repro.bench import cache
    from repro.core.framework import MUST
    from repro.core.weights import Weights

    enc = cache.largescale_encoded("image", cache.COMPRESSION_N)
    queries = list(enc.queries[:16])
    must = MUST(
        enc.objects,
        weights=Weights.uniform(enc.objects.num_modalities),
        compression="int8",
    ).build()
    benchmark(
        lambda: must.query(
            [Query(q) for q in queries], SearchOptions(k=10, l=100, refine=4)
        )
    )


def main() -> int:
    """Standalone entry point; non-zero exit on a broken/empty harness
    so the CI bench-smoke job cannot green-wash a failed run."""
    out = run()
    backends = out.get("backends", {})
    if not backends or not all(
        v.get("qps", 0.0) > 0.0 and "recall_at_10" in v
        for v in backends.values()
    ):
        print("bench_compression: empty or zero-QPS payload",
              file=sys.stderr)
        return 1
    summary = {
        kind: {
            "compression_ratio": round(v["compression_ratio"], 2),
            "recall_at_10": round(v["recall_at_10"], 4),
            "qps": round(v["qps"], 1),
        }
        for kind, v in backends.items()
    }
    print(json.dumps(summary, indent=2))
    print(f"wrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
