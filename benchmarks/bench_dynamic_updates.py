"""Dynamic-update throughput — streaming inserts/searches/deletes QPS.

Exercises the segmented subsystem (§IX made automatic): interleaved
insert/search/delete traffic, auto-sealing and compaction, then
steady-state search QPS compared against a freshly built single-segment
index.  Writes the ``BENCH_dynamic_qps.json`` perf-trajectory artifact at
the repo root.  Runnable standalone
(``PYTHONPATH=src python benchmarks/bench_dynamic_updates.py``) or
through pytest like the other bench files.  Scale via ``REPRO_DYNAMIC_N``
and ``REPRO_LARGESCALE_QUERIES``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.efficiency import dynamic_throughput
from repro.bench.harness import format_table, save_table
from repro.core.query import Query, SearchOptions

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_dynamic_qps.json"


def run(kind: str = "image") -> dict:
    """Run the experiment and write the JSON artifact."""
    table, payload = dynamic_throughput(kind)
    save_table(table, "dynamic_qps")
    print(format_table(table))
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_dynamic_qps(benchmark, capsys):
    from benchmarks.conftest import emit

    table, payload = dynamic_throughput("image")
    emit(table, "dynamic_qps", capsys)
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    # Acceptance guards: the stream must actually exercise the segment
    # lifecycle, and steady-state QPS after auto-compaction must stay
    # within 10% of a freshly built single-segment index.
    life = payload["lifecycle"]
    assert life["seals"] + life["compactions"] > 0
    assert len(life["segments"]) == 1
    assert payload["steady_vs_fresh"] >= 0.9
    assert payload["steady_recall"] >= 0.9

    from repro.bench import cache

    enc = cache.largescale_encoded("image", cache.DYNAMIC_N)
    queries = list(enc.queries[:16])
    from repro.core.framework import MUST
    from repro.core.weights import Weights
    from repro.index.segments import SegmentPolicy
    import numpy as np

    must = MUST(
        enc.objects.subset(np.arange(enc.objects.n // 2)),
        weights=Weights.uniform(enc.objects.num_modalities),
        segment_policy=SegmentPolicy(seal_size=enc.objects.n),
    ).build()
    must.insert(enc.objects.subset(
        np.arange(enc.objects.n // 2, enc.objects.n // 2 + 64)
    ))
    benchmark(
        lambda: must.query([Query(q) for q in queries], SearchOptions(k=10, l=80))
    )


def main() -> int:
    """Standalone entry point; non-zero exit on a broken/empty harness
    so the CI bench-smoke job cannot green-wash a failed run."""
    out = run()
    required = ("insert_qps", "interleaved_search_qps", "steady_qps",
                "steady_recall")
    if not out.get("lifecycle") or any(
        out.get(key, 0.0) <= 0.0 for key in required
    ):
        print("bench_dynamic_updates: empty or zero-QPS payload",
              file=sys.stderr)
        return 1
    print(json.dumps({k: v for k, v in out.items() if k != "lifecycle"},
                     indent=2))
    print(f"wrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
