"""Fig. 10(a,b) — proximity-graph ablation: 7 builders, build + search."""

from repro.bench import cache
from repro.bench.ablations import fig10ab_graph_zoo
from repro.core.space import JointSpace
from repro.index import FusedIndexBuilder

from benchmarks.conftest import emit


def test_fig10ab_graph_zoo(benchmark, capsys):
    table = fig10ab_graph_zoo()
    emit(table, "fig10ab_graph_zoo", capsys)
    enc, must = cache.largescale_must("image", 8_000)
    space = JointSpace(enc.objects, must.weights)
    benchmark.pedantic(
        lambda: FusedIndexBuilder(gamma=24, seed=0).build(space),
        rounds=2, iterations=1,
    )
