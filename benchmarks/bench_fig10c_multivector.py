"""Fig. 10(c) — the Lemma-4 multi-vector computation optimisation."""

from repro.bench import cache
from repro.bench.efficiency import fig10c_multivector

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_fig10c_multivector(benchmark, capsys):
    table = fig10c_multivector()
    emit(table, "fig10c_multivector", capsys)
    enc, must = cache.largescale_must("image")
    query = enc.queries[0]
    benchmark(
        lambda: must.query(
            Query(query), SearchOptions(k=10, l=80, early_termination=True)
        )
    )
