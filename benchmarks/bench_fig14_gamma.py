"""Fig. 14/15 — effect of the maximum neighbour count γ on the fused index."""

from repro.bench import cache
from repro.bench.ablations import fig14_gamma

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_fig14_gamma(benchmark, capsys):
    table = fig14_gamma()
    emit(table, "fig14_gamma", capsys)
    enc, must = cache.largescale_must("image", 8_000)
    query = enc.queries[0]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=10, l=80)))
