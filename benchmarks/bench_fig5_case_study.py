"""Fig. 5 / Fig. 11 — qualitative case studies (labelled text renditions)."""

from repro.bench import cache
from repro.bench.case_study import fig5_case_study, fig11_neighbors

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_fig5_case_study(benchmark, capsys):
    table = fig5_case_study()
    emit(table, "fig5_case_study", capsys)
    enc, must, test = cache.trained_must("mitstates", "resnet50", ("lstm",))
    query = enc.queries[test[0]]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=5, l=128)))


def test_fig11_neighbors(benchmark, capsys):
    table = fig11_neighbors()
    emit(table, "fig11_neighbors", capsys)
    enc, must, _ = cache.trained_must("celeba", "clip", ("encoding",))
    v = must.index.seed_vertex
    benchmark(lambda: must.space.rows_vs_one(must.index.neighbors[v], v))
