"""Fig. 6 — QPS vs Recall@10(10) on ImageText / AudioText / VideoText."""

import pytest

from repro.bench import cache
from repro.bench.efficiency import fig6_qps_recall

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


@pytest.mark.parametrize("kind", ["image", "audio", "video"])
def test_fig6_qps_recall(benchmark, capsys, kind):
    table = fig6_qps_recall(kind)
    emit(table, f"fig6_{kind}text", capsys)
    enc, must = cache.largescale_must(kind)
    query = enc.queries[0]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=10, l=80)))
