"""Fig. 7 — index build time and size vs data volume (MUST vs MR)."""

from repro.bench import cache
from repro.bench.efficiency import fig7_build_cost
from repro.core.space import JointSpace
from repro.index.nndescent import nndescent

from benchmarks.conftest import emit


def test_fig7_build_cost(benchmark, capsys):
    table = fig7_build_cost()
    emit(table, "fig7_build_cost", capsys)
    # Representative op: one NNDescent iteration at the smallest volume.
    enc, must = cache.largescale_must("image", 2_500)
    space = JointSpace(enc.objects, must.weights)
    benchmark.pedantic(
        lambda: nndescent(space, k=20, iterations=1, seed=0),
        rounds=3, iterations=1,
    )
