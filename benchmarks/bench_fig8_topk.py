"""Fig. 8 — effect of the number of results k (MUST vs MR)."""

from repro.bench import cache
from repro.bench.efficiency import fig8_topk

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_fig8_topk(benchmark, capsys):
    table = fig8_topk()
    emit(table, "fig8_topk", capsys)
    enc, must = cache.largescale_must("image")
    query = enc.queries[0]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=100, l=400)))
