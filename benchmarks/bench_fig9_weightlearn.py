"""Fig. 9 / Fig. 13 — weight-learning ablations (negatives strategy/count)."""

import numpy as np

from repro.bench import cache
from repro.bench.ablations import fig9_negative_strategies, fig13_negative_counts
from repro.weightlearn import VectorWeightLearner

from benchmarks.conftest import emit


def _one_epoch_fit():
    enc, _ = cache.largescale_must("image")
    anchors = enc.queries[:20]
    positives = np.asarray([enc.ground_truth[i][0] for i in range(20)])
    learner = VectorWeightLearner(epochs=1, seed=0)
    return lambda: learner.fit(anchors, positives, enc.objects)


def test_fig9_negative_strategies(benchmark, capsys):
    table = fig9_negative_strategies()
    emit(table, "fig9_negatives", capsys)
    benchmark.pedantic(_one_epoch_fit(), rounds=3, iterations=1)


def test_fig13_negative_counts(benchmark, capsys):
    table = fig13_negative_counts()
    emit(table, "fig13_negative_counts", capsys)
    benchmark.pedantic(_one_epoch_fit(), rounds=3, iterations=1)
