"""Filtered-search throughput — attribute-filter pushdown vs post-filter.

Writes the ``BENCH_filtered_qps.json`` perf-trajectory artifact at the
repo root so CI can track the typed Query API's filter pushdown over
time (gated by ``check_regression.py`` on qps/speedup/recall keys).
Runnable standalone (``PYTHONPATH=src python
benchmarks/bench_filtered_qps.py``) or through pytest like the other
bench files; ``REPRO_FILTERED_N`` scales the corpus for smoke runs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.efficiency import filtered_throughput
from repro.bench.harness import format_table, save_table

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_filtered_qps.json"

#: the filtered graph path must stay this close to the exact oracle.
MIN_GRAPH_RECALL = 0.9


def run(kind: str = "image") -> dict:
    """Run the experiment and write the JSON artifact."""
    table, payload = filtered_throughput(kind)
    save_table(table, "filtered_qps")
    print(format_table(table))
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _check(payload: dict) -> list[str]:
    """Acceptance guards shared by the pytest and standalone entries."""
    problems = []
    modes = payload.get("modes", {})
    if not modes:
        problems.append("empty payload")
        return problems
    for name, mode in modes.items():
        if not mode.get("qps", 0.0) > 0.0:
            problems.append(f"{name}: zero/missing qps")
    recall = modes.get("graph/filtered", {}).get("recall_vs_oracle", 0.0)
    if recall < MIN_GRAPH_RECALL:
        problems.append(
            f"graph/filtered recall {recall:.3f} < {MIN_GRAPH_RECALL}"
        )
    # Structural guard (stable across noisy runners): pushdown costs
    # about one unfiltered scan — it must never degrade to a multiple of
    # it.  Run-to-run speedup drift vs the naive post-filter loop is
    # gated against the committed baseline by check_regression.py.
    pushdown = modes.get("exact/filtered_pushdown", {}).get("qps", 0.0)
    unfiltered = modes.get("exact/unfiltered", {}).get("qps", 0.0)
    if pushdown < 0.5 * unfiltered:
        problems.append(
            f"filter pushdown QPS {pushdown:.0f} fell below half the "
            f"unfiltered scan ({unfiltered:.0f}) — the mask is no longer "
            f"intersected inside the scan"
        )
    return problems


def test_filtered_qps(benchmark, capsys):
    from benchmarks.conftest import emit

    table, payload = filtered_throughput("image")
    emit(table, "filtered_qps", capsys)
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    problems = _check(payload)
    assert not problems, problems
    from repro.bench import cache
    from repro.core.query import Eq, Query, Range, SearchOptions

    enc, must = cache.largescale_must("image", cache.FILTERED_N)
    flt = Eq("category", "alpha") & Range("price", high=70.0)
    queries = [Query(q, filter=flt) for q in enc.queries[:16]]
    benchmark(
        lambda: must.query(queries, SearchOptions(k=10, exact=True))
    )


def main() -> int:
    """Standalone entry point; non-zero exit on a broken/empty payload
    so the CI bench-smoke job cannot green-wash a failed run."""
    out = run()
    problems = _check(out)
    if problems:
        for problem in problems:
            print(f"bench_filtered_qps: {problem}", file=sys.stderr)
        return 1
    print(json.dumps(out["modes"], indent=2))
    print(f"wrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
