"""Hybrid dense+lexical retrieval — accuracy lift, engine parity, QPS.

Writes the ``BENCH_hybrid_qps.json`` perf-trajectory artifact at the
repo root so CI can track the sparse subsystem over time (gated by
``check_regression.py`` on qps/speedup/recall keys).  The run itself
enforces the subsystem's two hard gates:

* hybrid recall@10 must *strictly* beat dense-only recall on the
  planted two-level corpus (dense resolves the topic, only the rare
  lexical terms pin the group — see
  :mod:`repro.sparse.synthetic`), and
* the inverted posting-list engine must answer bit-identically to the
  brute-force CSR oracle while scoring at least 1.5x its throughput.

Runnable standalone (``PYTHONPATH=src python
benchmarks/bench_hybrid_qps.py``) or through pytest like the other
bench files; ``REPRO_HYBRID_N`` / ``REPRO_HYBRID_QUERIES`` scale the
corpus for smoke runs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.efficiency import hybrid_throughput
from repro.bench.harness import format_table, save_table

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_hybrid_qps.json"

#: the posting-list engine must clearly beat the full-plane scan.
MIN_ENGINE_SPEEDUP = 1.5


def run() -> dict:
    """Run the experiment and write the JSON artifact."""
    table, payload = hybrid_throughput()
    save_table(table, "hybrid_qps")
    print(format_table(table))
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _check(payload: dict) -> list[str]:
    """Acceptance gates as human-readable failures."""
    failures: list[str] = []
    if not payload.get("engines_bitwise_equal", False):
        failures.append(
            "inverted engine diverged from the brute-force oracle — the "
            "posting-list scatter-add must be bit-identical"
        )
    accuracy = payload.get("accuracy", {})
    dense = accuracy.get("dense_only_recall", 1.0)
    hybrid = accuracy.get("hybrid_recall", 0.0)
    if not hybrid > dense:
        failures.append(
            f"hybrid recall {hybrid:.3f} does not beat dense-only "
            f"{dense:.3f} — lexical fusion is adding cost without signal"
        )
    speedup = payload["throughput"]["inverted_speedup_vs_bruteforce"]
    if speedup < MIN_ENGINE_SPEEDUP:
        failures.append(
            f"inverted engine only {speedup:.2f}x the brute-force scan "
            f"(< {MIN_ENGINE_SPEEDUP}x) — the posting lists are no longer "
            f"skipping untouched rows"
        )
    return failures


def test_hybrid_qps(benchmark, capsys):
    from benchmarks.conftest import emit

    table, payload = hybrid_throughput()
    emit(table, "hybrid_qps", capsys)
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    assert not _check(payload), _check(payload)

    import numpy as np

    from repro.bench import cache
    from repro.core.framework import MUST
    from repro.core.multivector import MultiVector, MultiVectorSet
    from repro.core.query import Query, SearchOptions
    from repro.core.weights import Weights
    from repro.sparse.synthetic import synthetic_hybrid

    ds = synthetic_hybrid(
        n_topics=max(2, cache.HYBRID_N // 50),
        num_queries=min(cache.HYBRID_QUERIES, 16),
        seed=0,
    )
    must = MUST(
        MultiVectorSet([ds.dense], sparse=ds.sparse),
        weights=Weights([1.0]),
    ).build()
    queries = [
        Query(MultiVector.from_arrays([qd]), sparse=qs)
        for qd, qs in zip(ds.query_dense, ds.query_sparse)
    ]
    benchmark(lambda: must.query(queries, SearchOptions(k=10, l=80)))
    assert all(np.all(np.isfinite(r.similarities)) for r in must.query(
        queries, SearchOptions(k=10, l=80)
    ))


def main() -> int:
    """Standalone entry point; non-zero exit on a gate failure so the
    CI bench-smoke job cannot green-wash a failed run."""
    payload = run()
    failures = _check(payload)
    for failure in failures:
        print(f"bench_hybrid_qps: {failure}", file=sys.stderr)
    summary = {
        "dense_only_recall": round(
            payload["accuracy"]["dense_only_recall"], 4
        ),
        "hybrid_recall": round(payload["accuracy"]["hybrid_recall"], 4),
        "inverted_speedup_vs_bruteforce": round(
            payload["throughput"]["inverted_speedup_vs_bruteforce"], 2
        ),
        "engines_bitwise_equal": payload["engines_bitwise_equal"],
    }
    print(json.dumps(summary, indent=2))
    print(f"wrote {ARTIFACT}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
