"""Memory-mapped cold tier — resident bytes vs refine-rerank QPS.

Builds the same PQ-compressed index with the exact float32 cold tier
resident and memory-mapped, and measures the resident-bytes reduction,
warm/cold refine-rerank QPS against the in-RAM build, the sharded-spawn
shared-memory footprint, and bitwise answer parity.  Writes the
``BENCH_mmap_qps.json`` artifact at the repo root.  Runnable standalone
(``PYTHONPATH=src python benchmarks/bench_mmap_qps.py``) or through
pytest like the other bench files.  Scale via ``REPRO_MMAP_N`` and
``REPRO_LARGESCALE_QUERIES``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.efficiency import mmap_tradeoff
from repro.bench.harness import format_table, save_table

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_mmap_qps.json"


def run(kind: str = "image") -> dict:
    """Run the experiment and write the JSON artifact."""
    table, payload = mmap_tradeoff(kind)
    save_table(table, "mmap_qps")
    print(format_table(table))
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _check(payload: dict) -> list[str]:
    """Acceptance gates (ISSUE 8) as human-readable failures."""
    failures: list[str] = []
    if not payload.get("bitwise_equal", False):
        failures.append(
            "mmap answers diverged from resident — the cold tier must be "
            "bit-identical wherever it lives"
        )
    reduction = payload["memory"]["resident_reduction_ratio"]
    if reduction < 4.0:
        failures.append(
            f"resident bytes reduced only {reduction:.2f}x (< 4x): the "
            f"mapped cold tier is not leaving RAM"
        )
    warm = payload["refine_rerank"]["warm_qps_ratio_vs_resident"]
    if warm < 0.7:
        failures.append(
            f"warm refine rerank at {warm:.2f}x of in-RAM QPS (< 0.7x)"
        )
    shm = payload["sharded_spawn"]["shm_reduction_ratio"]
    if shm < 2.0:
        failures.append(
            f"sharded spawn shipped only {shm:.2f}x fewer shm bytes "
            f"(< 2x): the cold planes are still crossing the boundary"
        )
    return failures


def test_mmap_tradeoff(benchmark, capsys):
    from benchmarks.conftest import emit

    table, payload = mmap_tradeoff("image")
    emit(table, "mmap_qps", capsys)
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    assert not _check(payload)

    from repro.bench import cache
    from repro.core.framework import MUST
    from repro.core.query import Query, SearchOptions
    from repro.core.weights import Weights

    import tempfile

    enc = cache.largescale_encoded("image", cache.MMAP_N)
    queries = list(enc.queries[:16])
    must = MUST(
        enc.objects,
        weights=Weights.uniform(enc.objects.num_modalities),
        compression="pq",
        store_options={"pq_dims": 4, "pq_centroids": 64},
        cold_storage="mmap",
        data_dir=tempfile.mkdtemp(prefix="repro_mmap_bench_"),
    ).build()
    benchmark(
        lambda: must.query(
            [Query(q) for q in queries], SearchOptions(k=10, l=80, refine=40)
        )
    )


def main() -> int:
    """Standalone entry point; non-zero exit on a gate failure so the
    CI bench-smoke job cannot green-wash a failed run."""
    payload = run()
    failures = _check(payload)
    for failure in failures:
        print(f"bench_mmap_qps: {failure}", file=sys.stderr)
    summary = {
        "resident_reduction_ratio": round(
            payload["memory"]["resident_reduction_ratio"], 2
        ),
        "warm_qps_ratio_vs_resident": round(
            payload["refine_rerank"]["warm_qps_ratio_vs_resident"], 3
        ),
        "shm_reduction_ratio": round(
            payload["sharded_spawn"]["shm_reduction_ratio"], 2
        ),
        "bitwise_equal": payload["bitwise_equal"],
    }
    print(json.dumps(summary, indent=2))
    print(f"wrote {ARTIFACT}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
