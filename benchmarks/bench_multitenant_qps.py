"""Multi-tenant serving — quota isolation under a noisy neighbour.

Two collections behind one :class:`~repro.service.MustService`: a victim
tenant measured alone and again while hammer threads flood a throttled
neighbour.  Gates per-collection bitwise parity against standalone
``MUST`` instances and per-tenant quota enforcement (the noisy tenant is
rejected, the victim is never rejected and keeps most of its solo QPS).
Writes the ``BENCH_multitenant_qps.json`` perf-trajectory artifact at
the repo root.  Runnable standalone
(``PYTHONPATH=src python benchmarks/bench_multitenant_qps.py``) or
through pytest like the other bench files.  Scale via
``REPRO_MULTITENANT_N`` and ``REPRO_MULTITENANT_CLIENTS``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.efficiency import multitenant_throughput
from repro.bench.harness import format_table, save_table

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_multitenant_qps.json"


def run(kind: str = "image") -> dict:
    """Run the experiment and write the JSON artifact."""
    table, payload = multitenant_throughput(kind)
    save_table(table, "multitenant_qps")
    print(format_table(table))
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_multitenant_qps(capsys):
    from benchmarks.conftest import emit

    table, payload = multitenant_throughput("image")
    emit(table, "multitenant_qps", capsys)
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    # Acceptance guards: tenancy never perturbs the arithmetic, the
    # noisy tenant's quota actually fired, and it fired only on the
    # tenant that breached — the victim is admitted throughout and
    # keeps a usable share of its solo throughput.
    assert payload["parity_bitwise"]
    assert payload["noisy_rejected"] > 0
    assert payload["cross_tenant_rejections"] == 0
    assert payload["victim_under_noise"]["qps"] > 0
    assert payload["isolation_qps_ratio"] >= 0.2


def main() -> int:
    out = run()
    if not out.get("parity_bitwise", False):
        print(
            "bench_multitenant: tenant answers diverged from standalone MUST",
            file=sys.stderr,
        )
        return 1
    if out.get("noisy_rejected", 0) <= 0:
        print("bench_multitenant: quota never fired", file=sys.stderr)
        return 1
    if out.get("cross_tenant_rejections", 0) != 0:
        print(
            "bench_multitenant: victim saw rejections — quota leaked "
            "across tenants",
            file=sys.stderr,
        )
        return 1
    print(
        json.dumps(
            {
                "victim_alone": out["victim_alone"],
                "victim_under_noise": out["victim_under_noise"],
                "isolation_qps_ratio": out["isolation_qps_ratio"],
                "noisy_rejected": out["noisy_rejected"],
            },
            indent=2,
        )
    )
    print(f"wrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
