"""Serving-layer throughput — coalesced micro-batches vs per-query dispatch.

Closed-loop N-client load against :class:`~repro.service.MustService`
(exact and graph modes, with and without concurrent writers) compared to
the sequential ``MUST.search`` loop.  Writes the ``BENCH_serving_qps.json``
perf-trajectory artifact at the repo root.  Runnable standalone
(``PYTHONPATH=src python benchmarks/bench_serving.py``) or through pytest
like the other bench files.  Scale via ``REPRO_SERVING_N`` and
``REPRO_SERVING_CLIENTS``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.efficiency import serving_throughput
from repro.bench.harness import format_table, save_table
from repro.core.query import Query, SearchOptions

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_serving_qps.json"


def run(kind: str = "image") -> dict:
    """Run the experiment and write the JSON artifact."""
    table, payload = serving_throughput(kind)
    save_table(table, "serving_qps")
    print(format_table(table))
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_serving_qps(benchmark, capsys):
    from benchmarks.conftest import emit

    table, payload = serving_throughput("image")
    emit(table, "serving_qps", capsys)
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    # Acceptance guards: every request answered, responses bit-identical
    # to MUST.search on the same snapshot, and coalesced exact serving
    # ≥1.5× the per-query sequential dispatch at N concurrent clients.
    modes = payload["modes"]
    assert payload["parity_bitwise"]
    assert modes["exact/served"]["answered"] == payload["total_requests"]
    assert modes["exact/served+writers"]["answered"] == (
        payload["total_requests"]
    )
    assert payload["coalescing_speedup_exact"] >= 1.5
    assert modes["exact/served+writers"]["qps"] > 0
    # Graph-wave serving: the lockstep engine must make coalesced graph
    # serving beat the sequential graph loop for the first time — the
    # per-query graph path never could on one core.
    assert modes["graph_wave/served"]["answered"] == payload["total_requests"]
    assert modes["graph_wave/served"]["wave_groups"] >= 1
    assert payload["coalescing_speedup_graph_wave"] > 1.0

    from repro.bench import cache

    enc = cache.largescale_encoded("image", cache.SERVING_N)
    queries = list(enc.queries[:16])
    from repro.core.framework import MUST
    from repro.core.weights import Weights

    must = MUST(
        enc.objects, weights=Weights.uniform(enc.objects.num_modalities)
    ).build()
    service = must.serve(max_batch=16, max_wait_ms=1.0)
    try:
        benchmark(
            lambda: [f.result() for f in
                     [
                         service.submit(
                             Query(q), SearchOptions(k=10, exact=True)
                         )
                         for q in queries
                     ]]
        )
    finally:
        service.close()


def main() -> int:
    out = run()
    modes = out.get("modes", {})
    if not modes or not all(
        m.get("qps", 0.0) > 0.0 for m in modes.values()
    ):
        print("bench_serving: empty or zero-QPS payload", file=sys.stderr)
        return 1
    if not out.get("parity_bitwise", False):
        print("bench_serving: served results diverged from MUST.search",
              file=sys.stderr)
        return 1
    print(json.dumps(modes, indent=2))
    print(f"wrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
