"""Process-sharded serving throughput — exact scaling across workers.

Closed-loop exact load against :class:`~repro.service.ShardedService`
at 1, 2, and 4 worker processes, gating the critical-path (per-shard
CPU seconds) scaling: ≥1.6× at 2 workers and ≥2.5× at 4 workers over
the single-worker tier, with every answer bit-identical to unsharded
``MUST.search``.  Writes the ``BENCH_sharded_qps.json`` perf-trajectory
artifact at the repo root.  Runnable standalone
(``PYTHONPATH=src python benchmarks/bench_sharded_qps.py``) or through
pytest like the other bench files.  Scale via ``REPRO_SHARDED_N`` —
but note the scaling gate needs scale: at a few thousand objects the
per-wave fixed costs drown the O(n/shards) scan the gate measures.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.efficiency import sharded_throughput
from repro.bench.harness import format_table, save_table
from repro.core.query import Query, SearchOptions

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_sharded_qps.json"

SCALING_FLOOR_2W = 1.6
SCALING_FLOOR_4W = 2.5


def run(kind: str = "image") -> dict:
    """Run the experiment and write the JSON artifact."""
    table, payload = sharded_throughput(kind)
    save_table(table, "sharded_qps")
    print(format_table(table))
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _check(payload: dict) -> list[str]:
    """The acceptance gates, shared by pytest and standalone runs."""
    problems = []
    if not payload.get("parity_bitwise", False):
        problems.append(
            "sharded answers diverged from unsharded MUST.search"
        )
    for workers, stats in payload.get("workers", {}).items():
        if not stats.get("critical_path_qps", 0.0) > 0.0:
            problems.append(f"worker count {workers}: zero throughput")
    two = payload.get("exact_scaling_speedup_2w", 0.0)
    four = payload.get("exact_scaling_speedup_4w", 0.0)
    if two < SCALING_FLOOR_2W:
        problems.append(
            f"2-worker critical-path scaling {two:.2f}x < "
            f"{SCALING_FLOOR_2W}x floor"
        )
    if four < SCALING_FLOOR_4W:
        problems.append(
            f"4-worker critical-path scaling {four:.2f}x < "
            f"{SCALING_FLOOR_4W}x floor"
        )
    return problems


def test_sharded_qps(benchmark, capsys):
    from benchmarks.conftest import emit

    table, payload = sharded_throughput("image")
    emit(table, "sharded_qps", capsys)
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    problems = _check(payload)
    assert not problems, "; ".join(problems)

    from repro.bench import cache
    from repro.core.framework import MUST
    from repro.core.weights import Weights
    from repro.index.pipeline import FusedIndexBuilder

    enc = cache.largescale_encoded("image", cache.SHARDED_N)
    queries = list(enc.queries[:16])
    must = MUST(
        enc.objects,
        weights=Weights.uniform(enc.objects.num_modalities),
        builder=FusedIndexBuilder(gamma=8, epsilon=1, max_candidates=16),
    ).build()
    service = must.serve_sharded(n_shards=2, max_batch=16, max_wait_ms=1.0)
    try:
        benchmark(
            lambda: [f.result() for f in
                     [
                         service.submit(
                             Query(q), SearchOptions(k=10, exact=True)
                         )
                         for q in queries
                     ]]
        )
    finally:
        service.close()


def main() -> int:
    payload = run()
    problems = _check(payload)
    for problem in problems:
        print(f"bench_sharded_qps: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(json.dumps(payload["workers"], indent=2))
    print(f"wrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
