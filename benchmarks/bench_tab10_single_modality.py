"""Tab. X / XIX / XX — accuracy with a single query modality (t = 1)."""

from repro.bench import cache
from repro.bench.accuracy import tab10_single_modality

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_tab10_single_modality(benchmark, capsys):
    table = tab10_single_modality()
    emit(table, "tab10_single_modality", capsys)
    enc, must, test = cache.trained_must("mitstates", "resnet50", ("lstm",))
    query = enc.queries_single_modality(1)[test[0]]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=10, l=128)))
