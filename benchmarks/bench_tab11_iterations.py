"""Tab. XI — graph quality under different NNDescent iteration counts ε."""

from repro.bench import cache
from repro.bench.ablations import tab11_iterations
from repro.core.space import JointSpace
from repro.index.nndescent import graph_quality, nndescent

from benchmarks.conftest import emit


def test_tab11_iterations(benchmark, capsys):
    table = tab11_iterations()
    emit(table, "tab11_iterations", capsys)
    enc, must = cache.largescale_must("image", 8_000)
    space = JointSpace(enc.objects, must.weights)
    knn = nndescent(space, k=20, iterations=3, seed=0)
    benchmark.pedantic(
        lambda: graph_quality(space, knn, sample=100), rounds=3, iterations=1
    )
