"""Tab. XII — search performance under different result-set sizes l."""

from repro.bench import cache
from repro.bench.efficiency import tab12_beam_width

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_tab12_beam_width(benchmark, capsys):
    table = tab12_beam_width()
    emit(table, "tab12_beam_width", capsys)
    enc, must = cache.largescale_must("image")
    query = enc.queries[0]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=10, l=320)))
