"""Tab. III — search accuracy on MIT-States (8 encoder combos × 3 frameworks)."""

from repro.bench import cache
from repro.bench.accuracy import tab3_mitstates

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_tab3_mitstates(benchmark, capsys):
    table = tab3_mitstates()
    emit(table, "tab3_mitstates", capsys)
    # Representative op: one MUST joint search on the best combo.
    enc, must, test = cache.trained_must("mitstates", "resnet50", ("lstm",))
    query = enc.queries[test[0]]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=10, l=128)))
