"""Tab. IV — search accuracy on CelebA."""

from repro.bench import cache
from repro.bench.accuracy import tab4_celeba

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_tab4_celeba(benchmark, capsys):
    table = tab4_celeba()
    emit(table, "tab4_celeba", capsys)
    enc, must, test = cache.trained_must("celeba", "clip", ("encoding",))
    query = enc.queries[test[0]]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=10, l=128)))
