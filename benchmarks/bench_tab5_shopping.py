"""Tab. V / Tab. XXI — search accuracy on Shopping (T-shirt and Bottoms)."""

from repro.bench import cache
from repro.bench.accuracy import tab5_shopping_tshirt, tab21_shopping_bottoms

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_tab5_shopping_tshirt(benchmark, capsys):
    table = tab5_shopping_tshirt()
    emit(table, "tab5_shopping_tshirt", capsys)
    enc, must, test = cache.trained_must(
        "shopping_tshirt", "tirg", ("encoding",)
    )
    query = enc.queries[test[0]]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=10, l=128)))


def test_tab21_shopping_bottoms(benchmark, capsys):
    table = tab21_shopping_bottoms()
    emit(table, "tab21_shopping_bottoms", capsys)
    enc, must, test = cache.trained_must(
        "shopping_bottoms", "tirg", ("encoding",)
    )
    query = enc.queries[test[0]]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=10, l=128)))
