"""Tab. VI — search accuracy on MS-COCO (three modalities)."""

from repro.bench import cache
from repro.bench.accuracy import tab6_mscoco

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_tab6_mscoco(benchmark, capsys):
    table = tab6_mscoco()
    emit(table, "tab6_mscoco", capsys)
    enc, must, test = cache.trained_must("mscoco", "resnet50", ("resnet50", "gru"))
    query = enc.queries[test[0]]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=100, l=256)))
