"""Tab. VII — response time vs data volume (MUST vs brute-force MUST--)."""

from repro.bench import cache
from repro.bench.efficiency import tab7_data_volume

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_tab7_data_volume(benchmark, capsys):
    table = tab7_data_volume()
    emit(table, "tab7_data_volume", capsys)
    enc, must = cache.largescale_must("image", 40_000)
    query = enc.queries[0]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=10, l=200)))
