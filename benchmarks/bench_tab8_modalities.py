"""Tab. VIII — recall vs number of modalities on CelebA+."""

from repro.bench import cache
from repro.bench.accuracy import tab8_modalities

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_tab8_modalities(benchmark, capsys):
    table = tab8_modalities()
    emit(table, "tab8_modalities", capsys)
    enc, must, test = cache.trained_must(
        "celeba_plus_m4", "clip", ("encoding", "resnet17", "resnet50")
    )
    query = enc.queries[test[0]]
    benchmark(lambda: must.query(Query(query), SearchOptions(k=10, l=128)))
