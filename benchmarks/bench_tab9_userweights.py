"""Tab. IX — user-defined weight preferences (Fig. 4(g) Option 2)."""

from repro.bench import cache
from repro.bench.accuracy import tab9_user_weights
from repro.core.weights import Weights

from repro.core.query import Query, SearchOptions

from benchmarks.conftest import emit


def test_tab9_user_weights(benchmark, capsys):
    table = tab9_user_weights()
    emit(table, "tab9_user_weights", capsys)
    enc, must, test = cache.trained_must("mitstates", "resnet50", ("lstm",))
    query = enc.queries[test[0]]
    override = Weights([0.8, 0.2])
    benchmark(
        lambda: must.query(
            Query(query, weights=override), SearchOptions(k=10, l=128)
        )
    )
