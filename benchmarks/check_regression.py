"""CI perf-regression gate: compare fresh BENCH artifacts to baselines.

Every bench-smoke run writes ``BENCH_*.json`` perf-trajectory artifacts
at the repo root; until now CI uploaded them and compared them to
nothing, so a QPS regression shipped silently.  This script closes the
gap: it walks each artifact against its committed baseline under
``benchmarks/baselines/`` and fails (exit 1) when

* any throughput-like metric (key containing ``qps``, ``speedup``, or
  ``ratio``/``_vs_``) drops more than ``--qps-tolerance`` (default 30%,
  env ``REPRO_QPS_TOLERANCE``; CI uses a looser band because hosted
  runners vary run to run), or
* any recall-like metric (key containing ``recall``) drops more than
  ``--recall-tolerance`` (default 0.005 absolute, env
  ``REPRO_RECALL_TOLERANCE``), or
* a metric present in the baseline is missing from the fresh artifact
  (the artifact shape changed — re-baseline deliberately), or
* a gated metric is non-finite (``inf``/``nan`` — a broken timer reads
  as infinitely fast, so it is a failure, never a pass), or
* an artifact/baseline pair contributes **zero** gated metrics (a
  malformed or truncated artifact would otherwise print ``OK`` while
  gating nothing).

Higher-than-baseline values never fail; new keys in fresh artifacts are
ignored until baselined.  Non-numeric leaves and keys matching neither
rule (latencies, build times, counters) are out of scope by design —
the gate guards throughput and accuracy, not wall-clock noise.

Per-metric tolerance overrides
------------------------------
A baseline may carry a top-level ``"_tolerances"`` object mapping a
gated metric's dotted path to its own tolerance, overriding the global
band for just that metric::

    {"_tolerances": {"refine_rerank.mmap_cold_pass_queries_per_second": 0.6}}

The value is a relative drop fraction for throughput metrics and an
absolute drop for recall metrics — the same semantics as the global
knobs.  Use it for metrics that are legitimately noisier than the rest
(cold-cache reads, tiny-corpus ratios) instead of loosening the global
band.  The ``_tolerances`` subtree itself is never gated.

Re-baselining
-------------
After an intentional perf change, regenerate the artifacts at the CI
scale and commit the refreshed baselines::

    REPRO_LARGESCALE_N=2500 REPRO_LARGESCALE_QUERIES=16 \
    REPRO_DYNAMIC_N=2500 REPRO_COMPRESSION_N=2500 REPRO_SERVING_N=2500 \
    REPRO_FILTERED_N=2500 REPRO_MMAP_N=2500 REPRO_MULTITENANT_N=2500 \
    REPRO_WEIGHT_EPOCHS=60 PYTHONPATH=src sh -c '
        python benchmarks/bench_batch_qps.py &&
        python benchmarks/bench_dynamic_updates.py &&
        python -m pytest benchmarks/bench_compression.py -q &&
        python benchmarks/bench_serving.py &&
        python benchmarks/bench_filtered_qps.py &&
        python benchmarks/bench_sharded_qps.py &&
        python benchmarks/bench_mmap_qps.py &&
        python benchmarks/bench_multitenant_qps.py'
    PYTHONPATH=src python benchmarks/check_regression.py --update
    git add benchmarks/baselines/ && git commit

Note the sharded bench is *not* shrunk: its scaling gate measures how
the O(n/shards) scan beats the per-wave fixed costs, and at a few
thousand objects that signal disappears — ``REPRO_SHARDED_N`` keeps
its default scale in CI on purpose.

Baselines record the *reference machine's* numbers; the tolerance band
absorbs machine-to-machine variance, and ``--update`` is the explicit
escape hatch when hardware or algorithms legitimately change.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: artifact (repo root) → committed baseline (benchmarks/baselines/).
ARTIFACTS = {
    "BENCH_batch_qps.json": "batch_qps.json",
    "BENCH_dynamic_qps.json": "dynamic_qps.json",
    "BENCH_compression.json": "compression.json",
    "BENCH_serving_qps.json": "serving_qps.json",
    "BENCH_filtered_qps.json": "filtered_qps.json",
    "BENCH_sharded_qps.json": "sharded_qps.json",
    "BENCH_mmap_qps.json": "mmap_qps.json",
    "BENCH_multitenant_qps.json": "multitenant_qps.json",
    "BENCH_hybrid_qps.json": "hybrid_qps.json",
}

_THROUGHPUT_MARKERS = ("qps", "speedup", "ratio", "_vs_")


def _rule_for(key: str) -> str | None:
    """Which tolerance rule applies to a metric name, if any."""
    lowered = key.lower()
    if "recall" in lowered:
        return "recall"
    if any(marker in lowered for marker in _THROUGHPUT_MARKERS):
        return "throughput"
    return None


def _numeric_leaves(node, prefix: str = "") -> dict[str, float]:
    """Flatten a JSON tree to ``dotted.path → float`` for gated metrics."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if key == "_tolerances":
                continue  # override table, not a metric
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(value, path))
        return out
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return out
    leaf = prefix.rsplit(".", 1)[-1]
    if _rule_for(leaf) is not None:
        out[prefix] = float(node)
    return out


def compare(
    baseline: dict,
    current: dict,
    qps_tolerance: float,
    recall_tolerance: float,
) -> list[str]:
    """Return human-readable failures of *current* against *baseline*."""
    failures: list[str] = []
    base_leaves = _numeric_leaves(baseline)
    cur_leaves = _numeric_leaves(current)
    overrides = baseline.get("_tolerances", {})
    for stray in sorted(set(overrides) - set(base_leaves)):
        failures.append(
            f"_tolerances.{stray}: override names no gated baseline "
            f"metric — a typo here silently re-tightens the band"
        )
    for path, base in sorted(base_leaves.items()):
        rule = _rule_for(path.rsplit(".", 1)[-1])
        if path not in cur_leaves:
            failures.append(
                f"{path}: present in baseline but missing from the fresh "
                f"artifact — re-baseline if the shape change is intentional"
            )
            continue
        cur = cur_leaves[path]
        if not math.isfinite(base):
            failures.append(
                f"{path}: baseline value {base!r} is non-finite — the "
                f"committed baseline is broken; re-baseline from a valid run"
            )
            continue
        if not math.isfinite(cur):
            failures.append(
                f"{path}: fresh value {cur!r} is non-finite — the bench "
                f"measurement is invalid (a zero-elapsed timer reads as "
                f"infinitely fast; that is a failure, not a pass)"
            )
            continue
        if rule == "recall":
            tolerance = float(overrides.get(path, recall_tolerance))
            floor = base - tolerance
            if cur < floor:
                failures.append(
                    f"{path}: recall {cur:.4f} < baseline {base:.4f} − "
                    f"{tolerance} tolerance"
                )
        else:
            tolerance = float(overrides.get(path, qps_tolerance))
            floor = base * (1.0 - tolerance)
            if cur < floor:
                drop = 1.0 - cur / base if base else float("inf")
                failures.append(
                    f"{path}: {cur:.2f} is {drop:.0%} below baseline "
                    f"{base:.2f} (tolerance {tolerance:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json artifacts against committed baselines."
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh artifacts over the committed baselines",
    )
    parser.add_argument(
        "--qps-tolerance",
        type=float,
        default=float(os.environ.get("REPRO_QPS_TOLERANCE", "0.30")),
        help="max relative drop for throughput metrics (default 0.30)",
    )
    parser.add_argument(
        "--recall-tolerance",
        type=float,
        default=float(os.environ.get("REPRO_RECALL_TOLERANCE", "0.005")),
        help="max absolute drop for recall metrics (default 0.005)",
    )
    args = parser.parse_args(argv)

    exit_code = 0
    checked = 0
    for artifact_name, baseline_name in ARTIFACTS.items():
        artifact = ROOT / artifact_name
        baseline = BASELINE_DIR / baseline_name
        if not artifact.exists():
            print(f"FAIL {artifact_name}: artifact not found at {artifact} — "
                  f"did the bench run?")
            exit_code = 1
            continue
        if args.update:
            fresh_leaves = _numeric_leaves(json.loads(artifact.read_text()))
            broken = [
                path for path, value in sorted(fresh_leaves.items())
                if not math.isfinite(value)
            ]
            if not fresh_leaves or broken:
                reason = (
                    "parses to zero gated metrics"
                    if not fresh_leaves
                    else f"has non-finite gated metrics: {', '.join(broken)}"
                )
                print(f"FAIL {artifact_name}: refusing --update — the fresh "
                      f"artifact {reason}; baselining it would make the gate "
                      f"vacuous")
                exit_code = 1
                continue
            BASELINE_DIR.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(artifact, baseline)
            print(f"BASELINED {artifact_name} -> {baseline} "
                  f"({len(fresh_leaves)} gated metrics)")
            continue
        if not baseline.exists():
            print(f"FAIL {artifact_name}: no baseline at {baseline} — run "
                  f"check_regression.py --update and commit it")
            exit_code = 1
            continue
        failures = compare(
            json.loads(baseline.read_text()),
            json.loads(artifact.read_text()),
            args.qps_tolerance,
            args.recall_tolerance,
        )
        gated = len(_numeric_leaves(json.loads(baseline.read_text())))
        checked += gated
        if gated == 0:
            print(f"FAIL {artifact_name}: baseline contributes 0 gated "
                  f"metrics — a gate that checks nothing always passes; "
                  f"the baseline is malformed or truncated, re-baseline "
                  f"from a valid artifact")
            exit_code = 1
            continue
        if failures:
            print(f"FAIL {artifact_name} ({len(failures)} of {gated} gated "
                  f"metrics):")
            for failure in failures:
                print(f"  - {failure}")
            exit_code = 1
        else:
            print(f"OK   {artifact_name} ({gated} gated metrics within "
                  f"tolerance)")
    if not args.update:
        verdict = "PASS" if exit_code == 0 else "FAIL"
        print(f"{verdict}: {checked} metrics checked, qps tolerance "
              f"{args.qps_tolerance:.0%}, recall tolerance "
              f"{args.recall_tolerance}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
