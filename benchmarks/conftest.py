"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` file regenerates one paper table/figure (printed and
archived under ``benchmarks/results/``) and micro-benchmarks one
representative operation via pytest-benchmark.
"""

from __future__ import annotations

from repro.bench.harness import Table, format_table, save_table


def emit(table: Table, stem: str, capsys) -> None:
    """Archive and print an experiment table from inside a bench test."""
    save_table(table, stem)
    with capsys.disabled():
        print()
        print(format_table(table))
