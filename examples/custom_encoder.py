"""Plugging a custom encoder into MUST (§V pluggable embedding).

The framework never inspects an encoder — anything exposing
``encode_latents`` (and optionally ``encode_composition``) can be
registered.  This script registers a toy "bag-of-concepts hash" encoder,
encodes MIT-States with it, and runs the full pipeline, demonstrating
that the paper's §X plan ("incorporating additional encoders such as the
OpenAI embeddings") is a one-function integration.

Run:  python examples/custom_encoder.py
"""

import numpy as np

from repro import MUST, Query, SearchOptions
from repro.datasets import EncoderCombo, encode_dataset, make_mitstates, split_queries
from repro.embedding import default_registry
from repro.metrics import mean_hit_rate
from repro.utils.rng import spawn


class HashProjectionEncoder:
    """A sparse signed-hash projection (SimHash-style) text encoder."""

    def __init__(self, concept_space, seed: int, dim: int = 64):
        self.name = "simhash"
        self.dim = dim
        rng = spawn(seed, "simhash-projection")
        # Sparse ±1 projection: each latent coordinate hits 4 output slots.
        proj = np.zeros((concept_space.latent_dim, dim))
        for row in range(concept_space.latent_dim):
            cols = rng.choice(dim, size=4, replace=False)
            proj[row, cols] = rng.choice([-1.0, 1.0], size=4)
        self._projection = proj

    def encode_latents(self, latents, key=None):
        out = np.atleast_2d(np.asarray(latents)) @ self._projection
        norms = np.linalg.norm(out, axis=1, keepdims=True)
        return (out / np.where(norms == 0, 1, norms)).astype(np.float32)


def main() -> None:
    default_registry.register(
        "simhash", lambda space, seed: HashProjectionEncoder(space, seed),
        overwrite=True,
    )

    sem = make_mitstates(num_nouns=30, num_states=10, num_queries=100, seed=7)
    train, test = split_queries(sem.num_queries, 0.5, seed=1)

    for combo in (EncoderCombo("resnet50", ("lstm",)),
                  EncoderCombo("resnet50", ("simhash",))):
        enc = encode_dataset(sem, combo, seed=0)
        must = MUST.from_dataset(enc)
        anchors = [enc.queries[i] for i in train]
        positives = np.asarray([enc.ground_truth[i][0] for i in train])
        must.fit_weights(anchors, positives, epochs=200, learning_rate=0.2)
        must.build()
        results = must.query(
            [Query(enc.queries[i]) for i in test],
            SearchOptions(k=10, l=100),
        )
        r10 = mean_hit_rate(
            [r.ids for r in results], [enc.ground_truth[i] for i in test], 10
        )
        w2 = np.round(must.weights.squared, 3)
        print(f"{combo.label:22s} Recall@10={r10:.3f}  learned ω²={w2}")


if __name__ == "__main__":
    main()
