"""Face retrieval with attribute edits (the paper's CelebA scenario, Fig. 3).

A user supplies a reference face plus a textual attribute description
("no glasses and hat"); the goal is the *same identity* under the target
attributes.  The script compares all three frameworks — MUST, MR, JE —
and demonstrates user-defined weight overrides (Tab. IX): emphasising the
face modality returns lookalikes of the reference, emphasising text
returns attribute matches of any identity.

Run:  python examples/face_retrieval.py
"""

import numpy as np

from repro import MUST, Query, SearchOptions, Weights
from repro.baselines import JointEmbeddingSearch, MultiStreamedRetrieval
from repro.datasets import EncoderCombo, encode_dataset, make_celeba, split_queries
from repro.metrics import mean_hit_rate


def main() -> None:
    sem = make_celeba(num_identities=120, num_queries=120, seed=11)
    enc = encode_dataset(sem, EncoderCombo("clip", ("encoding",)), seed=0)
    train, test = split_queries(sem.num_queries, 0.5, seed=1)

    must = MUST.from_dataset(enc)
    anchors = [enc.queries[i] for i in train]
    positives = np.asarray([enc.ground_truth[i][0] for i in train])
    must.fit_weights(anchors, positives, epochs=250, learning_rate=0.2)
    must.build()

    mr = MultiStreamedRetrieval(enc.objects).build()
    je = JointEmbeddingSearch(enc.objects).build()

    queries = [enc.queries[i] for i in test]
    ground_truth = [enc.ground_truth[i] for i in test]

    top10 = SearchOptions(k=10, l=100)
    must_ids = [must.query(Query(q), top10).ids for q in queries]
    mr_ids = [mr.search(q, k=10, candidates_per_modality=100).ids for q in queries]
    je_ids = [je.search(q, k=10, l=100).ids for q in queries]
    print("framework comparison (same encoders, same corpus):")
    for name, ids in (("MUST", must_ids), ("MR", mr_ids), ("JE", je_ids)):
        r1 = mean_hit_rate(ids, ground_truth, 1)
        r10 = mean_hit_rate(ids, ground_truth, 10)
        print(f"  {name:5s} Recall@1={r1:.3f}  Recall@10={r10:.3f}")

    # User-defined weights (Fig. 4(g) Option 2 / Tab. IX).
    qi = int(test[0])
    query = enc.queries[qi]
    print(f"\nquery: {sem.query_labels[qi]}")
    for label, weights in (
        ("learned weights", None),
        ("face-heavy (0.9, 0.1)", Weights([0.9, 0.1])),
        ("text-heavy (0.1, 0.9)", Weights([0.1, 0.9])),
    ):
        top = must.query(Query(query, weights=weights), SearchOptions(k=3, l=100))
        names = ", ".join(sem.object_labels[i] for i in top.ids)
        print(f"  {label:24s} -> {names}")


if __name__ == "__main__":
    main()
