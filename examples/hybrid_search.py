"""Hybrid retrieval: dense multi-vector search + a sparse lexical plane.

Dense embeddings resolve *semantics* (which neighbourhood of meaning a
document lives in) but blur *exact wording* — rare tokens, model
numbers, names.  The sparse lexical modality adds a BM25/TF-IDF plane
next to the dense modalities: one term-frequency row per object, scored
by an inverted posting-list engine and fused into the joint similarity
as one more weighted modality::

    score(q, x) = Σ_i ω_i²·IP_i(q, x)  +  ω_s²·BM25(q_s, x_s)

The walkthrough builds a toy product corpus where two groups of items
share a dense centroid (same kind of product) but differ in rare tokens
(brand / model terms), shows dense-only search confusing the groups and
hybrid search pinning the right one, then streams hybrid inserts and
round-trips the whole corpus through the v4 segment manifest.

Run:  python examples/hybrid_search.py
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro import MUST, Query, SearchOptions
from repro.core.multivector import (
    MultiVector,
    MultiVectorSet,
    normalize_rows,
)
from repro.core.weights import Weights
from repro.index.segments import SegmentPolicy
from repro.sparse import SparseStore

DIM = 32
PER_GROUP = 40

#: a tiny vocabulary — in a real system this is your tokenizer's
VOCAB = {
    "camera": 0, "lens": 1, "tripod": 2, "battery": 3,
    "acme": 4, "zenith": 5, "pro9000": 6, "lite100": 7,
}


def make_corpus(rng: np.random.Generator) -> MultiVectorSet:
    """Two brands of the same product: one dense centroid, two token
    profiles — the separation only the lexical plane can see."""
    centroid = rng.standard_normal(DIM).astype(np.float32)
    dense = normalize_rows(
        centroid
        + 0.6 * rng.standard_normal((2 * PER_GROUP, DIM)).astype(np.float32)
    )
    rows = []
    for i in range(2 * PER_GROUP):
        brand = "acme" if i < PER_GROUP else "zenith"
        model = "pro9000" if i < PER_GROUP else "lite100"
        rows.append({
            VOCAB["camera"]: float(rng.integers(1, 4)),
            VOCAB[brand]: float(rng.integers(1, 3)),
            VOCAB[model]: 1.0,
        })
    sparse = SparseStore.from_rows(rows, vocab=len(VOCAB), metric="bm25")
    return MultiVectorSet([dense], sparse=sparse)


def main() -> None:
    rng = np.random.default_rng(7)
    objects = make_corpus(rng)
    must = MUST(
        objects,
        weights=Weights([1.0]),
        segment_policy=SegmentPolicy(seal_size=64, max_segments=8),
    ).build()

    # A buyer searching for "acme pro9000 camera": semantically it is
    # just *a camera* (both brands match), lexically it is unambiguous.
    dense_q = MultiVector.from_arrays([objects.modality(0)[3]])
    lexical = {VOCAB["acme"]: 1.0, VOCAB["pro9000"]: 2.0}

    dense_only = must.query(dense_q, SearchOptions(k=10, exact=True))
    hybrid = must.query(
        Query(dense_q, sparse=lexical, sparse_weight=0.8),
        SearchOptions(k=10, exact=True),
    )
    frac = lambda r: float(np.mean(r.ids < PER_GROUP))  # noqa: E731
    print(f"dense-only top-10 in the acme group: {frac(dense_only):.0%}")
    print(f"hybrid     top-10 in the acme group: {frac(hybrid):.0%}")

    # Both sparse engines answer bit-identically — `inverted` (the
    # posting-list scatter, the default) is simply faster.
    oracle = must.query(
        Query(dense_q, sparse=lexical, sparse_weight=0.8),
        SearchOptions(k=10, exact=True, sparse_engine="exact"),
    )
    assert np.array_equal(hybrid.ids, oracle.ids)
    assert np.array_equal(hybrid.similarities, oracle.similarities)
    print("inverted engine == brute-force oracle (ids and bits)")

    # Streamed objects carry their sparse rows with them; the corpus
    # statistics (document frequencies, avgdl) re-sync on every write.
    ext = must.insert(make_corpus(rng))
    must.mark_deleted(ext[:10])
    after = must.query(
        Query(dense_q, sparse=lexical, sparse_weight=0.8),
        SearchOptions(k=10, l=60),
    )
    print(f"after insert+delete churn, graph-path top-1 id: {after.ids[0]}")

    # A corpus with a sparse plane persists as manifest v4; dense-only
    # corpora keep writing v3/v2 archives readable by older builds.
    tmp = Path(tempfile.mkdtemp(prefix="hybrid_example_"))
    try:
        must.save_index(tmp / "index")
        reloaded = MUST(
            make_corpus(rng), weights=Weights([1.0])
        ).load_index(tmp / "index")
        again = reloaded.query(
            Query(dense_q, sparse=lexical, sparse_weight=0.8),
            SearchOptions(k=10, l=60),
        )
        assert np.array_equal(after.ids, again.ids)
        print("v4 manifest round-trip: answers bit-identical")
    finally:
        shutil.rmtree(tmp)


if __name__ == "__main__":
    main()
