"""Beyond-RAM corpora: the memory-mapped cold tier.

Compressed stores keep two tiers: hot codes (PQ / int8 / float16) that
every scan touches, and the cold float32 exact tier consulted only by
``refine=`` reranks and compaction.  With ``cold_storage="mmap"`` the
cold tier is spilled to per-segment ``.npy`` files and served through
``np.load(mmap_mode="r")`` — resident bytes collapse to the hot tier
while every answer stays bit-identical to the all-resident build.

The walkthrough below builds the same corpus both ways, compares the
byte accounting, streams inserts (sealed segments spill their cold
plane as they form), then reloads the saved index with
``MUST.from_saved`` the way a serving process would: no corpus needed,
cold tier never paged in until a refine asks for those exact rows.

Run:  python examples/mmap_corpus.py
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro import MUST, Query, SearchOptions
from repro.core.multivector import MultiVectorSet, normalize_rows
from repro.core.weights import Weights

DIMS = (64, 32)  # two modalities (e.g. image + text embeddings)
N = 2000


def make_batch(n: int, rng: np.random.Generator) -> MultiVectorSet:
    return MultiVectorSet(
        [normalize_rows(rng.standard_normal((n, d)).astype(np.float32))
         for d in DIMS]
    )


def fmt_bytes(b: int) -> str:
    return f"{b / 1024:8.1f} KiB"


def report(tag: str, must: MUST) -> None:
    stats = must.memory_stats()
    print(f"{tag:>12}: hot {fmt_bytes(stats['hot_bytes'])}   "
          f"cold {fmt_bytes(stats['cold_bytes'])}   "
          f"resident {fmt_bytes(stats['resident_bytes'])}")


def main() -> None:
    rng = np.random.default_rng(11)
    corpus = make_batch(N, rng)
    weights = Weights.uniform(len(DIMS))
    query = Query(make_batch(1, rng).row(0))
    opts = SearchOptions(k=10, exact=True, refine=40)

    data_dir = Path(tempfile.mkdtemp(prefix="repro_mmap_example_"))
    try:
        # Same corpus, same PQ hot tier — one all-resident, one mmap'd.
        resident = MUST(corpus, weights=weights, compression="pq")
        resident.build()
        mapped = MUST(
            corpus,
            weights=weights,
            compression="pq",
            cold_storage="mmap",
            data_dir=data_dir,
        )
        mapped.build()

        report("resident", resident)
        report("mmap", mapped)
        cold_files = sorted(p.name for p in data_dir.glob("*.npy"))
        print(f"cold tier on disk: {cold_files}")

        # Refine reranks read the cold tier (~40 rows/query paged on
        # demand) and the answers match the resident build bit for bit.
        a = resident.query(query, opts)
        b = mapped.query(query, opts)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.similarities, b.similarities)
        print("refine rerank bit-identical to the resident build ✓")

        # Streaming: the delta stays resident (inserts need exact
        # vectors); each sealed segment spills its own cold file.
        mapped.insert(make_batch(300, rng))
        report("after insert", mapped)
        print(f"cold files now: {len(list(data_dir.glob('*.npy')))}")
        live = mapped.query(query, opts)

        # Serving-process restart: from_saved needs no corpus at all —
        # the seam that lets a beyond-RAM index load on a machine that
        # could never hold the float32 corpus.
        save_dir = data_dir / "saved_index"
        mapped.save_index(save_dir)
        served = MUST.from_saved(save_dir)
        report("from_saved", served)
        c = served.query(query, opts)
        assert np.array_equal(live.ids, c.ids)
        print("reloaded index answers bit-identically ✓")

        # Sharded serving opens the cold tier read-only via mmap in
        # every worker: the spawn ships only hot + attribute bytes
        # through shared memory — O(hot), not O(corpus).
        svc = served.serve_sharded(n_shards=2)
        try:
            d = svc.search(query, opts)
            assert np.array_equal(live.ids, d.ids)
            print(f"sharded spawn shipped {svc.spawn_shm_bytes} bytes of shm "
                  f"(vs {served.memory_stats()['cold_bytes']} cold bytes "
                  f"left on disk) ✓")
        finally:
            svc.close()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
