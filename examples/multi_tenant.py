"""Multi-tenant serving: named collections behind one dispatcher.

One :class:`MustService` hosting three independent collections — each
with its own corpus, modality shapes, weights, and admission quota.
Demonstrates request routing (``SearchOptions(collection=...)``),
per-collection writes, quota isolation (a noisy tenant breaching its
``CollectionQuota`` is rejected with :class:`CollectionOverloaded`
while its neighbours are admitted throughout), per-collection stats,
and the ``must-collections-v1`` persistence layout round-tripping the
whole deployment bit for bit.

Run:  python examples/multi_tenant.py
"""

import shutil
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import MUST, Query, SearchOptions
from repro.core.multivector import MultiVector, MultiVectorSet, normalize_rows
from repro.core.weights import Weights
from repro.index.segments import SegmentPolicy
from repro.service import (
    CollectionManager,
    CollectionOverloaded,
    CollectionQuota,
)

#: Each tenant is a fully independent corpus — even the modality shapes
#: differ (collections share nothing but the dispatcher).
TENANTS = {
    "products": ((64, 32), 1500),
    "faces": ((96,), 800),
    "scenes": ((48, 48), 600),
}
K10 = {name: SearchOptions(k=10, exact=True, collection=name)
       for name in TENANTS}


def make_batch(dims, n: int, rng: np.random.Generator) -> MultiVectorSet:
    return MultiVectorSet(
        [normalize_rows(rng.standard_normal((n, d)).astype(np.float32))
         for d in dims]
    )


def make_query(dims, rng: np.random.Generator) -> MultiVector:
    return MultiVector(
        tuple(
            (lambda v: (v / np.linalg.norm(v)).astype(np.float32))(
                rng.standard_normal(d)
            )
            for d in dims
        )
    )


def main() -> None:
    rng = np.random.default_rng(23)

    # --- register the tenants -----------------------------------------
    manager = CollectionManager()
    for name, (dims, n) in TENANTS.items():
        must = MUST(
            make_batch(dims, n, rng),
            weights=Weights.uniform(len(dims)),
            segment_policy=SegmentPolicy(seal_size=512),
        ).build()
        must.insert(make_batch(dims, 64, rng))  # go segmented
        manager.create(name, must)
    # The "scenes" tenant gets a tight admission budget: at most two of
    # its requests may be unanswered at any instant.
    manager.get("scenes").quota = CollectionQuota(max_inflight=2)
    print(f"serving collections        : {manager.names()}")

    queries = {
        name: [make_query(dims, rng) for _ in range(16)]
        for name, (dims, _) in TENANTS.items()
    }

    with manager.serve(
        max_batch=32, max_wait_ms=2.0, max_queue=256, backpressure="reject"
    ) as service:
        # --- routed reads: each answer comes from the named corpus ----
        for name in TENANTS:
            res = service.search(Query(queries[name][0]), K10[name])
            ref = manager.get(name).must.query(
                Query(queries[name][0]), SearchOptions(k=10, exact=True)
            )
            assert np.array_equal(res.ids, ref.ids)
            assert np.array_equal(res.similarities, ref.similarities)
        print("per-collection parity      : bit-identical to standalone MUST")

        # --- routed writes: only the named corpus observes them -------
        before = {n: len(service.active_ids(collection=n)) for n in TENANTS}
        service.insert(
            make_batch(TENANTS["products"][0], 32, rng),
            collection="products",
        )
        service.mark_deleted(
            service.active_ids(collection="faces")[:8], collection="faces"
        )
        for name in TENANTS:
            delta = len(service.active_ids(collection=name)) - before[name]
            expect = {"products": +32, "faces": -8, "scenes": 0}[name]
            assert delta == expect
        print("routed writes              : products +32, faces -8, scenes 0")

        # --- quota isolation: hammer "scenes", measure the others -----
        rejected = {name: 0 for name in TENANTS}

        def client(name: str, rounds: int) -> None:
            for r in range(rounds):
                try:
                    service.search(Query(queries[name][r % 16]), K10[name])
                except CollectionOverloaded:
                    rejected[name] += 1

        threads = [
            threading.Thread(target=client, args=("scenes", 60))
            for _ in range(8)
        ] + [
            threading.Thread(target=client, args=(name, 40))
            for name in ("products", "faces")
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rejected["scenes"] > 0, "the quota never fired"
        assert rejected["products"] == rejected["faces"] == 0
        print(
            f"quota isolation            : scenes rejected "
            f"{rejected['scenes']} times, neighbours rejected 0 times"
        )

        # --- per-collection stats: each tenant scrapes its own --------
        for name in TENANTS:
            summary = manager.get(name).stats.summary()
            print(
                f"stats[{name:<8}]           : "
                f"completed={summary['completed']} "
                f"rejected={summary['rejected']} "
                f"p50={summary['latency_ms']['p50']:.2f}ms"
            )

    # --- persistence: one directory round-trips the deployment --------
    save_dir = Path(tempfile.mkdtemp(prefix="must-collections-"))
    try:
        manager.save(save_dir)
        restored = CollectionManager.from_saved(save_dir)
        assert restored.names() == manager.names()
        assert restored.get("scenes").quota == CollectionQuota(max_inflight=2)
        with restored.serve(max_batch=16) as service:
            for name in TENANTS:
                res = service.search(Query(queries[name][1]), K10[name])
                ref = manager.get(name).must.query(
                    Query(queries[name][1]), SearchOptions(k=10, exact=True)
                )
                assert np.array_equal(res.ids, ref.ids)
                assert np.array_equal(res.similarities, ref.similarities)
        print("save/restore               : quotas kept, answers bit-identical")
    finally:
        shutil.rmtree(save_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
