"""E-commerce product search with attribute replacement (Shopping scenario).

Reproduces the paper's motivating e-commerce loop (§I, §IX): a shopper
starts from a product photo, asks to "replace gray color with white
color", inspects the results, and *iteratively refines* — feeding a
returned product back in as the next reference with a further edit.
The iterative step is the paper's answer to single-modality inputs
(§IX "Single Modality Inputs").

Run:  python examples/product_search.py
"""

import numpy as np

from repro import MUST, Query, SearchOptions, MultiVector
from repro.datasets import EncoderCombo, encode_dataset, make_shopping, split_queries
from repro.metrics import mean_hit_rate


def main() -> None:
    sem = make_shopping("t-shirt", num_queries=120, seed=13)
    enc = encode_dataset(sem, EncoderCombo("tirg", ("encoding",)), seed=0)
    train, test = split_queries(sem.num_queries, 0.5, seed=1)

    must = MUST.from_dataset(enc)
    anchors = [enc.queries[i] for i in train]
    positives = np.asarray([enc.ground_truth[i][0] for i in train])
    must.fit_weights(anchors, positives, epochs=250, learning_rate=0.2)
    must.build()

    queries = [enc.queries[i] for i in test]
    ground_truth = [enc.ground_truth[i] for i in test]
    results = must.query([Query(q) for q in queries], SearchOptions(k=10, l=100))
    r1 = mean_hit_rate([r.ids for r in results], ground_truth, 1)
    r10 = mean_hit_rate([r.ids for r in results], ground_truth, 10)
    print(f"attribute-replacement search: Recall@1={r1:.3f} Recall@10={r10:.3f}")

    # --- interactive refinement loop (§IX) ------------------------------
    qi = int(test[1])
    print(f"\nstep 1 — query: {sem.query_labels[qi]}")
    step1 = must.query(Query(enc.queries[qi]), SearchOptions(k=3, l=100))
    for rank, obj in enumerate(step1.ids, 1):
        print(f"  {rank}. {sem.object_labels[obj]}")

    # The shopper picks the top result as the new reference and refines
    # with the *same* text constraint vector (in a real system the text
    # would be re-typed; here we reuse the encoded auxiliary input).
    picked = int(step1.ids[0])
    refined = MultiVector((
        enc.objects.modality(0)[picked],   # returned image as reference
        enc.queries[qi].vectors[1],        # the standing text constraint
    ))
    print(f"\nstep 2 — refine from '{sem.object_labels[picked]}'")
    step2 = must.query(Query(refined), SearchOptions(k=3, l=100))
    for rank, obj in enumerate(step2.ids, 1):
        print(f"  {rank}. {sem.object_labels[obj]}")


if __name__ == "__main__":
    main()
