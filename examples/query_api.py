"""Typed Query API end to end: build → filter → serve.

A product-search corpus with structured attributes (category, price,
rating) attached to the multi-vector objects.  Shows the typed request
surface:

* ``Query`` + ``SearchOptions`` through ``MUST.query`` (the single
  entry point every legacy keyword method now delegates to);
* per-query **attribute filters** (the ``Eq``/``In``/``Range`` DSL,
  composed with ``&``/``|``/``~``) pushed down into exact and graph
  search;
* per-query **weights** and **k overrides** mixed inside one batch;
* graph batches riding the lockstep **wave engine** (the default
  batch plan), with the executed plan and wave counters on the result;
* the same typed requests served through the concurrent
  ``MustService`` front-end while a writer streams new objects in,
  including ``engine="wave"`` requests coalescing into wave groups.

Run:  python examples/query_api.py
"""

import numpy as np

from repro import MUST, Eq, MultiVectorSet, Query, Range, SearchOptions, Weights
from repro.core.multivector import MultiVector, normalize_rows

CATEGORIES = np.array(["shoes", "bags", "watches"])
DIMS = (32, 16)  # image embedding, text embedding


def make_catalogue(n: int, seed: int) -> MultiVectorSet:
    """Random L2-normalised product embeddings + structured attributes."""
    rng = np.random.default_rng(seed)
    objects = MultiVectorSet(
        [normalize_rows(rng.standard_normal((n, d))) for d in DIMS]
    )
    return objects.set_attributes({
        "category": CATEGORIES[rng.integers(0, 3, n)],
        "price": np.round(rng.uniform(5.0, 200.0, n), 2),
        "rating": rng.integers(1, 6, n),
    })


def make_query(seed: int) -> MultiVector:
    rng = np.random.default_rng(seed)
    return MultiVector(tuple(
        normalize_rows(rng.standard_normal((1, d)))[0] for d in DIMS
    ))


def main() -> None:
    # 1. Build over an attributed corpus.
    objects = make_catalogue(2000, seed=0)
    must = MUST(objects, weights=Weights([0.6, 0.4])).build()
    print(f"corpus: {objects.n} products, "
          f"attributes: {', '.join(objects.attributes.fields)}")

    # 2. One typed query — unfiltered vs filtered, exact and graph.
    q = make_query(seed=1)
    flt = Eq("category", "shoes") & Range("price", high=80.0) \
        & Range("rating", low=4)
    plain = must.query(Query(q), SearchOptions(k=5, exact=True))
    filtered = must.query(Query(q, filter=flt), SearchOptions(k=5, exact=True))
    graph = must.query(Query(q, filter=flt), SearchOptions(k=5, l=128))
    price = objects.attributes.column("price")
    print(f"\nunfiltered exact top-5: {plain.ids.tolist()}")
    print(f"filtered   exact top-5: {filtered.ids.tolist()} "
          f"(prices {[float(price[i]) for i in filtered.ids]})")
    overlap = np.intersect1d(graph.ids, filtered.ids).size
    print(f"filtered   graph top-5: {graph.ids.tolist()} "
          f"({overlap}/5 agree with exact)")

    # 3. A batch mixing per-query filters, weights, and k overrides —
    #    the exact path still shares one GEMM wave.
    batch = must.query(
        [
            Query(make_query(2), filter=flt),
            Query(make_query(3), weights=Weights([0.9, 0.1]), k=3),
            make_query(4),  # raw MultiVector coerces to Query
        ],
        SearchOptions(k=5, exact=True, n_jobs=2),
    )
    print(f"\nbatch answer sizes: {[len(r.ids) for r in batch]} "
          f"(middle query overrode k=3)")

    # 4. The same batch on the graph index rides the lockstep wave
    #    engine by default (SearchOptions(engine="auto")): every query
    #    advances its beam frontier in lockstep, one batched scoring
    #    call per wave, per-query filters/weights/k still honoured.
    wave = must.query(
        [
            Query(make_query(2), filter=flt),
            Query(make_query(3), weights=Weights([0.9, 0.1]), k=3),
            make_query(4),
        ],
        SearchOptions(k=5, l=128),
    )
    print(f"\ngraph batch plan: {wave.plan} — "
          f"{wave.stats.waves} waves, "
          f"largest frontier {max(wave.stats.frontier_sizes)} candidates, "
          f"answer sizes {[len(r.ids) for r in wave]}")

    # 5. Serve the same typed requests concurrently; new inserts carry
    #    their own attribute slices and are filterable immediately.
    with must.serve(max_batch=16, max_wait_ms=1.0) as service:
        before = service.search(Query(q, filter=flt),
                                SearchOptions(k=5, exact=True))
        fresh = make_catalogue(50, seed=9)
        ids = service.insert(fresh)
        after = service.search(Query(q, filter=flt),
                               SearchOptions(k=5, exact=True))
        newly = set(after.ids.tolist()) & set(ids.tolist())
        print(f"\nserved filtered top-5 before insert: {before.ids.tolist()}")
        print(f"served filtered top-5 after  insert: {after.ids.tolist()} "
              f"({len(newly)} from the new batch)")
        # Graph requests opting into engine="wave" coalesce into
        # lockstep wave groups on the dispatcher; the stats histograms
        # make the grouping observable.
        futures = [
            service.submit(
                Query(make_query(20 + i)),
                SearchOptions(k=5, l=128, engine="wave"),
            )
            for i in range(8)
        ]
        served = [f.result() for f in futures]
        waves_hist = service.stats.summary()["graph_waves"]
        print(f"wave-served {len(served)} graph requests; "
              f"waves-per-group histogram: {waves_hist}")

    # 6. The legacy kwarg surface still answers identically (with a
    #    DeprecationWarning) — and typos now fail loudly.
    try:
        must.search(q, k=5, early_terminatoin=True)
    except TypeError as exc:
        print(f"\ntypo'd kwarg rejected: {exc}")


if __name__ == "__main__":
    main()
