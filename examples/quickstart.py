"""Quickstart: the full MUST pipeline in ~40 lines.

Generates an MIT-States-like corpus (images of nouns in states, plus text
labels), encodes it with the synthetic ResNet50+LSTM encoder pair, learns
modality weights, builds the fused proximity-graph index, and answers a
multimodal query: *a reference image plus "change state to X"*.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MUST, Query, SearchOptions
from repro.datasets import EncoderCombo, encode_dataset, make_mitstates, split_queries
from repro.metrics import mean_hit_rate


def main() -> None:
    # 1. Data: (noun, state) image corpus with state-edit queries.
    sem = make_mitstates(num_nouns=30, num_states=10, num_queries=120, seed=7)
    enc = encode_dataset(sem, EncoderCombo("resnet50", ("lstm",)), seed=0)
    print(f"corpus: {sem.n} objects × {sem.num_modalities} modalities, "
          f"{sem.num_queries} queries")

    # 2. Weight learning on a training split (§VI).
    train, test = split_queries(sem.num_queries, 0.5, seed=1)
    must = MUST.from_dataset(enc)
    anchors = [enc.queries[i] for i in train]
    positives = np.asarray([enc.ground_truth[i][0] for i in train])
    result = must.fit_weights(anchors, positives, epochs=250, learning_rate=0.2)
    print(f"learned weights ω² = {np.round(result.weights.squared, 3)} "
          f"(trained in {result.seconds:.2f}s)")

    # 3. Fused index construction (Algorithm 1).
    must.build()
    print(f"fused index: {must.index.num_edges} edges, "
          f"built in {must.index.build_seconds:.2f}s")

    # 4. Joint search (Algorithm 2) and evaluation.
    queries = [enc.queries[i] for i in test]
    ground_truth = [enc.ground_truth[i] for i in test]
    results = must.query([Query(q) for q in queries], SearchOptions(k=10, l=100))
    for k in (1, 5, 10):
        r = mean_hit_rate([r.ids for r in results], ground_truth, k)
        print(f"Recall@{k}(1) = {r:.3f}")

    # 5. One query, shown with labels.
    qi = int(test[0])
    print(f"\nquery: {sem.query_labels[qi]}")
    top = must.query(Query(enc.queries[qi]), SearchOptions(k=5, l=100))
    for rank, (obj, sim) in enumerate(zip(top.ids, top.similarities), 1):
        mark = " *" if obj in enc.ground_truth[qi] else ""
        print(f"  {rank}. {sem.object_labels[obj]:24s} joint-sim={sim:.3f}{mark}")


if __name__ == "__main__":
    main()
