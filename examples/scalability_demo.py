"""Scalability: fused-index search vs brute force as the corpus grows.

Builds MUST on ImageText corpora of increasing size (the paper's
ImageText1M→16M sweep, laptop-scaled) and reports per-query latency and
similarity-evaluation counts for the graph vs a full scan (Tab. VII's
shape: brute force grows linearly, the fused index stays near-flat).
Also demonstrates index persistence: build once, save, reload, search.

Run:  python examples/scalability_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import MUST, Query, SearchOptions
from repro.baselines import BruteForceMUST
from repro.datasets import make_imagetext
from repro.datasets.largescale import encode_largescale, exact_ground_truth
from repro.metrics import mean_recall, measure_qps


def main() -> None:
    print(f"{'scale':>8s} {'flat ms/q':>10s} {'graph ms/q':>11s} "
          f"{'graph evals':>12s} {'recall@10':>10s}")
    must = None
    enc = None
    for n in (2_000, 8_000, 20_000):
        sem = make_imagetext(n=n, num_queries=40, seed=23)
        enc = encode_largescale(sem)
        must = MUST.from_dataset(enc)
        positives = np.asarray([g[0] for g in enc.ground_truth[:20]])
        must.fit_weights(enc.queries[:20], positives, epochs=120,
                         learning_rate=0.2)
        must.build()

        gt = exact_ground_truth(enc, must.weights, k=10)
        flat = BruteForceMUST(enc.objects, must.weights).build()
        flat_run = measure_qps(lambda q: flat.search(q, k=10), enc.queries)
        graph_run = measure_qps(
            lambda q: must.query(Query(q), SearchOptions(k=10, l=120)),
            enc.queries,
        )
        recall = mean_recall([r.ids for r in graph_run.results], list(gt), 10)
        evals = np.mean([r.stats.joint_evals for r in graph_run.results])
        print(f"{n:>8,d} {flat_run.mean_latency*1e3:>10.2f} "
              f"{graph_run.mean_latency*1e3:>11.2f} {evals:>12.0f} "
              f"{recall:>10.3f}")

    # --- persistence: save the last index and reload it -----------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "imagetext.idx.npz"
        must.save_index(path)
        fresh = MUST.from_dataset(enc).load_index(path)
        opts = SearchOptions(k=5, l=80)
        a = must.query(Query(enc.queries[0]), opts)
        b = fresh.query(Query(enc.queries[0]), opts)
        assert np.array_equal(a.ids, b.ids)
        print(f"\nindex persisted to {path.name} "
              f"({path.stat().st_size / 2**20:.2f} MB) and reloaded: "
              f"identical results")


if __name__ == "__main__":
    main()
