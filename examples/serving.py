"""Concurrent serving: micro-batch coalescing + snapshot-isolated reads.

Demonstrates the serving front-end over a live, mutating index: N client
threads fire single-query searches at a :class:`MustService` while a
writer thread streams inserts and deletes through it.  The dispatcher
coalesces concurrent exact searches into per-segment GEMM waves (batched
throughput, bit-identical results) and ``engine="wave"`` graph searches
into lockstep :func:`~repro.index.graph_wave.graph_wave_search` groups
(the configuration that makes coalesced graph serving beat the
sequential loop on one core), every wave runs against an immutable
snapshot (no torn reads during compaction), and the bounded queue
applies backpressure instead of growing without bound.  The final stats
dump shows the latency percentiles and batch-size histogram a deployment
would scrape.

Run:  python examples/serving.py
"""

import threading
import time

import numpy as np

from repro import MUST, Query, SearchOptions
from repro.core.multivector import MultiVectorSet, normalize_rows
from repro.core.weights import Weights
from repro.index.segments import SegmentPolicy
from repro.service import ServiceConfig

# Coalescing pays once the per-query scan is the cost centre, so this
# example uses embedding-sized vectors; tiny corpora are dominated by
# dispatch overhead instead and serve fine without a service.
DIMS = (96, 32)  # two modalities (e.g. image + text embeddings)
CORPUS = 2500
NUM_CLIENTS = 16
REQUESTS_PER_CLIENT = 8
#: the plans the demo's requests share (typed Query API).
EXACT10 = SearchOptions(k=10, exact=True)
GRAPH10 = SearchOptions(k=10, l=96)                  # per-query heap engine
WAVE10 = SearchOptions(k=10, l=96, engine="wave")    # lockstep wave groups


def make_batch(n: int, rng: np.random.Generator) -> MultiVectorSet:
    return MultiVectorSet(
        [normalize_rows(rng.standard_normal((n, d)).astype(np.float32))
         for d in DIMS]
    )


def make_query(rng: np.random.Generator):
    from repro.core.multivector import MultiVector

    return MultiVector(
        tuple(
            (lambda v: (v / np.linalg.norm(v)).astype(np.float32))(
                rng.standard_normal(d)
            )
            for d in DIMS
        )
    )


def main() -> None:
    rng = np.random.default_rng(11)
    must = MUST(
        make_batch(CORPUS, rng),
        weights=Weights.uniform(len(DIMS)),
        segment_policy=SegmentPolicy(seal_size=512),
    ).build()
    must.insert(make_batch(100, rng))  # go segmented: the serving state
    queries = [make_query(rng) for _ in range(64)]

    # --- sequential baseline: one caller, one query at a time ---------
    t0 = time.perf_counter()
    baseline = [must.query(Query(q), EXACT10) for q in queries]
    seq_qps = len(queries) / (time.perf_counter() - t0)
    print(f"sequential dispatch        : {seq_qps:7.0f} QPS")

    # --- served: N concurrent clients, then the same load + a writer --
    config = ServiceConfig(max_batch=32, max_wait_ms=2.0, max_queue=128)
    with must.serve(config) as service:
        stop = threading.Event()

        def client(slot: int, opts: SearchOptions) -> None:
            for r in range(REQUESTS_PER_CLIENT):
                service.search(
                    Query(queries[(slot * 7 + r) % len(queries)]), opts
                )

        def run_clients(opts: SearchOptions = EXACT10) -> float:
            threads = [
                threading.Thread(target=client, args=(slot, opts))
                for slot in range(NUM_CLIENTS)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            total = NUM_CLIENTS * REQUESTS_PER_CLIENT
            return total / (time.perf_counter() - t0)

        quiet_qps = run_clients()
        print(f"served ({NUM_CLIENTS} clients)        : {quiet_qps:7.0f} QPS"
              f"  ({quiet_qps / seq_qps:.2f}x)")

        # --- graph serving: engine="wave" coalesces the *work* --------
        t0 = time.perf_counter()
        for q in queries:
            must.query(Query(q), GRAPH10)
        graph_seq_qps = len(queries) / (time.perf_counter() - t0)
        wave_qps = run_clients(WAVE10)
        print(f"graph sequential dispatch  : {graph_seq_qps:7.0f} QPS")
        print(f"graph wave-served          : {wave_qps:7.0f} QPS"
              f"  ({wave_qps / graph_seq_qps:.2f}x)")

        def writer() -> None:
            step = 0
            while not stop.is_set():
                service.insert(make_batch(4, rng))
                if step % 4 == 3:
                    active = service.active_ids()
                    service.mark_deleted(
                        rng.choice(active, size=2, replace=False)
                    )
                step += 1
                time.sleep(0.005)

        wthread = threading.Thread(target=writer)
        wthread.start()
        churn_qps = run_clients()
        stop.set()
        wthread.join()
        print(f"served ({NUM_CLIENTS} clients+writer) : {churn_qps:7.0f} QPS"
              f"  ({churn_qps / seq_qps:.2f}x)")

        # Quiesced parity: served answers equal MUST.query bit for bit.
        res = service.search(Query(queries[0]), EXACT10)
        ref = service.must.query(Query(queries[0]), EXACT10)
        assert np.array_equal(res.ids, ref.ids)
        assert np.array_equal(res.similarities, ref.similarities)
        print("parity vs MUST.search      : bit-identical")

        # Snapshot isolation: a pinned snapshot ignores later writes.
        snap = service.snapshot()
        before = snap.query(Query(queries[1]), EXACT10)
        service.insert(make_batch(32, rng))
        after = snap.query(Query(queries[1]), EXACT10)
        assert np.array_equal(before.ids, after.ids)
        print("snapshot isolation         : stable under writes")

        summary = service.stats.summary()
        latency = summary["latency_ms"]
        print(
            f"latency ms                 : p50={latency['p50']:.2f} "
            f"p95={latency['p95']:.2f} p99={latency['p99']:.2f}"
        )
        print(f"batch-size histogram       : {summary['batch_sizes']}")
        print(f"queue-depth histogram      : {summary['queue_depths']}")
        print(f"wave-group histogram       : {summary['graph_waves']}")
        print(
            f"coalesced                  : {summary['coalesced_requests']} "
            f"requests in {summary['coalesced_batches']} batches"
        )
    del baseline


if __name__ == "__main__":
    main()
