"""Streaming dynamic updates: inserts, deletes, and auto-compaction.

Demonstrates the §IX dynamic-update subsystem: build MUST on an initial
corpus, then stream new objects into the live index while deleting old
ones.  The segmented index seals the mutable delta into immutable graph
segments as it fills and compacts automatically once tombstones pile up
— watch the segment lifecycle in the printed log.  Results carry stable
external ids throughout, and the exact path stays bit-identical to a
brute-force scan over the live objects no matter how the corpus is
currently segmented.

Run:  python examples/streaming_updates.py
"""

import numpy as np

from repro import MUST, Query, SearchOptions
from repro.core.multivector import MultiVectorSet, normalize_rows
from repro.core.weights import Weights
from repro.index.segments import SegmentPolicy

DIMS = (32, 16)  # two modalities (e.g. image + text embeddings)


def make_batch(n: int, rng: np.random.Generator) -> MultiVectorSet:
    return MultiVectorSet(
        [normalize_rows(rng.standard_normal((n, d)).astype(np.float32))
         for d in DIMS]
    )


def lifecycle(must: MUST) -> str:
    d = must.segments.describe()
    segs = " + ".join(
        f"{s['kind']}[{s['active']}/{s['n']}]" for s in d["segments"]
    )
    return (f"{segs}  (seals={d['seals']}, compactions={d['compactions']}, "
            f"active={d['active']})")


def main() -> None:
    rng = np.random.default_rng(7)
    corpus = make_batch(600, rng)
    must = MUST(
        corpus,
        weights=Weights.uniform(len(DIMS)),
        segment_policy=SegmentPolicy(
            seal_size=128,            # delta seals into a graph at 128 objects
            max_segments=3,           # merge-compact beyond 3 sealed segments
            max_deleted_fraction=0.25,  # rebuild once 25% are tombstones
        ),
    )
    must.build()

    query = make_batch(1, rng).row(0)
    print("initial:", lifecycle(must) if must.is_segmented else "single graph")

    for step in range(6):
        ext = must.insert(make_batch(80, rng))
        doomed = rng.choice(must.segments.active_ext_ids(), 40, replace=False)
        must.mark_deleted(doomed)
        res = must.query(Query(query), SearchOptions(k=5, l=100))
        print(f"step {step}: inserted ids {ext[0]}–{ext[-1]}, deleted 40 → "
              f"{lifecycle(must)}")
        print(f"         top-5 external ids: {res.ids.tolist()} "
              f"({res.stats.segments_probed} segment(s) probed)")

    # Exact search agrees with brute force over the live set, bit for bit,
    # regardless of the segment layout above.
    exact = must.query(Query(query), SearchOptions(k=5, exact=True))
    print("exact top-5:", exact.ids.tolist())

    _, active = must.compact()  # force a final §IX reconstruction
    print("after forced compact:", lifecycle(must))
    exact2 = must.query(Query(query), SearchOptions(k=5, exact=True))
    assert np.array_equal(exact.ids, exact2.ids), "compaction changed results!"
    print("exact results unchanged by compaction ✓")


if __name__ == "__main__":
    main()
