"""Legacy setup shim.

``pip install -e .`` needs the ``wheel`` package under old setuptools;
on minimal environments without it, ``python setup.py develop`` provides
the same editable install through this shim.
"""

from setuptools import setup

setup()
