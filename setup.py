"""Legacy setup shim — all metadata lives in ``pyproject.toml``.

``pip install -e .`` needs the ``wheel`` package under old setuptools;
on minimal environments without it, ``python setup.py develop`` provides
the same editable install through this shim (setuptools reads the
project table from ``pyproject.toml`` either way).
"""

from setuptools import setup

setup()
