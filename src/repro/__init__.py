"""repro — a full reproduction of MUST (ICDE 2024).

MUST: An Effective and Scalable Framework for Multimodal Search of Target
Modality (Wang et al.).  The package provides:

* :class:`repro.core.MUST` — the framework: multi-vector embedding,
  vector weight learning, fused proximity-graph indexing, joint search;
* :mod:`repro.baselines` — the MR / JE / MUST-- / MR-- comparison points;
* :mod:`repro.index` — seven proximity-graph algorithms built from a
  component pipeline;
* :mod:`repro.datasets` — generators for the paper's nine corpora;
* :mod:`repro.embedding` — the pluggable (simulated) encoder zoo;
* :mod:`repro.metrics` — Recall@k(k'), SME, and QPS measurement.

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    MUST,
    And,
    AttributeTable,
    Eq,
    Filter,
    In,
    JointSpace,
    MultiVector,
    MultiVectorSet,
    Not,
    Or,
    Query,
    Range,
    SearchOptions,
    SearchResult,
    SearchStats,
    Weights,
)

__version__ = "1.1.0"

__all__ = [
    "MUST",
    "JointSpace",
    "MultiVector",
    "MultiVectorSet",
    "SearchResult",
    "SearchStats",
    "Weights",
    "AttributeTable",
    "Query",
    "SearchOptions",
    "Filter",
    "Eq",
    "In",
    "Range",
    "And",
    "Or",
    "Not",
    "__version__",
]
