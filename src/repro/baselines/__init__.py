"""The paper's baselines: MR, JE, and the brute-force variants."""

from repro.baselines.brute_force import BruteForceMUST
from repro.baselines.joint_embedding import JointEmbeddingSearch
from repro.baselines.merging import merge_candidates
from repro.baselines.multi_streamed import MultiStreamedRetrieval

__all__ = [
    "BruteForceMUST",
    "JointEmbeddingSearch",
    "merge_candidates",
    "MultiStreamedRetrieval",
]
