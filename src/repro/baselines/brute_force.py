"""Brute-force MUST (the paper's **MUST--**): exact joint search.

Same multi-vector representation and weights as MUST, but a linear scan
instead of the fused graph — the reference point of Fig. 6 / Tab. VII.
"""

from __future__ import annotations

from repro.core.multivector import MultiVector, MultiVectorSet
from repro.core.query import Query
from repro.core.results import SearchResult
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.executor import BatchExecutor, BatchResult
from repro.index.flat import FlatIndex

__all__ = ["BruteForceMUST"]


class BruteForceMUST:
    """Exact joint-similarity search (no index).

    Accepts typed :class:`~repro.core.query.Query` objects anywhere a
    :class:`MultiVector` is accepted — per-query weights, attribute
    filters, and k overrides flow straight through the shared
    :class:`FlatIndex` scan, so the baseline stays a valid post-filter
    oracle for the filtered search paths.
    """

    name = "MUST--"

    def __init__(self, objects: MultiVectorSet, weights: Weights):
        self.space = JointSpace(objects, weights)
        self._flat = FlatIndex(self.space)
        self.build_seconds = 0.0

    def build(self) -> "BruteForceMUST":
        """No-op for API parity with the indexed searchers."""
        return self

    def search(
        self,
        query: MultiVector | Query,
        k: int,
        weights: Weights | None = None,
    ) -> SearchResult:
        return self._flat.search(query, k, weights=weights)

    def batch_search(
        self,
        queries: list[MultiVector | Query],
        k: int,
        weights: Weights | None = None,
        n_jobs: int = 1,
    ) -> BatchResult:
        """Exact batch: all fast-path queries scored with one GEMM."""
        return BatchExecutor(n_jobs=n_jobs).run_flat(
            self._flat, queries, k, weights=weights
        )
