"""Baseline 2 — Joint Embedding (JE), paper §III.

All query modalities are fused into a single composition vector
``Φ(q0,…,q_{t−1})`` and searched against the corpus of target-modality
vectors ``{ϕ0(o0)}`` over one index (Fig. 2, possible solution II).
Accuracy is bounded by the fusion encoder's error — the paper's §IV
example and Tables III–VI show it trailing both MR and MUST.
"""

from __future__ import annotations

import time

from repro.core.multivector import MultiVector, MultiVectorSet
from repro.core.results import SearchResult
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.executor import BatchExecutor, BatchResult
from repro.index.flat import FlatIndex
from repro.index.pipeline import FusedIndexBuilder
from repro.index.search import joint_search
from repro.utils.validation import require

__all__ = ["JointEmbeddingSearch"]


class JointEmbeddingSearch:
    """Single-channel vector search over the target modality."""

    def __init__(
        self,
        objects: MultiVectorSet,
        target_modality: int = 0,
        builder=None,
        exact: bool = False,
    ):
        self.objects = objects
        self.target_modality = int(target_modality)
        self.exact = bool(exact)
        self._builder = builder or FusedIndexBuilder(name="je")
        self.space = JointSpace(
            MultiVectorSet([objects.modality(self.target_modality)]),
            Weights([1.0]),
        )
        self._index = None
        self.build_seconds = 0.0

    @property
    def name(self) -> str:
        return "JE"

    def build(self) -> "JointEmbeddingSearch":
        start = time.perf_counter()
        self._index = (
            FlatIndex(self.space) if self.exact else self._builder.build(self.space)
        )
        self.build_seconds = time.perf_counter() - start
        return self

    def search(
        self, query: MultiVector, k: int, l: int = 100
    ) -> SearchResult:
        """Search with the composition vector in the query's target slot."""
        require(self._index is not None, "call build() first")
        sub_query = self._sub_query(query)
        if self.exact:
            return self._index.search(sub_query, k)
        return joint_search(
            self._index, sub_query, k=k, l=min(max(l, k), self.objects.n)
        )

    def _sub_query(self, query: MultiVector) -> MultiVector:
        composition = query.vectors[self.target_modality]
        require(
            composition is not None,
            "JE needs the composition vector in the target slot "
            "(encode the dataset with a composition encoder, Option 2)",
        )
        return MultiVector((composition,))

    def batch_search(
        self,
        queries: list[MultiVector],
        k: int,
        l: int = 100,
        n_jobs: int = 1,
        rng: int | None = 0,
    ) -> BatchResult:
        """Batch JE search via the shared executor (GEMM when exact,
        thread pool + per-query child seeds over the graph otherwise)."""
        require(self._index is not None, "call build() first")
        sub_queries = [self._sub_query(q) for q in queries]
        executor = BatchExecutor(n_jobs=n_jobs, rng=rng)
        if self.exact:
            return executor.run_flat(self._index, sub_queries, k)
        return executor.run_graph(
            self._index, sub_queries, k=k,
            l=min(max(l, k), self.objects.n),
        )
