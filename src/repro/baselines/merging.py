"""Candidate merging for multi-streamed retrieval (paper §III, Baseline 1).

MR retrieves a candidate list per modality and must combine them without
knowing modality importance.  Following the paper, the *intersection* of
all candidate sets forms the primary results; because the intersection
routinely misses ``k`` objects (or wildly exceeds it — the failure mode
§VIII-D analyses), ties and shortfalls are resolved by **rank
aggregation**: objects are ordered by the sum of their per-modality ranks,
with absent entries penalised at list length.  This is the classic
rank-fusion practice from the IR literature the paper cites [20], [22].
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require

__all__ = ["merge_candidates"]


def merge_candidates(
    candidate_lists: list[np.ndarray],
    k: int,
    strategy: str = "intersection-target",
) -> np.ndarray:
    """Merge per-modality ranked id lists into the final top-*k*.

    Each entry of *candidate_lists* is a best-first id array from one
    modality's search; list 0 is the target modality's.

    Strategies:

    * ``"intersection-target"`` (paper-faithful default): the intersection
      of all candidate sets forms the results.  Because modality
      importance is unknown, members can only be ordered by a *single*
      stream — the target modality's rank, since the target modality
      renders the results.  Shortfalls are filled from the union ordered
      by (membership count, rank sum).  This reproduces the paper's
      §VIII-D observation that MR's accuracy saturates: the right answer
      is often in the intersection but not ranked first.
    * ``"rank-sum"``: Borda-style rank aggregation over all streams — a
      stronger merge than the paper's, kept as an ablation upper bound
      for the merging step.
    """
    require(len(candidate_lists) >= 1, "need at least one candidate list")
    require(k >= 1, "k must be positive")
    require(strategy in ("intersection-target", "rank-sum"),
            f"unknown merge strategy {strategy!r}")
    lists = [np.asarray(c, dtype=np.int64) for c in candidate_lists]
    if len(lists) == 1:
        return lists[0][:k]

    # Per-object rank in each list; missing = penalty rank (list length).
    rank_maps: list[dict[int, int]] = []
    for ids in lists:
        rank_maps.append({int(obj): pos for pos, obj in enumerate(ids)})

    union: set[int] = set()
    for ids in lists:
        union.update(int(x) for x in ids)

    scored: list[tuple] = []
    for obj in union:
        miss = 0
        rank_sum = 0
        for ids, ranks in zip(lists, rank_maps):
            pos = ranks.get(obj)
            if pos is None:
                miss += 1
                rank_sum += len(ids)
            else:
                rank_sum += pos
        if strategy == "intersection-target":
            in_intersection = 0 if miss == 0 else 1
            target_rank = rank_maps[0].get(obj, len(lists[0]))
            scored.append((in_intersection, target_rank if miss == 0 else 0,
                           miss, rank_sum, obj))
        else:
            scored.append((miss == len(lists), rank_sum, miss, 0, obj))

    scored.sort()
    return np.asarray([entry[-1] for entry in scored[:k]], dtype=np.int64)
