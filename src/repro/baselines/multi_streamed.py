"""Baseline 1 — Multi-streamed Retrieval (MR), paper §III.

One vector index per modality; a query is split into sub-queries, each
searched independently, and the candidate lists are merged
(intersection-first rank fusion).  ``exact=True`` yields the brute-force
variant the paper labels **MR--**.

The §III optimisation is supported transparently: when the caller passes
Option-2 queries (composition vector in the target slot), the target
stream searches with ``Φ(q0,…,q_{t−1})`` instead of ``ϕ0(q0)``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.multivector import MultiVector, MultiVectorSet
from repro.core.results import SearchResult, SearchStats
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.baselines.merging import merge_candidates
from repro.index.executor import BatchResult
from repro.index.flat import FlatIndex
from repro.index.pipeline import FusedIndexBuilder
from repro.index.search import joint_search
from repro.utils.parallel import thread_map
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import require

__all__ = ["MultiStreamedRetrieval"]


class MultiStreamedRetrieval:
    """Per-modality indexes + candidate merging."""

    def __init__(
        self,
        objects: MultiVectorSet,
        builder_factory=None,
        exact: bool = False,
        merge_strategy: str = "intersection-target",
    ):
        """``builder_factory(modality_index) -> builder`` customises the
        per-modality graph; the default is the same fused pipeline MUST
        uses, applied to a single modality (fair comparison, §VIII-A).
        ``merge_strategy`` selects the candidate-merging rule (see
        :func:`repro.baselines.merging.merge_candidates`).
        """
        self.objects = objects
        self.exact = bool(exact)
        self.merge_strategy = merge_strategy
        self._builder_factory = builder_factory or (
            lambda i: FusedIndexBuilder(name=f"mr-modality{i}")
        )
        self._spaces = [
            JointSpace(MultiVectorSet([objects.modality(i)]), Weights([1.0]))
            for i in range(objects.num_modalities)
        ]
        self._indexes: list | None = None
        self.build_seconds = 0.0

    @property
    def name(self) -> str:
        return "MR--" if self.exact else "MR"

    @property
    def num_modalities(self) -> int:
        return self.objects.num_modalities

    # ------------------------------------------------------------------
    def build(self) -> "MultiStreamedRetrieval":
        """Build all per-modality indexes (t indexes, Fig. 2 left)."""
        start = time.perf_counter()
        if self.exact:
            self._indexes = [FlatIndex(space) for space in self._spaces]
        else:
            self._indexes = [
                self._builder_factory(i).build(space)
                for i, space in enumerate(self._spaces)
            ]
        self.build_seconds = time.perf_counter() - start
        return self

    def index_size_in_bytes(self) -> int:
        """Total size of all per-modality graphs (Fig. 7(b))."""
        require(self._indexes is not None, "call build() first")
        if self.exact:
            return 0
        return sum(index.size_in_bytes() for index in self._indexes)

    # ------------------------------------------------------------------
    def search(
        self,
        query: MultiVector,
        k: int,
        candidates_per_modality: int = 100,
        rng: int | np.random.Generator | None = 0,
    ) -> SearchResult:
        """Split → per-modality search → merge (Fig. 2, possible solution I).

        ``candidates_per_modality`` is the per-stream candidate budget the
        paper sweeps (it needs >10⁴ for best accuracy at million scale,
        which is exactly MR's weakness).
        """
        require(self._indexes is not None, "call build() first")
        require(
            query.num_modalities == self.num_modalities,
            "query modality count mismatch",
        )
        stats = SearchStats()
        lists: list[np.ndarray] = []
        per_stream_sims: dict[int, dict[int, float]] = {}
        for i, vec in enumerate(query.vectors):
            if vec is None:
                continue
            sub_query = MultiVector((vec,))
            if self.exact:
                result = self._indexes[i].search(
                    sub_query, candidates_per_modality
                )
            else:
                result = joint_search(
                    self._indexes[i],
                    sub_query,
                    k=min(candidates_per_modality, self.objects.n),
                    l=min(candidates_per_modality, self.objects.n),
                    rng=rng,
                )
            stats.merge(result.stats)
            lists.append(result.ids)
            per_stream_sims[i] = {
                int(obj): float(s)
                for obj, s in zip(result.ids, result.similarities)
            }
        require(lists, "query has no usable modality")

        merged = merge_candidates(lists, k, strategy=self.merge_strategy)
        # Report the mean per-stream similarity where known (merging has
        # no joint score — that is the point of the baseline).
        sims = np.asarray([
            np.mean([
                stream.get(int(obj), 0.0)
                for stream in per_stream_sims.values()
            ])
            for obj in merged
        ])
        return SearchResult(ids=merged, similarities=sims, stats=stats)

    def batch_search(
        self,
        queries: list[MultiVector],
        k: int,
        candidates_per_modality: int = 100,
        n_jobs: int = 1,
        rng: int | None = 0,
    ) -> BatchResult:
        """Batch MR search: whole queries (split + merge included) run as
        stateless tasks on a thread pool; each query's streams share one
        child seed derived from ``rng`` (``SeedSequence.spawn``)."""
        queries = list(queries)
        seeds = spawn_seed_sequences(rng, len(queries))
        results = thread_map(
            lambda task: self.search(
                task[0], k,
                candidates_per_modality=candidates_per_modality,
                rng=np.random.default_rng(task[1]),
            ),
            zip(queries, seeds),
            n_jobs=n_jobs,
        )
        return BatchResult(
            results, SearchStats.aggregate(r.stats for r in results)
        )
