"""Benchmark harness: one experiment function per paper table/figure.

See DESIGN.md §4 for the experiment index.  ``python -m repro.bench.report``
regenerates every artifact and the EXPERIMENTS.md record.
"""

from repro.bench.harness import Table, format_table, save_table

__all__ = ["Table", "format_table", "save_table"]
