"""Ablations: Fig. 9/13 (weight learning), Fig. 10(a,b) (graph zoo),
Tab. XI (NNDescent iterations), Fig. 14/15 (γ sweep)."""

from __future__ import annotations

import numpy as np

from repro.bench import cache
from repro.bench.harness import Table
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.datasets.largescale import exact_ground_truth
from repro.index import BUILDERS, FusedIndexBuilder, graph_quality, nndescent
from repro.index.search import joint_search
from repro.metrics import mean_recall, measure_qps
from repro.weightlearn import VectorWeightLearner

__all__ = [
    "fig9_negative_strategies",
    "fig13_negative_counts",
    "fig10ab_graph_zoo",
    "tab11_iterations",
    "fig14_gamma",
]

_GRAPH_N = 8_000


def _training_data():
    """Weight-learning workload for Fig. 9/13.

    Uses MIT-States rather than the semi-synthetic ImageText corpus: the
    latter's planted queries are solvable at recall 1.0 under almost any
    weights, which would mask the hard-vs-random contrast the figures
    exist to show.
    """
    enc = cache.encoded("mitstates", "resnet50", ("lstm",))
    train, _ = cache.train_test_split("mitstates")
    anchors = [enc.queries[i] for i in train]
    positives = np.asarray([enc.ground_truth[i][0] for i in train])
    return enc, anchors, positives


def fig9_negative_strategies() -> Table:
    """Fig. 9: hard vs random negatives — loss/recall trajectories."""
    enc, anchors, positives = _training_data()
    headers = ["Strategy", "Epoch", "Loss", "TrainRecall", "w0^2", "w1^2"]
    rows = []
    for strategy in ("hard", "random"):
        learner = VectorWeightLearner(
            epochs=200, learning_rate=0.2, strategy=strategy, seed=0
        )
        result = learner.fit(anchors, positives, enc.objects)
        h = result.history
        for epoch in (0, 49, 99, 199):
            w2 = h.squared_weights[epoch]
            rows.append([
                strategy, epoch + 1, h.loss[epoch], h.recall[epoch],
                float(w2[0]), float(w2[1]),
            ])
    return Table(
        "Fig. 9", "Hard vs random negatives (weight learning)", headers, rows,
        notes="Hard negatives converge in far fewer epochs and land nearer "
              "the retrieval-optimal weight ratio; on this substrate random "
              "negatives eventually reach comparable training recall (a "
              "weaker contrast than the paper's Fig. 9).",
    )


def fig13_negative_counts() -> Table:
    """Fig. 13: effect of |N⁻| on weight-learning quality."""
    enc, anchors, positives = _training_data()
    headers = ["|N-|", "FinalLoss", "FinalTrainRecall", "Seconds"]
    rows = []
    for num_neg in (1, 2, 4, 6, 8, 10):
        learner = VectorWeightLearner(
            epochs=150, learning_rate=0.2, num_negatives=num_neg, seed=0
        )
        result = learner.fit(anchors, positives, enc.objects)
        rows.append([
            num_neg, result.history.loss[-1], result.history.recall[-1],
            result.seconds,
        ])
    return Table(
        "Fig. 13", "Effect of the number of negative examples", headers, rows,
        notes="More negatives sharpen training at modest extra cost.",
    )


def fig10ab_graph_zoo() -> Table:
    """Fig. 10(a,b): build time and search performance across graphs."""
    enc, must = cache.largescale_must("image", _GRAPH_N)
    space = JointSpace(enc.objects, must.weights)
    gt = exact_ground_truth(enc, must.weights, k=10)
    queries = enc.queries
    headers = ["Graph", "Build (s)", "Edges", "Recall@10(10)", "QPS",
               "JointEvals/query"]
    rows = []
    for name in ("ours", "nssg", "nsg", "kgraph", "hnsw", "vamana", "hcnng"):
        index = BUILDERS[name](seed=0).build(space)
        run = measure_qps(
            lambda q, idx=index: joint_search(idx, q, k=10, l=80), queries
        )
        rec = mean_recall(
            [r.ids for r in run.results], [g for g in gt], 10
        )
        evals = np.mean([r.stats.joint_evals for r in run.results])
        rows.append([
            name, index.build_seconds, index.num_edges, rec, run.qps, evals,
        ])
    return Table(
        "Fig. 10(a,b)", "Proximity-graph ablation (ImageText)", headers, rows,
        notes="The re-assembled pipeline ('ours') balances build cost and "
              "search efficiency.",
    )


def tab11_iterations() -> Table:
    """Tab. XI: graph quality vs NNDescent iterations ε."""
    headers = ["Iterations", "ImageText", "AudioText", "VideoText"]
    spaces = {}
    for kind in ("image", "audio", "video"):
        enc, must = cache.largescale_must(kind, _GRAPH_N)
        spaces[kind] = JointSpace(enc.objects, must.weights)
    rows = []
    for eps in (1, 2, 3):
        row: list = [eps]
        for kind in ("image", "audio", "video"):
            knn = nndescent(spaces[kind], k=20, iterations=eps, seed=0)
            row.append(graph_quality(spaces[kind], knn, sample=150))
        rows.append(row)
    return Table(
        "Tab. XI", "Graph quality under different iteration counts",
        headers, rows,
        notes="Quality approaches 1.0 by ε=3 on every corpus (paper: 0.99).",
    )


def fig14_gamma() -> Table:
    """Fig. 14/15: γ sweep — index size, build time, recall, latency."""
    enc, must = cache.largescale_must("image", _GRAPH_N)
    space = JointSpace(enc.objects, must.weights)
    gt = exact_ground_truth(enc, must.weights, k=10)
    headers = ["gamma", "Build (s)", "Size (MB)", "Recall@10(10)", "ms/query"]
    rows = []
    for gamma in (10, 20, 30, 40, 50):
        index = FusedIndexBuilder(gamma=gamma, seed=0).build(space)
        run = measure_qps(
            lambda q, idx=index: joint_search(idx, q, k=10, l=80), enc.queries
        )
        rec = mean_recall([r.ids for r in run.results], list(gt), 10)
        rows.append([
            gamma, index.build_seconds, index.size_in_bytes() / 2**20,
            rec, run.mean_latency * 1e3,
        ])
    return Table(
        "Fig. 14/15", "Effect of the maximum neighbour count γ", headers, rows,
        notes="Size/build grow with γ; recall saturates while per-query "
              "cost keeps climbing — γ=30 is the paper's default.",
    )
