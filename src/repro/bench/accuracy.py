"""Accuracy experiments: Tables III–VI, VIII–X, XIX–XXI.

Each function reproduces one paper table: the three frameworks (JE / MR /
MUST) are evaluated on the same encoded corpus with the same metric,
``Recall@k(1)`` (hit rate against the planted ground truth) plus SME.
MR is given its best candidate budget per row, as the paper did (§VIII-F
reports tuning MR's candidates for its best Recall).
"""

from __future__ import annotations

import numpy as np

from repro.bench import cache
from repro.bench.harness import Table
from repro.core.query import Query, SearchOptions
from repro.core.weights import Weights
from repro.metrics import mean_hit_rate, mean_sme

__all__ = [
    "accuracy_table",
    "tab3_mitstates",
    "tab4_celeba",
    "tab5_shopping_tshirt",
    "tab21_shopping_bottoms",
    "tab6_mscoco",
    "tab8_modalities",
    "tab9_user_weights",
    "tab10_single_modality",
]

_MR_BUDGETS = (50, 100, 200)
_SEARCH_L = 128


def _evaluate(name, framework, target, auxiliaries, ks, opt2):
    """(recalls at ks, SME) for one framework row."""
    enc = cache.encoded(name, target, auxiliaries)
    _, test = cache.train_test_split(name)
    queries_all = (
        enc.queries_option2
        if (opt2 and enc.queries_option2)
        else enc.queries_option1
    )
    queries = [queries_all[i] for i in test]
    gt = [enc.ground_truth[i] for i in test]

    if framework == "MUST":
        _, must, _ = cache.trained_must(name, target, auxiliaries)
        plan = SearchOptions(k=max(ks), l=_SEARCH_L)
        results = [must.query(Query(q), plan).ids for q in queries]
    elif framework == "MR":
        mr = cache.mr_baseline(name, target, auxiliaries)
        best, best_r = None, -1.0
        for budget in _MR_BUDGETS:
            res = [
                mr.search(q, k=max(ks), candidates_per_modality=budget).ids
                for q in queries
            ]
            r = mean_hit_rate(res, gt, ks[0])
            if r > best_r:
                best, best_r = res, r
        results = best
    elif framework == "JE":
        je = cache.je_baseline(name, target, auxiliaries)
        results = [je.search(q, k=max(ks), l=_SEARCH_L).ids for q in queries]
    else:  # pragma: no cover - guarded by callers
        raise KeyError(framework)

    recalls = [mean_hit_rate(results, gt, k) for k in ks]
    error = mean_sme(
        enc.objects.modality(0), [r[0] for r in results], gt
    )
    return recalls, error


def accuracy_table(
    experiment_id: str,
    title: str,
    name: str,
    je_rows: list[tuple[str, tuple[str, ...]]],
    mr_rows: list[tuple[str, tuple[str, ...], bool]],
    must_rows: list[tuple[str, tuple[str, ...], bool]],
    ks: tuple[int, ...] = (1, 5, 10),
) -> Table:
    """Generic Tab. III–VI builder: one row per (framework, combo)."""
    headers = ["Framework", "Encoder"] + [f"Recall@{k}(1)" for k in ks] + ["SME"]
    rows: list[list] = []
    for target, aux in je_rows:
        recalls, err = _evaluate(name, "JE", target, aux, ks, opt2=True)
        enc = cache.encoded(name, target, aux)
        rows.append(["JE", enc.combo.label.split("+")[0], *recalls, err])
    for target, aux, opt2 in mr_rows:
        recalls, err = _evaluate(name, "MR", target, aux, ks, opt2=opt2)
        enc = cache.encoded(name, target, aux)
        rows.append(["MR", enc.combo.label, *recalls, err])
    for target, aux, opt2 in must_rows:
        recalls, err = _evaluate(name, "MUST", target, aux, ks, opt2=opt2)
        enc = cache.encoded(name, target, aux)
        rows.append(["MUST", enc.combo.label, *recalls, err])
    return Table(experiment_id, title, headers, rows)


def tab3_mitstates() -> Table:
    combos = [
        ("resnet17", ("lstm",)),
        ("resnet50", ("lstm",)),
        ("resnet17", ("transformer",)),
        ("resnet50", ("transformer",)),
        ("tirg", ("lstm",)),
        ("tirg", ("transformer",)),
        ("clip", ("lstm",)),
        ("clip", ("transformer",)),
    ]
    return accuracy_table(
        "Tab. III", "Search accuracy on MIT-States", "mitstates",
        je_rows=[("tirg", ("lstm",)), ("clip", ("lstm",))],
        mr_rows=[(t, a, True) for t, a in combos],
        must_rows=[(t, a, True) for t, a in combos],
    )


def tab4_celeba() -> Table:
    combos = [
        ("resnet17", ("encoding",)),
        ("resnet50", ("encoding",)),
        ("tirg", ("encoding",)),
        ("clip", ("encoding",)),
    ]
    return accuracy_table(
        "Tab. IV", "Search accuracy on CelebA", "celeba",
        je_rows=[("tirg", ("encoding",)), ("clip", ("encoding",))],
        mr_rows=[(t, a, True) for t, a in combos],
        must_rows=[(t, a, True) for t, a in combos],
    )


def tab5_shopping_tshirt() -> Table:
    return accuracy_table(
        "Tab. V", "Search accuracy on Shopping (T-shirt)", "shopping_tshirt",
        je_rows=[("tirg", ("encoding",))],
        mr_rows=[("resnet17", ("encoding",), True), ("tirg", ("encoding",), True)],
        must_rows=[("resnet17", ("encoding",), True), ("tirg", ("encoding",), True)],
    )


def tab21_shopping_bottoms() -> Table:
    return accuracy_table(
        "Tab. XXI", "Search accuracy on Shopping (Bottoms)", "shopping_bottoms",
        je_rows=[("tirg", ("encoding",))],
        mr_rows=[("resnet17", ("encoding",), True), ("tirg", ("encoding",), True)],
        must_rows=[("resnet17", ("encoding",), True), ("tirg", ("encoding",), True)],
    )


def tab6_mscoco() -> Table:
    combos = [("mpc", ("resnet50", "gru")), ("resnet50", ("resnet50", "gru"))]
    return accuracy_table(
        "Tab. VI", "Search accuracy on MS-COCO (3 modalities)", "mscoco",
        je_rows=[("mpc", ("resnet50", "gru"))],
        mr_rows=[(t, a, True) for t, a in combos],
        must_rows=[(t, a, True) for t, a in combos],
        ks=(10, 50, 100),
    )


def tab8_modalities() -> Table:
    """Tab. VIII: recall vs number of modalities on CelebA+."""
    headers = ["# Modality (m)", "MR Recall@1(1)", "MUST Recall@1(1)"]
    rows = []
    for m in (2, 3, 4):
        name = f"celeba_plus_m{m}"
        target, aux = "clip", ("encoding",) + ("resnet17", "resnet50")[: m - 2]
        enc = cache.encoded(name, target, aux)
        _, test = cache.train_test_split(name)
        queries = [enc.queries[i] for i in test]
        gt = [enc.ground_truth[i] for i in test]
        _, must, _ = cache.trained_must(name, target, aux)
        must_r = mean_hit_rate(
            [
                must.query(Query(q), SearchOptions(k=10, l=_SEARCH_L)).ids
                for q in queries
            ], gt, 1
        )
        mr = cache.mr_baseline(name, target, aux)
        mr_r = max(
            mean_hit_rate(
                [mr.search(q, 10, candidates_per_modality=b).ids for q in queries],
                gt, 1,
            )
            for b in _MR_BUDGETS
        )
        rows.append([m, mr_r, must_r])
    return Table(
        "Tab. VIII", "Recall with different numbers of modalities (CelebA+)",
        headers, rows,
        notes="MUST improves with m; MR's merging degrades as streams grow.",
    )


def tab9_user_weights() -> Table:
    """Tab. IX: user-defined weights trade target vs auxiliary similarity."""
    enc, must, test = cache.trained_must("mitstates", "resnet50", ("lstm",))
    queries = [enc.queries[i] for i in test]
    headers = ["w0^2", "w1^2", "IP(q0, r0)", "IP(q1, r1)"]
    rows = []
    for w0 in (0.5, 0.6, 0.7, 0.8, 0.9):
        weights = Weights([w0, 1.0 - w0])
        ip0, ip1 = [], []
        for q in queries:
            top = must.query(
                Query(q, weights=weights), SearchOptions(k=1, l=_SEARCH_L)
            )
            r = int(top.ids[0])
            ip0.append(float(enc.objects.modality(0)[r] @ q.vectors[0]))
            ip1.append(float(enc.objects.modality(1)[r] @ q.vectors[1]))
        rows.append([w0, round(1.0 - w0, 1),
                     float(np.mean(ip0)), float(np.mean(ip1))])
    return Table(
        "Tab. IX", "Effect of user-defined weights (MIT-States)",
        headers, rows,
        notes="Raising w0 pulls results towards the target modality input.",
    )


def tab10_single_modality() -> Table:
    """Tab. X / XIX / XX: single-query-modality accuracy."""
    headers = ["Dataset", "Modality", "Encoder", "Recall@1(1)", "Recall@5(1)"]
    rows = []
    specs = [
        ("mitstates", "Target", "resnet17", ("lstm",), 0),
        ("mitstates", "Target", "resnet50", ("lstm",), 0),
        ("mitstates", "Auxiliary", "resnet50", ("lstm",), 1),
        ("mitstates", "Auxiliary", "resnet50", ("transformer",), 1),
        ("celeba", "Target", "resnet50", ("encoding",), 0),
        ("celeba", "Auxiliary", "resnet50", ("encoding",), 1),
        ("shopping_tshirt", "Target", "resnet17", ("encoding",), 0),
        ("shopping_tshirt", "Auxiliary", "resnet17", ("encoding",), 1),
    ]
    for name, which, target, aux, modality in specs:
        enc = cache.encoded(name, target, aux)
        _, test = cache.train_test_split(name)
        _, must, _ = cache.trained_must(name, target, aux)
        singles = enc.queries_single_modality(modality)
        queries = [singles[i] for i in test]
        gt = [enc.ground_truth[i] for i in test]
        plan = SearchOptions(k=5, l=_SEARCH_L)
        results = [must.query(Query(q), plan).ids for q in queries]
        encoder = (enc.combo.label.split("+")[0] if modality == 0
                   else enc.combo.label.split("+")[1])
        rows.append([
            enc.name, which, encoder,
            mean_hit_rate(results, gt, 1), mean_hit_rate(results, gt, 5),
        ])
    return Table(
        "Tab. X/XIX/XX", "Single query-modality accuracy",
        headers, rows,
        notes="Single-modality queries trail multimodal ones on every corpus.",
    )
