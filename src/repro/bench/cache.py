"""Memoised experiment artifacts shared across benchmark files.

Graph builds and weight training are the expensive parts of the harness;
this module builds each (dataset, combo) artifact once per process so the
benchmark suite reuses them across every table and figure.
"""

from __future__ import annotations

import os
from functools import lru_cache

import numpy as np

from repro.baselines import JointEmbeddingSearch, MultiStreamedRetrieval
from repro.core.framework import MUST
from repro.datasets import (
    EncoderCombo,
    encode_dataset,
    make_celeba,
    make_celeba_plus,
    make_largescale,
    make_mitstates,
    make_mscoco,
    make_shopping,
    split_queries,
)

__all__ = [
    "semantic_dataset",
    "encoded",
    "trained_must",
    "mr_baseline",
    "je_baseline",
    "largescale_encoded",
    "largescale_must",
    "train_test_split",
]

def _int_knob(name: str, default: int) -> int:
    """Benchmark scale knob, overridable via the environment.

    CI smoke runs shrink the whole harness with e.g.
    ``REPRO_LARGESCALE_N=2000`` instead of editing this file.
    """
    return int(os.environ.get(name, default))


#: Benchmark scale knobs — one place to shrink everything for smoke runs.
LARGESCALE_N = _int_knob("REPRO_LARGESCALE_N", 20_000)
LARGESCALE_QUERIES = _int_knob("REPRO_LARGESCALE_QUERIES", 60)
ACCURACY_QUERIES = _int_knob("REPRO_ACCURACY_QUERIES", 240)
WEIGHT_EPOCHS = _int_knob("REPRO_WEIGHT_EPOCHS", 300)
WEIGHT_LR = 0.2
#: Corpus size for the dynamic-update (streaming insert/delete) benchmark.
DYNAMIC_N = _int_knob("REPRO_DYNAMIC_N", 6_000)
#: Corpus size for the vector-store compression benchmark.
COMPRESSION_N = _int_knob("REPRO_COMPRESSION_N", 6_000)
#: Corpus size and closed-loop client count for the serving benchmark.
SERVING_N = _int_knob("REPRO_SERVING_N", 6_000)
#: Corpus size for the filtered-search (attribute pushdown) benchmark.
FILTERED_N = _int_knob("REPRO_FILTERED_N", 6_000)
#: Corpus size for the memory-mapped cold-tier benchmark.
MMAP_N = _int_knob("REPRO_MMAP_N", 6_000)
SERVING_CLIENTS = _int_knob("REPRO_SERVING_CLIENTS", 32)
#: Corpus size (split across tenants) and per-tenant client count for
#: the multi-tenant collections benchmark.
MULTITENANT_N = _int_knob("REPRO_MULTITENANT_N", 6_000)
MULTITENANT_CLIENTS = _int_knob("REPRO_MULTITENANT_CLIENTS", 16)
#: Corpus size for the process-sharded serving benchmark.  Larger than
#: the other serving corpora on purpose: the scaling gate measures how
#: the O(n) per-shard scan shrinks with the shard count, and at small n
#: the per-wave fixed costs (IPC, per-query rerank bookkeeping) drown
#: that signal, leaving no margin over the 1.6x/2.5x scaling floors.
SHARDED_N = _int_knob("REPRO_SHARDED_N", 40_000)
#: Corpus size and query count for the hybrid dense+lexical benchmark.
#: Like ``SHARDED_N``, not shrunk in CI smoke runs: the ≥1.5x
#: inverted-vs-bruteforce gate measures how skipping untouched rows
#: beats the O(n · terms) scan, and below ~10k rows the per-query fixed
#: costs (query parsing, the output array, the top-k select) drown that
#: signal on both engines.
HYBRID_N = _int_knob("REPRO_HYBRID_N", 20_000)
HYBRID_QUERIES = _int_knob("REPRO_HYBRID_QUERIES", 40)


@lru_cache(maxsize=None)
def semantic_dataset(name: str):
    """Named semantic corpora at benchmark scale."""
    if name == "mitstates":
        return make_mitstates(num_queries=ACCURACY_QUERIES)
    if name == "celeba":
        return make_celeba(num_queries=ACCURACY_QUERIES)
    if name.startswith("celeba_plus_m"):
        m = int(name.rsplit("m", 1)[1])
        return make_celeba_plus(num_modalities=m, num_queries=ACCURACY_QUERIES)
    if name == "shopping_tshirt":
        return make_shopping("t-shirt", num_queries=ACCURACY_QUERIES)
    if name == "shopping_bottoms":
        return make_shopping("bottoms", num_queries=ACCURACY_QUERIES)
    if name == "mscoco":
        return make_mscoco(num_queries=200)
    raise KeyError(f"unknown dataset {name!r}")


@lru_cache(maxsize=None)
def encoded(name: str, target: str, auxiliaries: tuple[str, ...]):
    return encode_dataset(
        semantic_dataset(name), EncoderCombo(target, auxiliaries), seed=0
    )


@lru_cache(maxsize=None)
def train_test_split(name: str):
    sem = semantic_dataset(name)
    return split_queries(sem.num_queries, 0.5, seed=1)


@lru_cache(maxsize=None)
def trained_must(name: str, target: str, auxiliaries: tuple[str, ...]):
    """Weight-trained, index-built MUST plus its evaluation split."""
    enc = encoded(name, target, auxiliaries)
    train, test = train_test_split(name)
    must = MUST.from_dataset(enc)
    anchors = [enc.queries[i] for i in train]
    positives = np.asarray([enc.ground_truth[i][0] for i in train])
    must.fit_weights(
        anchors, positives, epochs=WEIGHT_EPOCHS, learning_rate=WEIGHT_LR
    )
    must.build()
    return enc, must, test


@lru_cache(maxsize=None)
def mr_baseline(name: str, target: str, auxiliaries: tuple[str, ...]):
    enc = encoded(name, target, auxiliaries)
    return MultiStreamedRetrieval(enc.objects).build()


@lru_cache(maxsize=None)
def je_baseline(name: str, target: str, auxiliaries: tuple[str, ...]):
    enc = encoded(name, target, auxiliaries)
    return JointEmbeddingSearch(enc.objects).build()


@lru_cache(maxsize=None)
def largescale_encoded(kind: str, n: int = LARGESCALE_N):
    from repro.datasets.largescale import encode_largescale

    sem = make_largescale(kind=kind, n=n, num_queries=LARGESCALE_QUERIES)
    return encode_largescale(sem)


@lru_cache(maxsize=None)
def largescale_must(kind: str, n: int = LARGESCALE_N):
    """MUST on a large-scale corpus with weights trained on its queries."""
    enc = largescale_encoded(kind, n)
    must = MUST.from_dataset(enc)
    anchors = enc.queries[: LARGESCALE_QUERIES // 2]
    positives = np.asarray(
        [enc.ground_truth[i][0] for i in range(LARGESCALE_QUERIES // 2)]
    )
    must.fit_weights(
        anchors, positives, epochs=150, learning_rate=WEIGHT_LR
    )
    must.build()
    return enc, must
