"""Case studies: Fig. 5 (top-5 retrieval) and Fig. 11 (index neighbours).

These reproduce the paper's qualitative figures as labelled text — the
generators carry human-readable labels for every object, so the
"images" of Fig. 5/11 become their captions.
"""

from __future__ import annotations

import numpy as np

from repro.bench import cache
from repro.bench.harness import Table
from repro.core.query import Query, SearchOptions
from repro.core.space import JointSpace
from repro.core.weights import Weights

__all__ = ["fig5_case_study", "fig11_neighbors"]


def fig5_case_study(query_index: int | None = None) -> Table:
    """Fig. 5: top-5 of MUST / MR / JE for one MIT-States edit query."""
    sem = cache.semantic_dataset("mitstates")
    enc, must, test = cache.trained_must("mitstates", "resnet50", ("lstm",))
    mr = cache.mr_baseline("mitstates", "resnet50", ("lstm",))
    je = cache.je_baseline("mitstates", "clip", ("lstm",))
    enc_clip = cache.encoded("mitstates", "clip", ("lstm",))

    qi = int(test[0]) if query_index is None else query_index
    gt = set(int(g) for g in enc.ground_truth[qi])

    def label(obj_id: int) -> str:
        mark = " <-- ground truth" if int(obj_id) in gt else ""
        return f"{sem.object_labels[int(obj_id)]}{mark}"

    rows = []
    must_ids = must.query(
        Query(enc.queries[qi]), SearchOptions(k=5, l=128)
    ).ids
    mr_ids = mr.search(enc.queries[qi], k=5, candidates_per_modality=100).ids
    je_ids = je.search(enc_clip.queries_option2[qi], k=5, l=128).ids
    for rank in range(5):
        rows.append([
            rank + 1, label(must_ids[rank]), label(mr_ids[rank]),
            label(je_ids[rank]),
        ])
    return Table(
        "Fig. 5", f"Case study — query: {sem.query_labels[qi]}",
        ["Rank", "MUST", "MR", "JE"], rows,
        notes="Ground-truth objects are marked; MUST satisfies both the "
              "reference noun and the requested state.",
    )


def fig11_neighbors(vertex: int | None = None) -> Table:
    """Fig. 11: top-3 neighbours of one CelebA vertex, MUST vs MR indexes."""
    sem = cache.semantic_dataset("celeba")
    enc, must, _ = cache.trained_must("celeba", "clip", ("encoding",))
    mr = cache.mr_baseline("celeba", "clip", ("encoding",))

    v = int(must.index.seed_vertex) if vertex is None else vertex
    space = must.space

    def top3(neighbor_ids: np.ndarray, score_fn) -> list[str]:
        scored = sorted(
            ((score_fn(int(u)), int(u)) for u in neighbor_ids), reverse=True
        )[:3]
        return [f"{sem.object_labels[u]} (sim={s:.3f})" for s, u in scored]

    must_n = top3(must.index.neighbors[v], lambda u: space.pair(v, u))
    rows = []
    mr_indexes = mr._indexes  # noqa: SLF001 - inspection for the case study
    mod0 = top3(
        mr_indexes[0].neighbors[v],
        lambda u: float(enc.objects.modality(0)[v] @ enc.objects.modality(0)[u]),
    )
    mod1 = top3(
        mr_indexes[1].neighbors[v],
        lambda u: float(enc.objects.modality(1)[v] @ enc.objects.modality(1)[u]),
    )
    for rank in range(3):
        rows.append([rank + 1, must_n[rank], mod0[rank], mod1[rank]])
    return Table(
        "Fig. 11", f"Top-3 index neighbours of '{sem.object_labels[v]}'",
        ["Rank", "MUST (joint)", "MR modality 0", "MR modality 1"], rows,
        notes="MUST's neighbours balance identity and attributes; each MR "
              "index sees one modality only.",
    )
