"""Efficiency & scalability experiments: Fig. 6–8, Tab. VII, Tab. XII, Fig. 10(c).

Wall-clock comparisons in this pure-Python port carry interpreter
overhead that the paper's C++ kernels do not, so every efficiency table
reports **joint similarity evaluations** alongside QPS: the evaluation
counts reproduce the paper's work ratios exactly, while QPS shapes match
once the corpus is large enough that BLAS scans stop being free.

All throughput numbers are measured through the batched
:class:`~repro.index.executor.BatchExecutor` entry points (typed
``MUST.query`` batches), i.e. what a serving deployment would run;
:func:`batch_throughput` additionally compares the execution strategies
(single-query loop vs batched vs thread-parallel vs GEMM-batched exact)
head to head at a fixed operating point.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import cache
from repro.bench.harness import Table
from repro.baselines import BruteForceMUST, MultiStreamedRetrieval
from repro.core.framework import MUST
from repro.core.query import Eq, Query, Range, SearchOptions
from repro.core.weights import Weights
from repro.datasets.largescale import exact_ground_truth
from repro.index.segments import SegmentPolicy
from repro.metrics import mean_recall, measure_batch_qps, measure_qps

__all__ = [
    "fig6_qps_recall",
    "tab7_data_volume",
    "fig7_build_cost",
    "fig8_topk",
    "tab12_beam_width",
    "fig10c_multivector",
    "batch_throughput",
    "dynamic_throughput",
    "compression_tradeoff",
    "serving_throughput",
    "sharded_throughput",
    "filtered_throughput",
    "mmap_tradeoff",
    "hybrid_throughput",
]

_L_SWEEP = (10, 20, 40, 80, 160, 320)
_MR_BUDGET_SWEEP = (20, 50, 100, 250, 500, 1000)


def _typed_batch(must: MUST, queries, **options):
    """Typed batch through ``MUST.query`` — the bench-wide shim-free
    path (bit-identical to the deprecated ``batch_search`` kwargs)."""
    return must.query([Query(q) for q in queries], SearchOptions(**options))


def _typed_one(must: MUST, query, **options):
    """Typed single query through ``MUST.query``."""
    return must.query(Query(query), SearchOptions(**options))


def _recall_vs_exact(results, gt, k):
    return mean_recall([r[:k] for r in results], [g[:k] for g in gt], k)


def fig6_qps_recall(kind: str = "image") -> Table:
    """Fig. 6: QPS vs Recall@10(10) for MUST / MUST-- / MR / MR--."""
    enc, must = cache.largescale_must(kind)
    gt = exact_ground_truth(enc, must.weights, k=10)
    queries = enc.queries
    headers = ["Method", "Param", "Recall@10(10)", "QPS", "JointEvals/query"]
    rows: list[list] = []

    for l in _L_SWEEP:
        run = measure_batch_qps(
            lambda qs, l=l: _typed_batch(must, qs, k=10, l=l), queries
        )
        rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
        evals = np.mean([r.stats.joint_evals for r in run.results])
        rows.append(["MUST", f"l={l}", rec, run.qps, evals])

    brute = BruteForceMUST(enc.objects, must.weights).build()
    run = measure_batch_qps(lambda qs: brute.batch_search(qs, k=10), queries)
    rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
    rows.append(["MUST--", "-", rec, run.qps, float(enc.objects.n)])

    mr = MultiStreamedRetrieval(enc.objects).build()
    for budget in _MR_BUDGET_SWEEP:
        run = measure_batch_qps(
            lambda qs, b=budget: mr.batch_search(
                qs, k=10, candidates_per_modality=b
            ),
            queries,
        )
        rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
        evals = np.mean([r.stats.joint_evals for r in run.results])
        rows.append(["MR", f"cand={budget}", rec, run.qps, evals])

    mr_exact = MultiStreamedRetrieval(enc.objects, exact=True).build()
    run = measure_batch_qps(
        lambda qs: mr_exact.batch_search(qs, k=10, candidates_per_modality=200),
        queries,
    )
    rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
    rows.append(["MR--", "cand=200", rec, run.qps, 2.0 * enc.objects.n])

    return Table(
        "Fig. 6", f"QPS vs recall on {enc.name}", headers, rows,
        notes="MR recall saturates regardless of budget; MUST reaches "
              ">0.95 recall with a small fraction of the evaluations.",
    )


def tab7_data_volume(
    volumes: tuple[int, ...] = (2_500, 5_000, 10_000, 20_000, 40_000),
) -> Table:
    """Tab. VII: response time of MUST vs MUST-- across corpus volumes."""
    headers = ["Scale", "MUST-- ms/query", "MUST ms/query",
               "MUST-- evals/query", "MUST evals/query", "WorkReduction",
               "MUST Recall@10(10)"]
    rows = []
    for n in volumes:
        enc, must = cache.largescale_must("image", n)
        gt = exact_ground_truth(enc, must.weights, k=10)
        queries = enc.queries
        brute = BruteForceMUST(enc.objects, must.weights).build()
        brute_run = measure_batch_qps(
            lambda qs: brute.batch_search(qs, k=10), queries
        )
        # High-accuracy operating point, as in the paper (recall > 0.99
        # at l tuned per scale; a fixed generous l suffices here).
        must_run = measure_batch_qps(
            lambda qs: _typed_batch(must, qs, k=10, l=200), queries
        )
        rec = _recall_vs_exact([r.ids for r in must_run.results], gt, 10)
        evals = float(np.mean(
            [r.stats.joint_evals for r in must_run.results]
        ))
        reduction = 1.0 - evals / n
        rows.append([
            f"{n/1000:g}K",
            brute_run.mean_latency * 1e3,
            must_run.mean_latency * 1e3,
            float(n),
            evals,
            f"{reduction:.1%}",
            rec,
        ])
    return Table(
        "Tab. VII", "Response time vs data volume (ImageText)", headers, rows,
        notes="Brute-force similarity work grows linearly with n while the "
              "fused index stays near-flat (WorkReduction column — the "
              "paper's ↓98.4% at 16M). Wall-clock in pure Python still "
              "favours BLAS scans at these corpus sizes; the evaluation "
              "counts carry the scalability claim.",
    )


def fig7_build_cost(
    volumes: tuple[int, ...] = (2_500, 5_000, 10_000, 20_000, 40_000),
) -> Table:
    """Fig. 7: build time and index size, MUST vs MR, across volumes."""
    headers = ["Scale", "MUST build (s)", "MR build (s)",
               "MUST size (MB)", "MR size (MB)"]
    rows = []
    for n in volumes:
        enc, must = cache.largescale_must("image", n)
        mr = MultiStreamedRetrieval(enc.objects).build()
        rows.append([
            f"{n/1000:g}K",
            must.index.build_seconds,
            mr.build_seconds,
            must.index.size_in_bytes() / 2**20,
            mr.index_size_in_bytes() / 2**20,
        ])
    return Table(
        "Fig. 7", "Index build time and size vs data volume", headers, rows,
        notes="MR maintains one graph per modality — roughly double the "
              "build time and storage of MUST's single fused graph.",
    )


def fig8_topk() -> Table:
    """Fig. 8: effect of k on the QPS–recall tradeoff (MUST vs MR)."""
    enc, must = cache.largescale_must("image")
    mr = MultiStreamedRetrieval(enc.objects).build()
    queries = enc.queries
    headers = ["k", "Method", "Param", "Recall@k(k)", "QPS"]
    rows = []
    for k in (1, 50, 100):
        gt = exact_ground_truth(enc, must.weights, k=k)
        run = measure_batch_qps(
            lambda qs, k=k: _typed_batch(must, qs, k=k, l=max(4 * k, 160)),
            queries,
        )
        rec = _recall_vs_exact([r.ids for r in run.results], gt, k)
        rows.append([k, "MUST", f"l={max(4 * k, 160)}", rec, run.qps])
        budget = max(20 * k, 200)
        run = measure_batch_qps(
            lambda qs, k=k, b=budget: mr.batch_search(
                qs, k=k, candidates_per_modality=b
            ),
            queries,
        )
        rec = _recall_vs_exact([r.ids for r in run.results], gt, k)
        rows.append([k, "MR", f"cand={budget}", rec, run.qps])
    return Table(
        "Fig. 8", "Effect of k (ImageText)", headers, rows,
        notes="MR needs ever larger candidate budgets as k grows, widening "
              "MUST's advantage (paper §VIII-F).",
    )


def tab12_beam_width() -> Table:
    """Tab. XII: recall / response time under different l."""
    enc, must = cache.largescale_must("image")
    gt = exact_ground_truth(enc, must.weights, k=10)
    headers = ["l", "Recall@10(10)", "ms/query", "JointEvals/query"]
    rows = []
    for l in (20, 40, 80, 160, 320, 640):
        run = measure_batch_qps(
            lambda qs, l=l: _typed_batch(must, qs, k=10, l=l), enc.queries
        )
        rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
        evals = np.mean([r.stats.joint_evals for r in run.results])
        rows.append([l, rec, run.mean_latency * 1e3, evals])
    return Table(
        "Tab. XII", "Search performance vs result-set size l", headers, rows,
        notes="Recall and cost both increase monotonically with l.",
    )


def fig10c_multivector() -> Table:
    """Fig. 10(c): the Lemma-4 multi-vector computation optimisation."""
    enc, must = cache.largescale_must("image")
    gt = exact_ground_truth(enc, must.weights, k=10)
    headers = ["l", "Variant", "Recall@10(10)", "ModalityEvals/query", "QPS"]
    rows = []
    for l in (20, 80, 320):
        for label, flag in (("w/o optimization", False), ("w. optimization", True)):
            run = measure_batch_qps(
                lambda qs, l=l, f=flag: _typed_batch(
                    must, qs, k=10, l=l, early_termination=f
                ),
                enc.queries,
            )
            rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
            evals = np.mean([r.stats.modality_evals for r in run.results])
            rows.append([l, label, rec, evals, run.qps])
    return Table(
        "Fig. 10(c)", "Multi-vector computation optimisation", headers, rows,
        notes="Identical recall with fewer modality evaluations (Lemma 4). "
              "Wall-clock gains are muted in pure Python (see module doc).",
    )


def dynamic_throughput(
    kind: str = "image",
    k: int = 10,
    l: int = 80,
    stream_fraction: float = 0.3,
    delete_fraction: float = 0.1,
    num_stream_batches: int = 8,
    seed: int = 0,
) -> tuple[Table, dict]:
    """Streaming-workload benchmark over the segmented subsystem (§IX).

    Builds MUST on a prefix of the corpus, then streams the remaining
    ``stream_fraction`` in batches **interleaved** with search bursts and
    soft deletes — the serving pattern the LSM-style
    :class:`~repro.index.segments.SegmentedIndex` exists for.  Reports
    insert/search/delete throughput during the stream, then force-compacts
    and compares steady-state search QPS against a **freshly built**
    single-segment index over the same surviving objects (they build
    identical graphs, so the gap isolates the segmented layer's merge
    overhead; the acceptance bar is staying within 10%).  Returns the
    table plus the ``BENCH_dynamic_qps.json`` payload.
    """
    enc = cache.largescale_encoded(kind, cache.DYNAMIC_N)
    objects = enc.objects
    queries = enc.queries
    n = objects.n
    n0 = int(n * (1.0 - stream_fraction))
    policy = SegmentPolicy(
        seal_size=max((n - n0) // 4, 64),
        max_segments=4,
        max_deleted_fraction=0.3,
        min_compact_size=256,
    )
    must = MUST(
        objects.subset(np.arange(n0)),
        weights=Weights.uniform(objects.num_modalities),
        segment_policy=policy,
    )
    t0 = time.perf_counter()
    must.build()
    build_seconds = time.perf_counter() - t0

    rng = np.random.default_rng(seed)
    batch_edges = np.linspace(n0, n, num_stream_batches + 1).astype(int)
    insert_s = search_s = delete_s = 0.0
    searches = deletes = 0
    for lo, hi in zip(batch_edges[:-1], batch_edges[1:]):
        if hi > lo:
            batch = objects.subset(np.arange(lo, hi))
            t0 = time.perf_counter()
            must.insert(batch)
            insert_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        _typed_batch(must, queries, k=k, l=l)
        search_s += time.perf_counter() - t0
        searches += len(queries)
        active = must.segments.active_ext_ids()
        count = max(int((hi - lo) * delete_fraction), 1)
        doomed = rng.choice(active, size=min(count, active.size - 2),
                            replace=False)
        t0 = time.perf_counter()
        must.mark_deleted(doomed)
        delete_s += time.perf_counter() - t0
        deletes += doomed.size
    inserted = int(n - n0)

    t0 = time.perf_counter()
    _, active = must.compact()
    compact_seconds = time.perf_counter() - t0

    fresh = MUST(
        objects.subset(active),
        weights=must.weights,
        builder=must.builder,
    ).build()

    # Interleaved A/B rounds, best-of: measuring the two targets
    # back-to-back within each round cancels process-level drift (cache
    # state, turbo) that a sequential best-of cannot.
    def one_round(target: MUST):
        return measure_batch_qps(
            lambda qs: _typed_batch(target, qs, k=k, l=l),
            queries, warmup=len(queries),
        )

    steady_qps = fresh_qps = 0.0
    steady_results = None
    for _ in range(6):
        run = one_round(must)
        if run.qps > steady_qps:
            steady_qps, steady_results = run.qps, run.results
        fresh_qps = max(fresh_qps, one_round(fresh).qps)

    # Steady-state recall vs the exact segmented scan (external-id space).
    exact = _typed_batch(must, queries, k=k, exact=True)
    steady_recall = mean_recall(
        [r.ids for r in steady_results], [r.ids for r in exact], k
    )

    headers = ["Phase", "Metric", "Value"]
    ratio = steady_qps / fresh_qps if fresh_qps else float("inf")
    rows = [
        ["build", f"initial graph over {n0} objects (s)", build_seconds],
        ["stream", "inserts/s", inserted / insert_s if insert_s else 0.0],
        ["stream", "interleaved search QPS", searches / search_s],
        ["stream", "deletes/s", deletes / delete_s if delete_s else 0.0],
        ["compact", "auto+forced rebuild (s)", compact_seconds],
        ["steady", "segmented QPS after compaction", steady_qps],
        ["steady", "fresh single-segment QPS", fresh_qps],
        ["steady", "segmented/fresh ratio", ratio],
        ["steady", f"recall@{k}(exact)", steady_recall],
    ]
    payload = {
        "dataset": enc.name,
        "n": int(n),
        "n_initial": int(n0),
        "streamed": inserted,
        "deleted": int(deletes),
        "active_final": int(active.size),
        "num_queries": len(queries),
        "k": k,
        "l": l,
        "policy": policy.to_dict(),
        "build_seconds": float(build_seconds),
        "insert_qps": float(inserted / insert_s) if insert_s else 0.0,
        "interleaved_search_qps": float(searches / search_s),
        "delete_qps": float(deletes / delete_s) if delete_s else 0.0,
        "compact_seconds": float(compact_seconds),
        "steady_qps": float(steady_qps),
        "fresh_qps": float(fresh_qps),
        "steady_vs_fresh": float(ratio),
        "steady_recall": float(steady_recall),
        "lifecycle": must.segments.describe(),
    }
    table = Table(
        "Dynamic QPS", f"Streaming insert/search/delete on {enc.name}",
        headers, rows,
        notes="Interleaved streaming traffic over the segmented index; "
              "after auto-compaction the corpus lives in one sealed "
              "segment built from the same rows as the fresh baseline, "
              "so the QPS ratio isolates the segmented layer's overhead.",
    )
    return table, payload


def batch_throughput(
    kind: str = "image",
    k: int = 10,
    l: int = 80,
    n_jobs: int = 4,
) -> tuple[Table, dict]:
    """Single-query vs batched vs parallel QPS at a fixed operating point.

    Compares the execution strategies the
    :class:`~repro.index.executor.BatchExecutor` offers over the *same*
    index and query set: the legacy single-query loop, the sequential
    executor (per-query child seeds, one thread), the thread-pool
    executor, and — for the exact path — the per-query scan vs the
    single-GEMM batch.  Returns the table plus a JSON-ready payload for
    the ``BENCH_batch_qps.json`` perf-trajectory artifact.
    """
    enc, must = cache.largescale_must(kind)
    gt = exact_ground_truth(enc, must.weights, k=k)
    queries = enc.queries
    headers = ["Path", "Mode", "Recall@10(10)", "QPS", "Speedup"]
    rows: list[list] = []
    payload: dict = {
        "dataset": enc.name,
        "n": int(enc.objects.n),
        "num_queries": len(queries),
        "k": k,
        "l": l,
        "n_jobs": n_jobs,
        "modes": {},
    }

    def record(path: str, mode: str, run, baseline_qps: float | None) -> float:
        rec = _recall_vs_exact([r.ids for r in run.results], gt, k)
        speedup = run.qps / baseline_qps if baseline_qps else 1.0
        rows.append([path, mode, rec, run.qps, f"{speedup:.2f}x"])
        payload["modes"][f"{path}/{mode}"] = {
            "qps": float(run.qps),
            "recall": float(rec),
            "speedup": float(speedup),
        }
        return run.qps

    single = measure_qps(lambda q: _typed_one(must, q, k=k, l=l), queries)
    base = record("graph", "single-query loop", single, None)
    # The pool modes pin engine="heap": they benchmark the per-query
    # oracle, and the batch default now routes to the wave engine.
    seq = measure_batch_qps(
        lambda qs: _typed_batch(must, qs, k=k, l=l, engine="heap",
                                n_jobs=1),
        queries,
    )
    record("graph", "executor n_jobs=1", seq, base)
    par = measure_batch_qps(
        lambda qs: _typed_batch(must, qs, k=k, l=l, engine="heap",
                                n_jobs=n_jobs),
        queries,
    )
    record("graph", f"executor n_jobs={n_jobs}", par, base)

    # The lockstep wave engine — the default batch plan.  The executed
    # plan and wave count ride into the payload so the regression gate
    # asserts *which path ran*, not just how fast something went.
    wave_trace: dict = {}

    def wave_fn(qs):
        run = _typed_batch(must, qs, k=k, l=l)
        wave_trace["plan"] = run.plan
        wave_trace["waves"] = int(run.stats.waves)
        return run

    # Warm one small wave first: the engine's CSR adjacency cache and
    # the stacked einsum path are one-time per-index artifacts, not
    # per-batch work (the other modes carry no such build step).
    wave = measure_batch_qps(wave_fn, queries, warmup=min(4, len(queries)))
    record("graph", "wave", wave, base)
    payload["modes"]["graph/wave"]["plan"] = wave_trace.get("plan", "")
    payload["modes"]["graph/wave"]["waves"] = wave_trace.get("waves", 0)

    exact_single = measure_qps(
        lambda q: _typed_one(must, q, k=k, exact=True), queries
    )
    exact_base = record("exact", "single-query loop", exact_single, None)
    exact_batch = measure_batch_qps(
        lambda qs: _typed_batch(must, qs, k=k, exact=True), queries
    )
    record("exact", "executor GEMM batch", exact_batch, exact_base)

    table = Table(
        "Batch QPS", f"Execution strategies on {enc.name}", headers, rows,
        notes="Same index, same queries: the executor's GEMM wave batches "
              "the exact scan, the thread pool overlaps per-query graph "
              "searches (BLAS releases the GIL), and the lockstep wave "
              "engine advances every beam in one stacked scoring call "
              "per hop — the default batch plan. Recall shifts slightly "
              "between loop and executor because the executor gives "
              "every query its own SeedSequence child instead of a "
              "shared rng=0 init draw.",
    )
    return table, payload


def _closed_loop(service, per_client: list[list[tuple]]) -> tuple[list, float]:
    """Run one closed-loop round: each client thread issues its requests
    back to back through ``service.search`` (typed ``SearchOptions``
    plans).  Returns the per-client response lists and the wall-clock
    seconds for the whole round.
    A client failure (overload, search error) is re-raised here rather
    than left as a dead thread and an opaque ``None`` downstream."""
    import threading
    import time as _time

    results: list = [None] * len(per_client)

    def client(slot: int) -> None:
        out = []
        try:
            for query, params in per_client[slot]:
                out.append(service.search(query, params))
        except Exception as exc:  # surfaced after join
            results[slot] = exc
            return
        results[slot] = out

    threads = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(len(per_client))
    ]
    t0 = _time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = _time.perf_counter() - t0
    for outcome in results:
        if isinstance(outcome, Exception):
            raise outcome
    return results, elapsed


def serving_throughput(
    kind: str = "image",
    k: int = 10,
    l: int = 80,
    num_clients: int | None = None,
    requests_per_client: int = 4,
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    stream_fraction: float = 0.05,
    seed: int = 0,
) -> tuple[Table, dict]:
    """Closed-loop serving benchmark: coalesced vs per-query dispatch.

    Builds a segmented deployment (graph over a prefix, the rest
    streamed in — the state a serving process actually sits in), then
    measures the same request load three ways per mode:

    * **sequential** — each request dispatched one at a time through
      ``MUST.search``, the pre-serving baseline;
    * **served** — ``num_clients`` closed-loop client threads against a
      :class:`~repro.service.MustService`, whose dispatcher coalesces
      concurrent requests into batched waves (per-segment GEMM
      prefilter + float64 rerank on the exact path);
    * **served + writers** (exact mode) — the same load while a writer
      thread streams inserts and deletes through the service, exercising
      snapshot-isolated reads under churn.

    The exact served mode must reach ≥1.5× the sequential exact QPS —
    the serving layer's acceptance bar — while staying bit-identical to
    ``MUST.search`` on the same snapshot (spot-checked here, pinned
    down in tests/test_service.py).  Graph-path coalescing is reported
    too; on a single-core host it is parity, not speed-up (thread
    pooling needs cores, GEMM batching does not).
    """
    import threading
    import time as _time

    from repro.service import ServiceStats

    if num_clients is None:
        num_clients = cache.SERVING_CLIENTS
    enc = cache.largescale_encoded(kind, cache.SERVING_N)
    objects = enc.objects
    queries = list(enc.queries)
    n = objects.n
    n0 = int(n * (1.0 - stream_fraction))
    must = MUST(
        objects.subset(np.arange(n0)),
        weights=Weights.uniform(objects.num_modalities),
        segment_policy=SegmentPolicy(seal_size=max(n - n0, 64) * 2),
    ).build()
    must.insert(objects.subset(np.arange(n0, n)))

    total = num_clients * requests_per_client
    plans = {
        "exact": SearchOptions(k=k, exact=True),
        "graph": SearchOptions(k=k, l=l),
        "graph_wave": SearchOptions(k=k, l=l, engine="wave"),
    }

    def request_stream(mode: str) -> list[tuple]:
        params = plans[mode]
        return [
            (queries[i % len(queries)], params) for i in range(total)
        ]

    def split(reqs: list[tuple]) -> list[list[tuple]]:
        return [
            reqs[slot * requests_per_client:(slot + 1) * requests_per_client]
            for slot in range(num_clients)
        ]

    headers = ["Mode", "Dispatch", "QPS", "Speedup", "p50 ms", "p95 ms",
               "p99 ms", "Mean batch"]
    rows: list[list] = []
    payload: dict = {
        "dataset": enc.name,
        "n": int(n),
        "num_clients": int(num_clients),
        "requests_per_client": int(requests_per_client),
        "total_requests": int(total),
        "k": k,
        "l": l,
        "max_batch": int(max_batch),
        "max_wait_ms": float(max_wait_ms),
        "modes": {},
    }

    def sequential_qps(mode: str) -> float:
        reqs = request_stream(mode)
        run = measure_qps(
            lambda task: must.query(task[0], task[1]),
            reqs,
            warmup=min(len(queries), total) // 2,
        )
        return run.qps

    def served_round(mode: str, writers: bool = False) -> dict:
        service = must.serve(
            max_batch=max_batch, max_wait_ms=max_wait_ms,
            max_queue=max(4 * num_clients, 64),
        )
        try:
            # Warm-up wave so lazy artifacts and thread pools exist, then
            # a fresh stats window so the reported percentiles and batch
            # histogram cover only the measured traffic.
            _closed_loop(service, split(request_stream(mode))[:4])
            service.stats = ServiceStats(service.config.latency_window)
            stop = threading.Event()
            writer_errors: list[Exception] = []

            def writer() -> None:
                rng = np.random.default_rng(seed)
                step = 0
                try:
                    while not stop.is_set():
                        lo = (step * 4) % max(n - n0, 4)
                        service.insert(
                            objects.subset(np.arange(lo, lo + 4) % n)
                        )
                        if step % 4 == 3:
                            active = service.active_ids()
                            doomed = rng.choice(active, size=2, replace=False)
                            service.mark_deleted(doomed)
                        step += 1
                        _time.sleep(0.002)
                except Exception as exc:  # pragma: no cover - failure path
                    writer_errors.append(exc)

            wthread = None
            if writers:
                wthread = threading.Thread(target=writer)
                wthread.start()
            results, elapsed = _closed_loop(
                service, split(request_stream(mode))
            )
            if wthread is not None:
                stop.set()
                wthread.join()
                if writer_errors:
                    raise writer_errors[0]
            answered = sum(len(r) for r in results)
            summary = service.stats.summary()
            return {
                "qps": total / elapsed,
                "answered": answered,
                "p50_ms": summary["latency_ms"].get("p50"),
                "p95_ms": summary["latency_ms"].get("p95"),
                "p99_ms": summary["latency_ms"].get("p99"),
                "mean_batch": service.stats.mean_batch_size,
                "wave_groups": sum(summary["graph_waves"].values()),
            }
        finally:
            service.close()

    for mode in ("exact", "graph"):
        seq = sequential_qps(mode)
        rows.append([mode, "sequential loop", seq, "1.00x", "-", "-", "-", "-"])
        payload["modes"][f"{mode}/sequential"] = {"qps": float(seq)}
        served = served_round(mode)
        speedup = served["qps"] / seq
        rows.append([
            mode, f"served ({num_clients} clients)", served["qps"],
            f"{speedup:.2f}x", served["p50_ms"], served["p95_ms"],
            served["p99_ms"], served["mean_batch"],
        ])
        payload["modes"][f"{mode}/served"] = {
            "qps": float(served["qps"]),
            "speedup": float(speedup),
            "p50_ms": float(served["p50_ms"]),
            "p95_ms": float(served["p95_ms"]),
            "p99_ms": float(served["p99_ms"]),
            "mean_batch": float(served["mean_batch"]),
            "answered": int(served["answered"]),
        }

    # Graph-wave serving: clients opt into the lockstep engine
    # (engine="wave"); its baseline stays the *pre-serving* sequential
    # graph loop (the heap plan above), so the speedup honestly measures
    # coalescing + wave restructuring against what a caller had before
    # the serving layer — not against a slow wave-of-one dispatch.
    wave_served = served_round("graph_wave")
    wave_seq = payload["modes"]["graph/sequential"]["qps"]
    wave_speedup = wave_served["qps"] / wave_seq
    rows.append([
        "graph_wave", f"served ({num_clients} clients)", wave_served["qps"],
        f"{wave_speedup:.2f}x", wave_served["p50_ms"], wave_served["p95_ms"],
        wave_served["p99_ms"], wave_served["mean_batch"],
    ])
    payload["modes"]["graph_wave/served"] = {
        "qps": float(wave_served["qps"]),
        "speedup": float(wave_speedup),
        "p50_ms": float(wave_served["p50_ms"]),
        "p95_ms": float(wave_served["p95_ms"]),
        "p99_ms": float(wave_served["p99_ms"]),
        "mean_batch": float(wave_served["mean_batch"]),
        "answered": int(wave_served["answered"]),
        "wave_groups": int(wave_served["wave_groups"]),
    }

    churn = served_round("exact", writers=True)
    churn_speedup = churn["qps"] / payload["modes"]["exact/sequential"]["qps"]
    rows.append([
        "exact", "served + writers", churn["qps"], f"{churn_speedup:.2f}x",
        churn["p50_ms"], churn["p95_ms"], churn["p99_ms"],
        churn["mean_batch"],
    ])
    payload["modes"]["exact/served+writers"] = {
        "qps": float(churn["qps"]),
        "speedup": float(churn_speedup),
        "p50_ms": float(churn["p50_ms"]),
        "p95_ms": float(churn["p95_ms"]),
        "p99_ms": float(churn["p99_ms"]),
        "mean_batch": float(churn["mean_batch"]),
        "answered": int(churn["answered"]),
    }

    # Quiesced parity spot-check: served answers are bit-identical to
    # MUST.search on the (now stable) state.
    service = must.serve(max_batch=max_batch, max_wait_ms=max_wait_ms)
    try:
        parity = True
        for q in queries[:8]:
            plan = SearchOptions(k=k, exact=True)
            res = service.search(q, plan)
            ref = must.query(q, plan)
            if not (
                np.array_equal(res.ids, ref.ids)
                and np.array_equal(res.similarities, ref.similarities)
            ):
                parity = False
    finally:
        service.close()
    payload["parity_bitwise"] = bool(parity)
    payload["coalescing_speedup_exact"] = float(
        payload["modes"]["exact/served"]["speedup"]
    )
    payload["coalescing_speedup_graph_wave"] = float(wave_speedup)

    table = Table(
        "Serving QPS",
        f"Coalesced serving vs per-query dispatch on {enc.name}",
        headers, rows,
        notes="Closed-loop clients block on each response; the service "
              "dispatcher coalesces whatever is waiting into one wave. "
              "Exact waves share per-segment GEMM prefilters and stay "
              "bit-identical to MUST.search; default graph requests keep "
              "per-query kernels (thread-pool parallelism needs cores, so "
              "on a single-core host that row is parity, not speed-up); "
              "graph_wave requests opt into the lockstep engine, whose "
              "coalesced groups amortise every hop across the batch — the "
              "first graph-path serving speedup without extra cores.",
    )
    return table, payload


def sharded_throughput(
    kind: str = "image",
    k: int = 10,
    num_clients: int = 32,
    requests_per_client: int = 8,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    rounds: int = 3,
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
) -> tuple[Table, dict]:
    """Process-sharded serving: exact scaling across worker processes.

    Builds one corpus, then serves the same closed-loop exact load
    through a :class:`~repro.service.ShardedService` at each worker
    count.  Two throughput numbers per count:

    * **wall QPS** — requests over wall-clock seconds.  On a host with
      fewer cores than shards this *cannot* scale (the workers
      timeshare one core), so it is reported, not gated.
    * **critical-path QPS** — requests over the *maximum per-shard CPU
      seconds* spent serving them (each worker's
      :func:`time.process_time` clock, reported by its ``stats``
      command).  This is the wave's critical path: every wave waits for
      its slowest shard, so on a host with ≥ shards idle cores the wall
      QPS converges to it.  Sharding must shrink it — each shard scans
      ``n / shards`` rows — and the scaling gate pins that: ≥1.6× at 2
      workers and ≥2.5× at 4 workers over the 1-worker tier.  The gap
      to perfect scaling is the per-wave fixed cost (IPC, per-query
      rerank bookkeeping), which is replicated per shard rather than
      split.

    Every answer is also checked bit-identical to ``MUST.search`` on
    the unsharded corpus — sharded exact serving changes the wall
    clock, never a result.  The unsharded corpus is *segmented* (built
    over a prefix, with the tail streamed in through ``insert``) so the
    oracle runs the same layout-independent exact kernel the shards do;
    a never-inserted single-graph index answers through the legacy
    full-matrix float32 scan, which agrees only to ~1e-7.  The index
    uses a deliberately cheap graph build (the exact path never touches
    the graph; each worker's spawn builds its own shard graph, and this
    benchmark spawns ``sum(worker_counts)`` of them).
    """
    import threading
    import time as _time

    from repro.index.pipeline import FusedIndexBuilder

    enc = cache.largescale_encoded(kind, cache.SHARDED_N)
    objects = enc.objects
    queries = list(enc.queries)
    built = int(objects.n * 0.98)
    must = MUST(
        objects.subset(np.arange(built)),
        weights=Weights.uniform(objects.num_modalities),
        builder=FusedIndexBuilder(gamma=8, epsilon=1, max_candidates=16),
    ).build()
    must.insert(objects.subset(np.arange(built, objects.n)))
    plan = SearchOptions(k=k, exact=True)
    total = num_clients * requests_per_client

    def closed_loop(service) -> tuple[list, float]:
        results: list = [None] * num_clients

        def client(slot: int) -> None:
            out = []
            try:
                for i in range(requests_per_client):
                    idx = (slot * requests_per_client + i) % len(queries)
                    out.append(service.search(queries[idx], plan))
            except Exception as exc:  # surfaced after join
                results[slot] = exc
                return
            results[slot] = out

        threads = [
            threading.Thread(target=client, args=(slot,))
            for slot in range(num_clients)
        ]
        t0 = _time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = _time.perf_counter() - t0
        for outcome in results:
            if isinstance(outcome, Exception):
                raise outcome
        return results, elapsed

    headers = ["Workers", "Wall QPS", "Crit-path QPS", "Scaling",
               "Max shard busy s", "Spawn s"]
    rows: list[list] = []
    payload: dict = {
        "dataset": enc.name,
        "n": int(objects.n),
        "k": k,
        "num_clients": int(num_clients),
        "requests_per_client": int(requests_per_client),
        "total_requests": int(total),
        "rounds": int(rounds),
        "workers": {},
    }
    parity = True
    # Unsharded oracle, one exact answer per distinct query — the
    # parity reference every worker count is checked against.
    refs = [must.query(q, plan) for q in queries]
    crit_by_workers: dict[int, float] = {}
    for workers in worker_counts:
        t0 = _time.perf_counter()
        service = must.serve_sharded(
            n_shards=workers, max_batch=max_batch, max_wait_ms=max_wait_ms,
            max_queue=max(4 * num_clients, 64),
        )
        spawn_s = _time.perf_counter() - t0
        try:
            # Warm-up round (lazy artifacts, page faults on the shared
            # planes), then measured rounds; each round reads the
            # per-shard CPU clocks before and after.  The gate uses the
            # best round — a capacity measure, robust to a background
            # process stealing one round's core.
            first, _ = closed_loop(service)
            flat = [r for client in first for r in client]
            for i, res in enumerate(flat):
                ref = refs[i % len(queries)]
                if not (
                    np.array_equal(res.ids, ref.ids)
                    and np.array_equal(res.similarities, ref.similarities)
                ):
                    parity = False
            wall_qps = 0.0
            crit_qps = 0.0
            max_busy = float("inf")
            for _ in range(rounds):
                before = {
                    s["shard"]: s["busy_seconds"]
                    for s in service.shard_stats()
                }
                _, elapsed = closed_loop(service)
                after = {
                    s["shard"]: s["busy_seconds"]
                    for s in service.shard_stats()
                }
                busy = max(after[s] - before[s] for s in after)
                wall_qps = max(wall_qps, total / elapsed)
                if busy < max_busy:
                    max_busy = busy
                    crit_qps = total / busy
            crit_by_workers[workers] = crit_qps
            payload["workers"][str(workers)] = {
                "wall_qps": float(wall_qps),
                "critical_path_qps": float(crit_qps),
                "max_shard_busy_s": float(max_busy),
                "spawn_seconds": float(spawn_s),
            }
            rows.append([
                workers, wall_qps, crit_qps, "-", max_busy, spawn_s,
            ])
        finally:
            service.close()

    base = crit_by_workers[worker_counts[0]]
    for row, workers in zip(rows, worker_counts):
        scaling = crit_by_workers[workers] / base
        row[3] = f"{scaling:.2f}x"
        payload["workers"][str(workers)]["scaling_vs_1w"] = float(scaling)
    payload["parity_bitwise"] = bool(parity)
    if 2 in crit_by_workers:
        payload["exact_scaling_speedup_2w"] = float(crit_by_workers[2] / base)
    if 4 in crit_by_workers:
        payload["exact_scaling_speedup_4w"] = float(crit_by_workers[4] / base)

    table = Table(
        "Sharded serving QPS",
        f"Process-sharded exact serving on {enc.name}",
        headers, rows,
        notes="Closed-loop exact clients against a ShardedService at "
              "each worker count. Crit-path QPS divides the load by the "
              "slowest shard's CPU seconds (time.process_time in the "
              "worker) — the number a host with one idle core per shard "
              "realises as wall QPS; wall QPS on a single-core host "
              "shows the timesharing overhead instead, so the scaling "
              "gate reads the critical path. Answers are bit-identical "
              "to unsharded MUST.search at every worker count.",
    )
    return table, payload


def compression_tradeoff(
    kind: str = "image",
    k: int = 10,
    l: int = 100,
    refine: int = 4,
) -> tuple[Table, dict]:
    """Memory/recall/QPS trade-off across the vector-store backends.

    Builds the fused graph **once** over full-precision vectors, then
    re-seats the same routing graph on every
    :data:`~repro.store.STORE_KINDS` backend — so the comparison
    isolates the serving representation (hot bytes + scoring kernels +
    ``refine=`` rerank) from graph-construction variance.  Reports
    resident hot-tier bytes, graph-search recall against exact
    full-precision ground truth (with and without the two-stage rerank),
    and batched QPS.  Returns the table plus the JSON payload for the
    ``BENCH_compression.json`` artifact.
    """
    import dataclasses

    from repro.index.base import reseat_on_store

    enc = cache.largescale_encoded(kind, cache.COMPRESSION_N)
    objects = enc.objects
    weights = Weights.uniform(objects.num_modalities)
    queries = enc.queries
    gt = exact_ground_truth(enc, weights, k=k)
    dense_bytes = sum(m.nbytes for m in objects.matrices)
    bytes_per_vector = dense_bytes / objects.n

    base = MUST(objects, weights=weights).build()
    backends = [
        ("none", {}, None),
        ("float16", {}, refine),
        ("int8", {}, refine),
        ("pq", {}, refine),
    ]

    headers = ["Backend", "Bytes/vec", "Compression", "Recall@10 (raw)",
               f"Recall@10 (refine={refine})", "QPS", "Rerank/query"]
    rows: list[list] = []
    payload: dict = {
        "dataset": enc.name,
        "n": int(objects.n),
        "num_queries": len(queries),
        "k": k,
        "l": l,
        "refine": refine,
        "dense_bytes_per_vector": float(bytes_per_vector),
        "backends": {},
    }

    for backend, options, backend_refine in backends:
        if backend == "none":
            must = base
        else:
            must = MUST(objects, weights=weights,
                        compression=backend, store_options=options)
            # Same routing graph for every backend: copy the built graph
            # and swap only its serving representation.
            must._index = reseat_on_store(
                dataclasses.replace(base.index), backend, options
            )
        store = must.index.space.vectors.store

        def run(qs, r=backend_refine):
            return _typed_batch(must, qs, k=k, l=l, refine=r)

        raw = _typed_batch(must, queries, k=k, l=l)
        recall_raw = mean_recall([r.ids for r in raw], gt, k)
        best = None
        for _ in range(3):
            timed = measure_batch_qps(run, queries, warmup=len(queries) // 2)
            if best is None or timed.qps > best.qps:
                best = timed
        recall = mean_recall([r.ids for r in best.results], gt, k)
        reranked = float(np.mean(
            [r.stats.reranked for r in best.results]
        ))
        hot = store.hot_bytes()
        ratio = dense_bytes / hot
        rows.append([
            backend, hot / objects.n, ratio, recall_raw, recall,
            best.qps, reranked,
        ])
        payload["backends"][backend] = {
            "hot_bytes": int(hot),
            "cold_bytes": int(store.cold_bytes()),
            "bytes_per_vector": float(hot / objects.n),
            "compression_ratio": float(ratio),
            "recall_at_10_raw": float(recall_raw),
            "recall_at_10": float(recall),
            "qps": float(best.qps),
            "reranked_per_query": reranked,
            "refine": backend_refine,
        }

    table = Table(
        "Compression", f"Vector-store backends on {enc.name}", headers, rows,
        notes="Same routing graph for every backend; only the serving "
              "representation changes. Raw recall scores the quantised "
              "codes end-to-end; the refine column re-scores the top "
              "refine*k survivors against the full-precision cold tier "
              "(two-stage rerank). QPS is batched search, best of 3.",
    )
    return table, payload


def filtered_throughput(
    kind: str = "image",
    k: int = 10,
    l: int = 80,
    rounds: int = 5,
) -> tuple[Table, dict]:
    """Per-query attribute filtering: pushdown vs post-filter cost.

    Attaches a synthetic attribute table (3-way categorical + uniform
    price, selectivity ≈ 0.23 under the benchmark predicate) to the
    large-scale corpus and compares, over the same queries:

    * the unfiltered exact batch (cost reference);
    * the **pushdown** filtered exact batch (typed ``Query.filter`` —
      the mask intersects the deletion bitsets inside the scan);
    * the naive **post-filter** loop (fetch ``k/selectivity`` unfiltered
      answers, drop inadmissible rows client-side, refetch-free upper
      bound on what an application without pushdown must do);
    * the filtered graph path, with recall measured against the
      pushdown-exact oracle (masked vertices route but never report).

    Returns the table plus the JSON payload for
    ``BENCH_filtered_qps.json`` (gated keys: ``qps``, ``speedup``,
    ``recall``).
    """
    enc, must = cache.largescale_must(kind, cache.FILTERED_N)
    n = int(enc.objects.n)
    rng = np.random.default_rng(7)
    attribute_columns = {
        "category": np.array(["alpha", "beta", "gamma"])[
            rng.integers(0, 3, n)
        ],
        "price": rng.uniform(0.0, 100.0, n),
    }
    must.set_attributes(attribute_columns)
    flt = Eq("category", "alpha") & Range("price", high=70.0)
    mask = flt.mask(must.objects.attributes)
    selectivity = float(mask.mean())
    queries = list(enc.queries)
    typed = [Query(q, filter=flt) for q in queries]

    def post_filter_batch(qs: list) -> list:
        """What an application without pushdown runs: over-fetch by
        1/selectivity (plus slack), then drop inadmissible rows."""
        fetch = min(n, int(np.ceil(k / max(selectivity, 1e-9) * 2)))
        out = []
        for res in must.query(
            [Query(q) for q in qs], SearchOptions(k=fetch, exact=True)
        ):
            keep = mask[res.ids]
            out.append(res.ids[keep][:k])
        return out

    # Interleaved rounds, best-of per mode: measuring all four modes
    # back to back within each round cancels process-level drift (cache
    # state, turbo) that sequential best-of blocks cannot — the gated
    # pushdown/post-filter *ratio* is a quotient of two small numbers
    # and needs the drift cancelled, not just the noise floor raised.
    contenders = {
        "unfiltered": lambda qs: must.query(
            [Query(q) for q in qs], SearchOptions(k=k, exact=True)
        ),
        "pushdown": lambda qs: must.query(
            typed[: len(qs)], SearchOptions(k=k, exact=True)
        ),
        "naive": post_filter_batch,
        "graph": lambda qs: must.query(
            typed[: len(qs)], SearchOptions(k=k, l=l)
        ),
    }
    best: dict = {}
    for _ in range(rounds):
        for name, fn in contenders.items():
            run = measure_batch_qps(fn, queries)
            if name not in best or run.qps > best[name].qps:
                best[name] = run
    unfiltered, pushdown = best["unfiltered"], best["pushdown"]
    naive, graph = best["naive"], best["graph"]

    oracle_ids = [r.ids for r in pushdown.results]
    graph_recall = mean_recall([r.ids for r in graph.results], oracle_ids, k)
    speedup = pushdown.qps / naive.qps if naive.qps else float("inf")

    headers = ["Mode", "QPS", "Recall vs oracle", "Speedup vs post-filter"]
    rows = [
        ["exact unfiltered", unfiltered.qps, "-", "-"],
        ["exact filtered (pushdown)", pushdown.qps, 1.0, f"{speedup:.2f}x"],
        ["exact post-filter (naive)", naive.qps, 1.0, "1.00x"],
        ["graph filtered", graph.qps, graph_recall, "-"],
    ]
    payload = {
        "dataset": enc.name,
        "n": n,
        "num_queries": len(queries),
        "k": k,
        "l": l,
        "selectivity": selectivity,
        "modes": {
            "exact/unfiltered": {"qps": float(unfiltered.qps)},
            "exact/filtered_pushdown": {
                "qps": float(pushdown.qps),
                "speedup_vs_postfilter": float(speedup),
            },
            "exact/postfilter_naive": {"qps": float(naive.qps)},
            "graph/filtered": {
                "qps": float(graph.qps),
                "recall_vs_oracle": float(graph_recall),
            },
        },
    }
    table = Table(
        "Filtered QPS",
        f"Attribute-filter pushdown on {enc.name} "
        f"(selectivity {selectivity:.2f})",
        headers,
        rows,
        notes="Pushdown intersects the compiled filter mask with the §IX "
              "deletion bitsets inside each scan, so filtered exact "
              "search costs one unfiltered scan; the naive client-side "
              "post-filter must over-fetch by 1/selectivity. Graph "
              "recall is vs the pushdown-exact oracle.",
    )

    # Scaling curve (recorded, ungated): pushdown cost relative to the
    # unfiltered scan as the corpus grows.  The pushdown contract is
    # that the quotient stays flat near 1.0 — the mask intersects the
    # scan instead of multiplying it — so the curve is the evidence the
    # point measurement above generalises beyond one n.  Key names
    # deliberately avoid the gated markers (qps/speedup/ratio/_vs_):
    # sub-scale numbers exist to show the trend, not to gate CI.
    scaling: dict[str, dict[str, float]] = {}
    for frac in (0.25, 0.5, 1.0):
        sub_n = n if frac == 1.0 else max(500, int(round(n * frac)))
        if frac == 1.0:
            sub_must = must
        else:
            rows = np.arange(sub_n)
            sub_must = MUST(
                enc.objects.subset(rows), weights=must.weights
            ).build()
            sub_must.set_attributes(
                {
                    key: np.asarray(column)[rows]
                    for key, column in attribute_columns.items()
                }
            )
        sub_typed = [Query(q, filter=flt) for q in queries]
        best_unfiltered = best_pushdown = 0.0
        for _ in range(3):
            best_unfiltered = max(
                best_unfiltered,
                measure_batch_qps(
                    lambda qs: sub_must.query(
                        [Query(q) for q in qs],
                        SearchOptions(k=k, exact=True),
                    ),
                    queries,
                ).qps,
            )
            best_pushdown = max(
                best_pushdown,
                measure_batch_qps(
                    lambda qs: sub_must.query(
                        sub_typed[: len(qs)], SearchOptions(k=k, exact=True)
                    ),
                    queries,
                ).qps,
            )
        scaling[f"n_{sub_n}"] = {
            "pushdown_over_unfiltered": float(
                best_pushdown / best_unfiltered if best_unfiltered else 0.0
            ),
            "pushdown_queries_per_second": float(best_pushdown),
            "unfiltered_queries_per_second": float(best_unfiltered),
        }
    payload["scaling"] = scaling
    return table, payload


def mmap_tradeoff(
    kind: str = "image",
    k: int = 10,
    l: int = 80,
    refine: int = 40,
    rounds: int = 5,
) -> tuple[Table, dict]:
    """Memory-mapped cold tier vs all-resident: bytes, QPS, spawn ship.

    Builds the same PQ-compressed index twice over the large-scale
    corpus — cold exact tier resident vs memory-mapped sidecar files —
    and measures:

    * **resident bytes** per tier (the ≥4× reduction gate: with PQ hot
      codes the float32 cold tier is the overwhelming share of RAM);
    * **refine-rerank QPS** (graph search + ``refine=`` through the
      cold tier — the only hot path that touches it), warm page cache
      best-of-``rounds`` against the resident build (gated ≥0.7×) and a
      single cold-cache pass after :func:`~repro.store.evict_page_cache`
      (recorded, ungated — disk latency is not CI-stable);
    * **sharded spawn shared-memory bytes**: the mmap protocol ships
      ids + attribute columns + the (source, row) cold map instead of
      the float32 planes, so the pack shrinks O(corpus) → O(hot);
    * a **bitwise parity** census: exact+refine answers of the mapped
      build must equal the resident build id-for-id, bit-for-bit.

    Returns the table plus the JSON payload for ``BENCH_mmap_qps.json``.
    Scale via ``REPRO_MMAP_N``.
    """
    import tempfile

    from repro.service.sharded import ShardedService
    from repro.store import evict_page_cache

    enc = cache.largescale_encoded(kind, cache.MMAP_N)
    n = int(enc.objects.n)
    queries = list(enc.queries)
    weights = Weights.uniform(enc.objects.num_modalities)
    # 64 centroids keep the codebooks a rounding error next to the PQ
    # codes even at smoke scale, so the reduction gate measures the
    # cold tier leaving RAM, not codebook amortisation.
    store_options = {"pq_dims": 4, "pq_centroids": 64}
    resident = MUST(
        enc.objects,
        weights=weights,
        compression="pq",
        store_options=store_options,
    ).build()
    data_dir = tempfile.mkdtemp(prefix="repro_mmap_bench_")
    mapped = MUST(
        enc.objects,
        weights=weights,
        compression="pq",
        store_options=store_options,
        cold_storage="mmap",
        data_dir=data_dir,
    ).build()

    stats_resident = resident.memory_stats()
    stats_mapped = mapped.memory_stats()
    reduction = stats_resident["resident_bytes"] / max(
        stats_mapped["resident_bytes"], 1
    )

    plan = SearchOptions(k=k, l=l, refine=refine)

    def refine_batch(must_instance):
        return lambda qs: must_instance.query(
            [Query(q) for q in qs], plan
        )

    # Cold-cache pass first, before anything warms the mapped pages.
    evict_page_cache(mapped.index.space.vectors.store.cold_plane)
    cold_run = measure_batch_qps(refine_batch(mapped), queries)

    # Interleaved best-of rounds, resident vs mapped back to back, so
    # process-level drift cancels out of the gated quotient.
    best: dict = {}
    for _ in range(rounds):
        for name, must_instance in (
            ("resident", resident),
            ("mmap", mapped),
        ):
            run = measure_batch_qps(refine_batch(must_instance), queries)
            if name not in best or run.qps > best[name].qps:
                best[name] = run
    warm_ratio = best["mmap"].qps / best["resident"].qps

    # Bitwise parity census on the exact+refine path.
    exact_plan = SearchOptions(k=k, exact=True, refine=refine)
    reference = resident.query([Query(q) for q in queries], exact_plan)
    candidate = mapped.query([Query(q) for q in queries], exact_plan)
    bitwise_equal = all(
        np.array_equal(a.ids, b.ids)
        and np.array_equal(a.similarities, b.similarities)
        for a, b in zip(reference, candidate)
    )

    # Spawn-time shared-memory footprint, resident vs mmap protocol.
    svc_resident = ShardedService(resident, n_shards=2, start=False)
    resident_shm = svc_resident.spawn_shm_bytes
    svc_resident.close()
    svc_mapped = ShardedService(mapped, n_shards=2, start=False)
    mapped_shm = svc_mapped.spawn_shm_bytes
    svc_mapped.close()
    shm_reduction = resident_shm / max(mapped_shm, 1)

    headers = ["Variant", "Resident MB", "Warm refine QPS", "Cold QPS"]
    rows = [
        [
            "all-resident",
            stats_resident["resident_bytes"] / 1e6,
            best["resident"].qps,
            "-",
        ],
        [
            "mmap cold tier",
            stats_mapped["resident_bytes"] / 1e6,
            best["mmap"].qps,
            cold_run.qps,
        ],
    ]
    payload = {
        "dataset": enc.name,
        "n": n,
        "num_queries": len(queries),
        "k": k,
        "l": l,
        "refine": refine,
        "bitwise_equal": bool(bitwise_equal),
        "memory": {
            "all_resident_bytes": int(stats_resident["resident_bytes"]),
            "mmap_resident_bytes": int(stats_mapped["resident_bytes"]),
            "hot_bytes": int(stats_mapped["hot_bytes"]),
            "cold_bytes": int(stats_mapped["cold_bytes"]),
            "resident_reduction_ratio": float(reduction),
        },
        "refine_rerank": {
            "resident_qps": float(best["resident"].qps),
            "mmap_warm_qps": float(best["mmap"].qps),
            "warm_qps_ratio_vs_resident": float(warm_ratio),
            "mmap_cold_pass_queries_per_second": float(cold_run.qps),
        },
        "sharded_spawn": {
            "resident_shm_bytes": int(resident_shm),
            "mmap_shm_bytes": int(mapped_shm),
            "shm_reduction_ratio": float(shm_reduction),
        },
    }
    table = Table(
        "Mmap cold tier",
        f"Beyond-RAM cold tier on {enc.name} (n={n}, PQ hot codes)",
        headers,
        rows,
        notes=f"Resident bytes drop {reduction:.1f}x with the exact "
              f"float32 tier in memory-mapped sidecar files; warm "
              f"refine rerank holds {warm_ratio:.2f}x of the in-RAM "
              f"QPS (cold cache: {cold_run.qps:.1f} QPS, first touch "
              f"pages from disk). Sharded spawn ships "
              f"{shm_reduction:.1f}x fewer shared-memory bytes "
              f"(O(hot), not O(corpus)).",
    )
    return table, payload


def hybrid_throughput(
    k: int = 10,
    l: int = 80,
    rounds: int = 3,
    sparse_weight: float = 1.0,
) -> tuple[Table, dict]:
    """Hybrid dense+lexical retrieval: accuracy lift, engine parity, QPS.

    Runs the planted two-level synthetic corpus
    (:func:`~repro.sparse.synthetic.synthetic_hybrid`, where dense
    search resolves the topic but only the rare lexical terms pin the
    ground-truth group) and measures:

    * **recall@k** of dense-only graph search vs hybrid graph search —
      the hybrid gate: fusing the sparse modality must *strictly* beat
      dense-only on this corpus, or the subsystem adds cost without
      signal;
    * **engine parity**: the inverted posting-list engine must answer
      bit-identically (ids *and* similarity bits) to the brute-force
      CSR oracle on every hybrid query, on both the graph and exact
      paths;
    * **sparse scoring QPS**, inverted engine vs brute-force scan over
      the full plane (gated ≥1.5× in the artifact: the posting-list
      engine only touches the query terms' rows, so it must clearly
      beat the dense scatter over all rows);
    * **hybrid graph QPS** end to end, recorded for the trajectory.

    Scale via ``REPRO_HYBRID_N`` / ``REPRO_HYBRID_QUERIES``.
    """
    from repro.core.multivector import MultiVector, MultiVectorSet
    from repro.sparse.inverted import (
        sparse_scores_inverted,
        sparse_topk,
    )
    from repro.sparse.kernels import sparse_scores_bruteforce
    from repro.sparse.synthetic import synthetic_hybrid

    group_size, groups_per_topic = 10, 5
    n_topics = max(2, cache.HYBRID_N // (group_size * groups_per_topic))
    ds = synthetic_hybrid(
        n_topics=n_topics,
        groups_per_topic=groups_per_topic,
        group_size=group_size,
        num_queries=cache.HYBRID_QUERIES,
        seed=0,
    )
    must = MUST(
        MultiVectorSet([ds.dense], sparse=ds.sparse),
        weights=Weights([1.0]),
    ).build()
    dense_queries = [
        Query(MultiVector.from_arrays([qd])) for qd in ds.query_dense
    ]
    hybrid_queries = [
        Query(
            MultiVector.from_arrays([qd]),
            sparse=qs,
            sparse_weight=sparse_weight,
        )
        for qd, qs in zip(ds.query_dense, ds.query_sparse)
    ]

    def recall_at_k(results) -> float:
        hits = [
            np.isin(r.ids[:k], truth).sum() / min(k, truth.size)
            for r, truth in zip(results, ds.truth)
        ]
        return float(np.mean(hits))

    dense_run = must.query(dense_queries, SearchOptions(k=k, l=l))
    hybrid_run = must.query(
        hybrid_queries, SearchOptions(k=k, l=l, sparse_engine="inverted")
    )
    dense_recall = recall_at_k(dense_run)
    hybrid_recall = recall_at_k(hybrid_run)

    # Engine parity: inverted vs brute-force oracle, graph + exact path.
    parity = True
    for opts_pair in (
        (SearchOptions(k=k, l=l, sparse_engine="inverted"),
         SearchOptions(k=k, l=l, sparse_engine="exact")),
        (SearchOptions(k=k, exact=True, sparse_engine="inverted"),
         SearchOptions(k=k, exact=True, sparse_engine="exact")),
    ):
        a = must.query(hybrid_queries, opts_pair[0])
        b = must.query(hybrid_queries, opts_pair[1])
        parity = parity and all(
            np.array_equal(x.ids, y.ids)
            and np.array_equal(x.similarities, y.similarities)
            for x, y in zip(a, b)
        )

    # Sparse-only scoring throughput: posting-list engine vs the full
    # CSR scan, best-of-rounds interleaved so drift cancels.
    plane = must.objects.sparse
    sparse_inputs = [q.sparse for q in hybrid_queries]

    def inverted_topk(queries):
        out = []
        for sq in queries:
            scores, touched = sparse_scores_inverted(plane, sq)
            out.append(sparse_topk(scores, k, touched=touched))
        return out

    def brute_topk(queries):
        out = []
        for sq in queries:
            scores = sparse_scores_bruteforce(plane, sq)
            out.append(sparse_topk(scores, k))
        return out

    best: dict = {}
    for _ in range(rounds):
        for name, fn in (("inverted", inverted_topk), ("brute", brute_topk)):
            run = measure_batch_qps(fn, sparse_inputs)
            if name not in best or run.qps > best[name].qps:
                best[name] = run
    engine_speedup = best["inverted"].qps / best["brute"].qps

    hybrid_qps = max(
        measure_batch_qps(
            lambda qs: must.query(
                qs, SearchOptions(k=k, l=l, sparse_engine="inverted")
            ),
            hybrid_queries,
        ).qps
        for _ in range(rounds)
    )

    headers = ["Mode", "Recall@10", "QPS"]
    rows = [
        ["dense-only graph", dense_recall, "-"],
        ["hybrid graph (inverted)", hybrid_recall, hybrid_qps],
        ["sparse top-k inverted", "-", best["inverted"].qps],
        ["sparse top-k brute-force", "-", best["brute"].qps],
    ]
    payload = {
        "n": int(ds.n),
        "num_queries": int(ds.num_queries),
        "k": k,
        "l": l,
        "sparse_weight": float(sparse_weight),
        "engines_bitwise_equal": bool(parity),
        "accuracy": {
            "dense_only_recall": float(dense_recall),
            "hybrid_recall": float(hybrid_recall),
            "hybrid_recall_lift": float(hybrid_recall - dense_recall),
        },
        "throughput": {
            "hybrid_graph_qps": float(hybrid_qps),
            "sparse_inverted_qps": float(best["inverted"].qps),
            "sparse_bruteforce_qps": float(best["brute"].qps),
            "inverted_speedup_vs_bruteforce": float(engine_speedup),
        },
    }
    table = Table(
        "Hybrid retrieval",
        f"Dense+lexical fusion on the planted corpus (n={ds.n}, "
        f"{n_topics} topics x {groups_per_topic} groups)",
        headers,
        rows,
        notes=f"Hybrid recall {hybrid_recall:.3f} vs dense-only "
              f"{dense_recall:.3f}; inverted sparse engine "
              f"{engine_speedup:.1f}x the brute-force scan, answers "
              f"bitwise-equal: {parity}.",
    )
    return table, payload


def multitenant_throughput(
    kind: str = "image",
    k: int = 10,
    num_clients: int | None = None,
    requests_per_client: int = 6,
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    noisy_clients: int = 8,
    noisy_inflight: int = 4,
    seed: int = 0,
) -> tuple[Table, dict]:
    """Multi-tenant serving: quota isolation under a noisy neighbour.

    Builds two collections from disjoint halves of one encoded corpus —
    a **victim** tenant with no quota and a **noisy** tenant capped at
    ``noisy_inflight`` in-flight requests — and serves both behind one
    :class:`~repro.service.MustService` dispatcher.  Two measured
    phases:

    * **victim alone** — ``num_clients`` closed-loop victim clients,
      nobody else on the box: the tenant's entitlement QPS.
    * **victim + noisy neighbour** — the same victim load while
      ``noisy_clients`` hammer threads resubmit against the throttled
      tenant as fast as rejections come back.

    The gated numbers:

    * ``isolation_qps_ratio`` — victim QPS under noise over victim QPS
      alone.  The quota is the only thing standing between the victim
      and the flood; without it this ratio collapses.
    * ``noisy_rejected`` (must be > 0) — the quota actually fired —
      and ``cross_tenant_rejections`` (must be 0) — it fired **only**
      on the tenant that breached; victim admissions are untouched.
    * ``parity_bitwise`` — quiesced exact answers per collection are
      bit-identical to each tenant's standalone ``MUST``: tenancy is
      routing plus admission, never arithmetic.
    """
    import threading
    import time as _time

    from repro.service import (
        CollectionManager,
        CollectionOverloaded,
        CollectionQuota,
        ServiceStats,
    )

    if num_clients is None:
        num_clients = cache.MULTITENANT_CLIENTS
    enc = cache.largescale_encoded(kind, cache.MULTITENANT_N)
    objects = enc.objects
    queries = list(enc.queries)
    n = objects.n
    half = n // 2

    def tenant_must(rows: np.ndarray) -> MUST:
        tail = max(len(rows) // 20, 8)
        must = MUST(
            objects.subset(rows[:-tail]),
            weights=Weights.uniform(objects.num_modalities),
            segment_policy=SegmentPolicy(seal_size=2 * len(rows)),
        ).build()
        must.insert(objects.subset(rows[-tail:]))
        return must

    manager = CollectionManager()
    manager.create("victim", tenant_must(np.arange(half)))
    manager.create(
        "noisy",
        tenant_must(np.arange(half, n)),
        quota=CollectionQuota(max_inflight=noisy_inflight),
    )
    victim_plan = SearchOptions(k=k, exact=True, collection="victim")
    noisy_plan = SearchOptions(k=k, exact=True, collection="noisy")
    total = num_clients * requests_per_client

    def victim_load() -> list[list[tuple]]:
        reqs = [
            (queries[i % len(queries)], victim_plan) for i in range(total)
        ]
        return [
            reqs[slot * requests_per_client:(slot + 1) * requests_per_client]
            for slot in range(num_clients)
        ]

    def fresh_stats(service) -> None:
        service.stats = ServiceStats(service.config.latency_window)
        for name in manager.names():
            manager.get(name).stats = ServiceStats(
                service.config.latency_window
            )

    def victim_summary(elapsed: float) -> dict:
        summary = manager.get("victim").stats.summary()
        return {
            "qps": total / elapsed,
            "p50_ms": summary["latency_ms"].get("p50"),
            "p95_ms": summary["latency_ms"].get("p95"),
            "p99_ms": summary["latency_ms"].get("p99"),
        }

    service = manager.serve(
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        max_queue=max(8 * num_clients, 128),
        backpressure="reject",
    )
    try:
        # Warm-up so lazy artifacts and thread pools exist, then a fresh
        # stats window per measured phase.
        _closed_loop(service, victim_load()[:4])
        fresh_stats(service)
        _, elapsed = _closed_loop(service, victim_load())
        alone = victim_summary(elapsed)

        fresh_stats(service)
        stop = threading.Event()
        noisy_done = 0
        noisy_lock = threading.Lock()
        noisy_errors: list[Exception] = []

        def hammer(slot: int) -> None:
            nonlocal noisy_done
            i = slot
            try:
                while not stop.is_set():
                    try:
                        service.search(queries[i % len(queries)], noisy_plan)
                        with noisy_lock:
                            noisy_done += 1
                    except CollectionOverloaded:
                        # The quota's job.  Resubmit after a token
                        # backoff — a zero-sleep spin would measure GIL
                        # contention from the retry loop itself, not
                        # admission isolation.
                        _time.sleep(0.001)
                    i += 1
            except Exception as exc:  # pragma: no cover - failure path
                noisy_errors.append(exc)

        hammers = [
            threading.Thread(target=hammer, args=(slot,))
            for slot in range(noisy_clients)
        ]
        for t in hammers:
            t.start()
        _time.sleep(0.05)  # let the flood reach the admission gate
        _, elapsed = _closed_loop(service, victim_load())
        stop.set()
        for t in hammers:
            t.join()
        if noisy_errors:
            raise noisy_errors[0]
        under_noise = victim_summary(elapsed)
        noisy_rejected = int(manager.get("noisy").stats.rejected)
        cross_rejections = int(manager.get("victim").stats.rejected)

        # Quiesced parity: tenancy must never perturb the arithmetic.
        parity = True
        plain = SearchOptions(k=k, exact=True)
        for name in manager.names():
            oracle = manager.get(name).must
            plan = SearchOptions(k=k, exact=True, collection=name)
            for q in queries[:8]:
                res = service.search(q, plan)
                ref = oracle.query(q, plain)
                if not (
                    np.array_equal(res.ids, ref.ids)
                    and np.array_equal(res.similarities, ref.similarities)
                ):
                    parity = False
    finally:
        service.close()

    ratio = under_noise["qps"] / alone["qps"] if alone["qps"] else 0.0
    headers = ["Phase", "Victim QPS", "p50 ms", "p95 ms", "p99 ms",
               "Noisy done", "Noisy rejected"]
    rows = [
        ["victim alone", alone["qps"], alone["p50_ms"], alone["p95_ms"],
         alone["p99_ms"], "-", "-"],
        [f"victim + {noisy_clients} hammers", under_noise["qps"],
         under_noise["p50_ms"], under_noise["p95_ms"],
         under_noise["p99_ms"], noisy_done, noisy_rejected],
    ]
    payload = {
        "dataset": enc.name,
        "n_per_tenant": int(half),
        "num_clients": int(num_clients),
        "requests_per_client": int(requests_per_client),
        "total_requests": int(total),
        "noisy_clients": int(noisy_clients),
        "noisy_max_inflight": int(noisy_inflight),
        "k": k,
        "victim_alone": {
            "qps": float(alone["qps"]),
            "p50_ms": float(alone["p50_ms"]),
            "p95_ms": float(alone["p95_ms"]),
            "p99_ms": float(alone["p99_ms"]),
        },
        "victim_under_noise": {
            "qps": float(under_noise["qps"]),
            "p50_ms": float(under_noise["p50_ms"]),
            "p95_ms": float(under_noise["p95_ms"]),
            "p99_ms": float(under_noise["p99_ms"]),
        },
        "isolation_qps_ratio": float(ratio),
        "noisy_completed": int(noisy_done),
        "noisy_rejected": int(noisy_rejected),
        "cross_tenant_rejections": int(cross_rejections),
        "parity_bitwise": bool(parity),
    }
    table = Table(
        "Multi-tenant QPS",
        f"Quota isolation under a noisy neighbour on {enc.name}",
        headers, rows,
        notes=f"Two collections behind one dispatcher; the noisy tenant "
              f"is capped at {noisy_inflight} in-flight requests and "
              f"hammered by {noisy_clients} resubmitting threads. The "
              f"victim keeps {ratio:.2f}x of its solo QPS because the "
              f"quota rejects the flood at admission ({noisy_rejected} "
              f"rejections, all on the noisy tenant) instead of letting "
              f"it occupy the queue. Quiesced answers stay bit-identical "
              f"per tenant.",
    )
    return table, payload
