"""Efficiency & scalability experiments: Fig. 6–8, Tab. VII, Tab. XII, Fig. 10(c).

Wall-clock comparisons in this pure-Python port carry interpreter
overhead that the paper's C++ kernels do not, so every efficiency table
reports **joint similarity evaluations** alongside QPS: the evaluation
counts reproduce the paper's work ratios exactly, while QPS shapes match
once the corpus is large enough that BLAS scans stop being free.

All throughput numbers are measured through the batched
:class:`~repro.index.executor.BatchExecutor` entry points
(``batch_search``), i.e. what a serving deployment would actually run;
:func:`batch_throughput` additionally compares the execution strategies
(single-query loop vs batched vs thread-parallel vs GEMM-batched exact)
head to head at a fixed operating point.
"""

from __future__ import annotations

import numpy as np

from repro.bench import cache
from repro.bench.harness import Table
from repro.baselines import BruteForceMUST, MultiStreamedRetrieval
from repro.core.framework import MUST
from repro.datasets.largescale import exact_ground_truth
from repro.metrics import mean_recall, measure_batch_qps, measure_qps

__all__ = [
    "fig6_qps_recall",
    "tab7_data_volume",
    "fig7_build_cost",
    "fig8_topk",
    "tab12_beam_width",
    "fig10c_multivector",
    "batch_throughput",
]

_L_SWEEP = (10, 20, 40, 80, 160, 320)
_MR_BUDGET_SWEEP = (20, 50, 100, 250, 500, 1000)


def _recall_vs_exact(results, gt, k):
    return mean_recall([r[:k] for r in results], [g[:k] for g in gt], k)


def fig6_qps_recall(kind: str = "image") -> Table:
    """Fig. 6: QPS vs Recall@10(10) for MUST / MUST-- / MR / MR--."""
    enc, must = cache.largescale_must(kind)
    gt = exact_ground_truth(enc, must.weights, k=10)
    queries = enc.queries
    headers = ["Method", "Param", "Recall@10(10)", "QPS", "JointEvals/query"]
    rows: list[list] = []

    for l in _L_SWEEP:
        run = measure_batch_qps(
            lambda qs, l=l: must.batch_search(qs, k=10, l=l), queries
        )
        rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
        evals = np.mean([r.stats.joint_evals for r in run.results])
        rows.append(["MUST", f"l={l}", rec, run.qps, evals])

    brute = BruteForceMUST(enc.objects, must.weights).build()
    run = measure_batch_qps(lambda qs: brute.batch_search(qs, k=10), queries)
    rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
    rows.append(["MUST--", "-", rec, run.qps, float(enc.objects.n)])

    mr = MultiStreamedRetrieval(enc.objects).build()
    for budget in _MR_BUDGET_SWEEP:
        run = measure_batch_qps(
            lambda qs, b=budget: mr.batch_search(
                qs, k=10, candidates_per_modality=b
            ),
            queries,
        )
        rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
        evals = np.mean([r.stats.joint_evals for r in run.results])
        rows.append(["MR", f"cand={budget}", rec, run.qps, evals])

    mr_exact = MultiStreamedRetrieval(enc.objects, exact=True).build()
    run = measure_batch_qps(
        lambda qs: mr_exact.batch_search(qs, k=10, candidates_per_modality=200),
        queries,
    )
    rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
    rows.append(["MR--", "cand=200", rec, run.qps, 2.0 * enc.objects.n])

    return Table(
        "Fig. 6", f"QPS vs recall on {enc.name}", headers, rows,
        notes="MR recall saturates regardless of budget; MUST reaches "
              ">0.95 recall with a small fraction of the evaluations.",
    )


def tab7_data_volume(
    volumes: tuple[int, ...] = (2_500, 5_000, 10_000, 20_000, 40_000),
) -> Table:
    """Tab. VII: response time of MUST vs MUST-- across corpus volumes."""
    headers = ["Scale", "MUST-- ms/query", "MUST ms/query",
               "MUST-- evals/query", "MUST evals/query", "WorkReduction",
               "MUST Recall@10(10)"]
    rows = []
    for n in volumes:
        enc, must = cache.largescale_must("image", n)
        gt = exact_ground_truth(enc, must.weights, k=10)
        queries = enc.queries
        brute = BruteForceMUST(enc.objects, must.weights).build()
        brute_run = measure_batch_qps(
            lambda qs: brute.batch_search(qs, k=10), queries
        )
        # High-accuracy operating point, as in the paper (recall > 0.99
        # at l tuned per scale; a fixed generous l suffices here).
        must_run = measure_batch_qps(
            lambda qs: must.batch_search(qs, k=10, l=200), queries
        )
        rec = _recall_vs_exact([r.ids for r in must_run.results], gt, 10)
        evals = float(np.mean(
            [r.stats.joint_evals for r in must_run.results]
        ))
        reduction = 1.0 - evals / n
        rows.append([
            f"{n/1000:g}K",
            brute_run.mean_latency * 1e3,
            must_run.mean_latency * 1e3,
            float(n),
            evals,
            f"{reduction:.1%}",
            rec,
        ])
    return Table(
        "Tab. VII", "Response time vs data volume (ImageText)", headers, rows,
        notes="Brute-force similarity work grows linearly with n while the "
              "fused index stays near-flat (WorkReduction column — the "
              "paper's ↓98.4% at 16M). Wall-clock in pure Python still "
              "favours BLAS scans at these corpus sizes; the evaluation "
              "counts carry the scalability claim.",
    )


def fig7_build_cost(
    volumes: tuple[int, ...] = (2_500, 5_000, 10_000, 20_000, 40_000),
) -> Table:
    """Fig. 7: build time and index size, MUST vs MR, across volumes."""
    headers = ["Scale", "MUST build (s)", "MR build (s)",
               "MUST size (MB)", "MR size (MB)"]
    rows = []
    for n in volumes:
        enc, must = cache.largescale_must("image", n)
        mr = MultiStreamedRetrieval(enc.objects).build()
        rows.append([
            f"{n/1000:g}K",
            must.index.build_seconds,
            mr.build_seconds,
            must.index.size_in_bytes() / 2**20,
            mr.index_size_in_bytes() / 2**20,
        ])
    return Table(
        "Fig. 7", "Index build time and size vs data volume", headers, rows,
        notes="MR maintains one graph per modality — roughly double the "
              "build time and storage of MUST's single fused graph.",
    )


def fig8_topk() -> Table:
    """Fig. 8: effect of k on the QPS–recall tradeoff (MUST vs MR)."""
    enc, must = cache.largescale_must("image")
    mr = MultiStreamedRetrieval(enc.objects).build()
    queries = enc.queries
    headers = ["k", "Method", "Param", "Recall@k(k)", "QPS"]
    rows = []
    for k in (1, 50, 100):
        gt = exact_ground_truth(enc, must.weights, k=k)
        run = measure_batch_qps(
            lambda qs, k=k: must.batch_search(qs, k=k, l=max(4 * k, 160)),
            queries,
        )
        rec = _recall_vs_exact([r.ids for r in run.results], gt, k)
        rows.append([k, "MUST", f"l={max(4 * k, 160)}", rec, run.qps])
        budget = max(20 * k, 200)
        run = measure_batch_qps(
            lambda qs, k=k, b=budget: mr.batch_search(
                qs, k=k, candidates_per_modality=b
            ),
            queries,
        )
        rec = _recall_vs_exact([r.ids for r in run.results], gt, k)
        rows.append([k, "MR", f"cand={budget}", rec, run.qps])
    return Table(
        "Fig. 8", "Effect of k (ImageText)", headers, rows,
        notes="MR needs ever larger candidate budgets as k grows, widening "
              "MUST's advantage (paper §VIII-F).",
    )


def tab12_beam_width() -> Table:
    """Tab. XII: recall / response time under different l."""
    enc, must = cache.largescale_must("image")
    gt = exact_ground_truth(enc, must.weights, k=10)
    headers = ["l", "Recall@10(10)", "ms/query", "JointEvals/query"]
    rows = []
    for l in (20, 40, 80, 160, 320, 640):
        run = measure_batch_qps(
            lambda qs, l=l: must.batch_search(qs, k=10, l=l), enc.queries
        )
        rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
        evals = np.mean([r.stats.joint_evals for r in run.results])
        rows.append([l, rec, run.mean_latency * 1e3, evals])
    return Table(
        "Tab. XII", "Search performance vs result-set size l", headers, rows,
        notes="Recall and cost both increase monotonically with l.",
    )


def fig10c_multivector() -> Table:
    """Fig. 10(c): the Lemma-4 multi-vector computation optimisation."""
    enc, must = cache.largescale_must("image")
    gt = exact_ground_truth(enc, must.weights, k=10)
    headers = ["l", "Variant", "Recall@10(10)", "ModalityEvals/query", "QPS"]
    rows = []
    for l in (20, 80, 320):
        for label, flag in (("w/o optimization", False), ("w. optimization", True)):
            run = measure_batch_qps(
                lambda qs, l=l, f=flag: must.batch_search(
                    qs, k=10, l=l, early_termination=f
                ),
                enc.queries,
            )
            rec = _recall_vs_exact([r.ids for r in run.results], gt, 10)
            evals = np.mean([r.stats.modality_evals for r in run.results])
            rows.append([l, label, rec, evals, run.qps])
    return Table(
        "Fig. 10(c)", "Multi-vector computation optimisation", headers, rows,
        notes="Identical recall with fewer modality evaluations (Lemma 4). "
              "Wall-clock gains are muted in pure Python (see module doc).",
    )


def batch_throughput(
    kind: str = "image",
    k: int = 10,
    l: int = 80,
    n_jobs: int = 4,
) -> tuple[Table, dict]:
    """Single-query vs batched vs parallel QPS at a fixed operating point.

    Compares the execution strategies the
    :class:`~repro.index.executor.BatchExecutor` offers over the *same*
    index and query set: the legacy single-query loop, the sequential
    executor (per-query child seeds, one thread), the thread-pool
    executor, and — for the exact path — the per-query scan vs the
    single-GEMM batch.  Returns the table plus a JSON-ready payload for
    the ``BENCH_batch_qps.json`` perf-trajectory artifact.
    """
    enc, must = cache.largescale_must(kind)
    gt = exact_ground_truth(enc, must.weights, k=k)
    queries = enc.queries
    headers = ["Path", "Mode", "Recall@10(10)", "QPS", "Speedup"]
    rows: list[list] = []
    payload: dict = {
        "dataset": enc.name,
        "n": int(enc.objects.n),
        "num_queries": len(queries),
        "k": k,
        "l": l,
        "n_jobs": n_jobs,
        "modes": {},
    }

    def record(path: str, mode: str, run, baseline_qps: float | None) -> float:
        rec = _recall_vs_exact([r.ids for r in run.results], gt, k)
        speedup = run.qps / baseline_qps if baseline_qps else 1.0
        rows.append([path, mode, rec, run.qps, f"{speedup:.2f}x"])
        payload["modes"][f"{path}/{mode}"] = {
            "qps": float(run.qps),
            "recall": float(rec),
            "speedup": float(speedup),
        }
        return run.qps

    single = measure_qps(lambda q: must.search(q, k=k, l=l), queries)
    base = record("graph", "single-query loop", single, None)
    seq = measure_batch_qps(
        lambda qs: must.batch_search(qs, k=k, l=l, n_jobs=1), queries
    )
    record("graph", "executor n_jobs=1", seq, base)
    par = measure_batch_qps(
        lambda qs: must.batch_search(qs, k=k, l=l, n_jobs=n_jobs), queries
    )
    record("graph", f"executor n_jobs={n_jobs}", par, base)

    exact_single = measure_qps(
        lambda q: must.search(q, k=k, exact=True), queries
    )
    exact_base = record("exact", "single-query loop", exact_single, None)
    exact_batch = measure_batch_qps(
        lambda qs: must.batch_search(qs, k=k, exact=True), queries
    )
    record("exact", "executor GEMM batch", exact_batch, exact_base)

    table = Table(
        "Batch QPS", f"Execution strategies on {enc.name}", headers, rows,
        notes="Same index, same queries: the executor's GEMM wave batches "
              "the exact scan, and the thread pool overlaps graph "
              "searches (BLAS releases the GIL). Recall shifts slightly "
              "between loop and executor because the executor gives "
              "every query its own SeedSequence child instead of a "
              "shared rng=0 init draw.",
    )
    return table, payload
