"""Table formatting and persistence for the benchmark harness.

Every experiment function returns a :class:`Table`; the pytest-benchmark
wrappers print it and archive it under ``benchmarks/results/`` so the
EXPERIMENTS.md record can be regenerated from the same artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Table", "format_table", "save_table", "RESULTS_DIR"]

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass
class Table:
    """One reproduced paper artifact (table or figure series)."""

    experiment_id: str  # e.g. "Tab. III"
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""

    def row_str(self, row: list) -> list[str]:
        out = []
        for cell in row:
            if isinstance(cell, float):
                out.append(f"{cell:.4f}")
            else:
                out.append(str(cell))
        return out


def format_table(table: Table) -> str:
    """Render a Table as aligned monospace text."""
    str_rows = [table.row_str(r) for r in table.rows]
    widths = [len(h) for h in table.headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {table.experiment_id}: {table.title} =="]
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(table.headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    if table.notes:
        lines.append(f"note: {table.notes}")
    return "\n".join(lines)


def save_table(table: Table, stem: str) -> Path:
    """Write the rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{stem}.txt"
    path.write_text(format_table(table) + "\n")
    return path
