"""Run every experiment and render the EXPERIMENTS.md record.

Usage::

    python -m repro.bench.report            # all experiments (~10-15 min)
    python -m repro.bench.report Tab3 Fig6  # a subset by id prefix
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.bench.harness import Table, format_table, save_table

#: (stem, callable) in paper order; callables are imported lazily so a
#: subset run does not pay for unused modules.
def _registry():
    from repro.bench import ablations, accuracy, case_study, efficiency

    return [
        ("tab3_mitstates", accuracy.tab3_mitstates),
        ("tab4_celeba", accuracy.tab4_celeba),
        ("tab5_shopping_tshirt", accuracy.tab5_shopping_tshirt),
        ("tab6_mscoco", accuracy.tab6_mscoco),
        ("fig5_case_study", case_study.fig5_case_study),
        ("fig6_qps_recall", efficiency.fig6_qps_recall),
        ("fig6_audio", lambda: efficiency.fig6_qps_recall("audio")),
        ("fig6_video", lambda: efficiency.fig6_qps_recall("video")),
        ("tab7_data_volume", efficiency.tab7_data_volume),
        ("fig7_build_cost", efficiency.fig7_build_cost),
        ("tab8_modalities", accuracy.tab8_modalities),
        ("fig8_topk", efficiency.fig8_topk),
        ("fig9_negatives", ablations.fig9_negative_strategies),
        ("tab9_user_weights", accuracy.tab9_user_weights),
        ("tab10_single_modality", accuracy.tab10_single_modality),
        ("fig10ab_graph_zoo", ablations.fig10ab_graph_zoo),
        ("fig10c_multivector", efficiency.fig10c_multivector),
        ("fig11_neighbors", case_study.fig11_neighbors),
        ("tab11_iterations", ablations.tab11_iterations),
        ("tab12_beam_width", efficiency.tab12_beam_width),
        ("fig13_negative_counts", ablations.fig13_negative_counts),
        ("fig14_gamma", ablations.fig14_gamma),
        ("tab21_shopping_bottoms", accuracy.tab21_shopping_bottoms),
    ]


def run(filters: list[str] | None = None) -> list[tuple[str, Table, float]]:
    """Execute (a subset of) the experiments, saving each table."""
    outputs = []
    for stem, fn in _registry():
        if filters and not any(f.lower() in stem for f in filters):
            continue
        start = time.perf_counter()
        table = fn()
        elapsed = time.perf_counter() - start
        save_table(table, stem)
        print(format_table(table))
        print(f"[{stem} finished in {elapsed:.1f}s]\n", flush=True)
        outputs.append((stem, table, elapsed))
    return outputs


def main() -> None:
    filters = [f.lower() for f in sys.argv[1:]] or None
    run(filters)


if __name__ == "__main__":
    main()
