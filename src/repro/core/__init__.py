"""Core abstractions: multi-vector objects, weights, joint space, MUST,
and the typed query surface (Query / SearchOptions / attribute filters)."""

from repro.core.attributes import AttributeTable
from repro.core.framework import MUST
from repro.core.multivector import MultiVector, MultiVectorSet, normalize_rows
from repro.core.query import (
    And,
    Eq,
    Filter,
    In,
    Not,
    Or,
    Query,
    Range,
    SearchOptions,
)
from repro.core.results import SearchResult, SearchStats
from repro.core.space import JointSpace
from repro.core.weights import Weights

__all__ = [
    "MUST",
    "MultiVector",
    "MultiVectorSet",
    "normalize_rows",
    "SearchResult",
    "SearchStats",
    "JointSpace",
    "Weights",
    "AttributeTable",
    "Query",
    "SearchOptions",
    "Filter",
    "Eq",
    "In",
    "Range",
    "And",
    "Or",
    "Not",
]
