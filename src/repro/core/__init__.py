"""Core abstractions: multi-vector objects, weights, joint space, MUST."""

from repro.core.framework import MUST
from repro.core.multivector import MultiVector, MultiVectorSet, normalize_rows
from repro.core.results import SearchResult, SearchStats
from repro.core.space import JointSpace
from repro.core.weights import Weights

__all__ = [
    "MUST",
    "MultiVector",
    "MultiVectorSet",
    "normalize_rows",
    "SearchResult",
    "SearchStats",
    "JointSpace",
    "Weights",
]
