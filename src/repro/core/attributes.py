"""Per-corpus attribute table: the structured metadata behind filters.

Production multimodal search rarely retrieves from the whole corpus —
queries carry structured constraints ("category is shoes", "price below
50", "year in 2019..2021") alongside their vectors.  An
:class:`AttributeTable` holds one value per object per named field,
aligned row-for-row with the vector matrices of a
:class:`~repro.core.multivector.MultiVectorSet`, and is the compilation
target of the :class:`~repro.core.query.Filter` mini-DSL: every filter
clause reduces to a boolean mask over these columns.

The table follows the corpus everywhere vectors go: ``subset`` slices it
(segment seal/compact, corpus subsetting), ``concat`` rebuilds it when
segments merge, and ``to_arrays``/``from_arrays`` persist it inside
segment ``.npz`` archives — so a filter answers identically before and
after any seal, compaction, or save/load round-trip.

Columns are plain 1-D numpy arrays; numeric and fixed-width string
dtypes are both supported (``object`` dtype is rejected — it neither
persists in ``.npz`` archives nor compares reliably).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.utils.validation import require

__all__ = ["AttributeTable", "ATTRIBUTE_PREFIX"]

#: key prefix under which columns travel inside segment ``.npz`` archives.
ATTRIBUTE_PREFIX = "attr__"


def _as_column(name: str, values: "np.ndarray | Sequence[object]") -> np.ndarray:
    column = np.asarray(values)
    require(
        column.ndim == 1,
        f"attribute {name!r} must be a 1-D column, got shape {column.shape}",
    )
    if column.dtype == np.dtype(object):
        # A list of python strings lands here only when numpy could not
        # find a common width/type; retry as str so homogeneous string
        # data still works.  Truly mixed columns are rejected —
        # ``astype(str)`` would silently stringify them and break both
        # comparisons and ``.npz`` persistence.
        if all(isinstance(v, str) for v in column):
            column = column.astype(np.str_)
        else:
            raise ValueError(
                f"attribute {name!r} has mixed/object values — use one "
                f"numeric or string type per column"
            )
    return column


class AttributeTable:
    """Named per-object attribute columns, aligned with a vector corpus.

    Construct from a mapping ``{field: values}`` where every column has
    one entry per object.  The table is immutable after construction
    (columns are copied and marked read-only) so it can be shared
    between a live index and its frozen snapshots without copying.
    """

    def __init__(self, columns: Mapping[str, "np.ndarray | Sequence[object]"]):
        require(len(columns) >= 1, "attribute table needs at least one column")
        prepared: dict[str, np.ndarray] = {}
        n = -1
        for name, values in columns.items():
            require(
                isinstance(name, str) and len(name) > 0,
                f"attribute field names must be non-empty strings, got {name!r}",
            )
            column = _as_column(name, values).copy()
            column.flags.writeable = False
            if n < 0:
                n = int(column.shape[0])
            require(
                int(column.shape[0]) == n,
                f"attribute {name!r} has {column.shape[0]} rows, expected {n} "
                f"(all columns must align with the corpus)",
            )
            prepared[name] = column
        self._columns = prepared
        self._n = n

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of objects covered (rows per column)."""
        return self._n

    @property
    def fields(self) -> tuple[str, ...]:
        """Column names, in insertion order."""
        return tuple(self._columns)

    def __contains__(self, field: str) -> bool:
        return field in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def column(self, field: str) -> np.ndarray:
        """The values of *field* (read-only), or an actionable error."""
        got = self._columns.get(field)
        if got is None:
            raise ValueError(
                f"unknown attribute field {field!r}; this corpus defines "
                f"{sorted(self._columns)}"
            )
        return got

    # ------------------------------------------------------------------
    # Corpus lifecycle (subset / merge) — mirrors the vector stores
    # ------------------------------------------------------------------
    def subset(self, ids: np.ndarray) -> "AttributeTable":
        """New table over the rows in *ids* (row order kept)."""
        idx = np.asarray(ids)
        return AttributeTable({n: col[idx] for n, col in self._columns.items()})

    @classmethod
    def concat(cls, tables: Sequence["AttributeTable"]) -> "AttributeTable":
        """Stack *tables* row-wise; all must define the same fields."""
        require(len(tables) >= 1, "nothing to concatenate")
        fields = tables[0].fields
        for t in tables[1:]:
            require(
                t.fields == fields,
                f"cannot concatenate attribute tables with different "
                f"fields: {fields} vs {t.fields}",
            )
        return cls(
            {
                name: np.concatenate([t.column(name) for t in tables])
                for name in fields
            }
        )

    # ------------------------------------------------------------------
    # Persistence — rides inside segment .npz archives
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Array payload for an ``.npz`` archive (prefixed keys)."""
        return {ATTRIBUTE_PREFIX + n: col for n, col in self._columns.items()}

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray]
    ) -> "AttributeTable | None":
        """Inverse of :meth:`to_arrays`; None when no columns are present."""
        columns = {
            name[len(ATTRIBUTE_PREFIX):]: np.asarray(values)
            for name, values in arrays.items()
            if name.startswith(ATTRIBUTE_PREFIX)
        }
        if not columns:
            return None
        return cls(columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{n}:{c.dtype}" for n, c in self._columns.items())
        return f"AttributeTable(n={self._n}, columns=[{cols}])"
