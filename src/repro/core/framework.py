"""The MUST framework facade (paper §IV, Fig. 4).

Ties the pieces together behind one object:

* **Embedding** is upstream (a :class:`~repro.datasets.base.EncodedDataset`
  or any :class:`~repro.core.multivector.MultiVectorSet`) — pluggable.
* **Vector weight learning** — :meth:`MUST.fit_weights` trains the §VI
  model on (anchor, positive) pairs and installs the learned weights.
* **Indexing** — :meth:`MUST.build` constructs the fused proximity graph
  (Algorithm 1) under the current weights.
* **Searching** — :meth:`MUST.query` runs the joint search
  (Algorithm 2) through the typed request surface: per-query weight
  overrides (Fig. 4(g) Option 2), attribute filters, exact brute
  force.  The legacy keyword entry points (:meth:`MUST.search` /
  :meth:`MUST.batch_search`) remain as bit-identical deprecation shims.

Typical usage::

    must = MUST.from_dataset(encoded)
    must.fit_weights(train_queries, train_positive_ids)
    must.build()
    result = must.query(Query(vector), SearchOptions(k=10, l=100))
"""

from __future__ import annotations

import warnings
from dataclasses import replace as _dc_replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.attributes import AttributeTable
from repro.core.multivector import MultiVector, MultiVectorSet
from repro.core.query import Query, SearchOptions, as_query, compile_filter
from repro.core.results import SearchResult, SearchStats
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.base import GraphIndex, reseat_on_store
from repro.index.executor import BatchExecutor, BatchResult
from repro.index.flat import FlatIndex
from repro.index.pipeline import FusedIndexBuilder
from repro.index.search import joint_search
from repro.index.segments import MANIFEST_NAME, SegmentedIndex, SegmentPolicy
from repro.store import STORE_KINDS, spill_cold
from repro.utils.io import load_arrays
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import require
from repro.weightlearn.trainer import VectorWeightLearner, WeightLearningResult

__all__ = ["MUST"]


class MUST:
    """Multimodal Search of Target Modality — the full framework.

    ``compression`` selects the vector-store backend serving the index
    (:data:`~repro.store.STORE_KINDS`: ``"none"``, ``"float16"``,
    ``"int8"``, ``"pq"``).  The graph is always *built* over the
    full-precision vectors; with a compressed backend it then *serves*
    from the compressed codes (asymmetric kernels), the original
    float32 corpus staying available as the cold exact tier for
    ``search(..., refine=r)`` rerank, ``exact=True`` scans, and
    compaction.  ``store_options`` is forwarded to the backend
    (``keep_exact``, PQ's ``pq_dims``/``pq_centroids``/``seed``, …).
    """

    name = "MUST"

    def __init__(
        self,
        objects: MultiVectorSet,
        weights: Weights | None = None,
        builder=None,
        segment_policy: SegmentPolicy | None = None,
        compression: str = "none",
        store_options: dict | None = None,
        cold_storage: str = "resident",
        data_dir: str | Path | None = None,
        metrics: Sequence[str] | None = None,
    ):
        require(
            compression in STORE_KINDS,
            f"unknown compression {compression!r}; supported: "
            f"{sorted(STORE_KINDS)}",
        )
        require(
            cold_storage in ("resident", "mmap"),
            f"unknown cold_storage {cold_storage!r}; supported: "
            f"'resident', 'mmap'",
        )
        if cold_storage == "mmap":
            require(
                compression != "none",
                "cold_storage='mmap' requires a compressed hot tier "
                "(float16/int8/pq) — a dense store serves graph "
                "traversal from the float32 corpus itself, which must "
                "stay resident",
            )
            require(
                data_dir is not None,
                "cold_storage='mmap' requires data_dir= (the directory "
                "that receives the per-segment cold-tier .npy files)",
            )
            require(
                bool((store_options or {}).get("keep_exact", True)),
                "cold_storage='mmap' spills the exact cold tier to disk "
                "— keep_exact=False leaves nothing to spill",
            )
        #: where compressed segments' exact cold tier lives — see the
        #: class docstring; ``"mmap"`` makes resident bytes O(hot).
        self.cold_storage = cold_storage
        self.data_dir = None if data_dir is None else Path(data_dir)
        if metrics is not None:
            # Per-modality metric declarations are validated at
            # construction, so a typo ("cosin") fails here with the
            # registry's did-you-mean hint rather than at first query.
            objects = MultiVectorSet.from_store(
                objects.store,
                attributes=objects.attributes,
                sparse=objects.sparse,
                metrics=tuple(metrics),
            )
        self.objects = objects
        self.weights = weights or Weights.uniform(objects.num_modalities)
        self.builder = builder or FusedIndexBuilder()
        #: Seal/compaction knobs used once :meth:`insert` switches the
        #: instance to the segmented subsystem.
        self.segment_policy = segment_policy
        self.compression = compression
        self.store_options = dict(store_options or {})
        self._index: GraphIndex | None = None
        self._segments: SegmentedIndex | None = None
        self._space: JointSpace | None = None
        self.weight_result: WeightLearningResult | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset, **kwargs) -> "MUST":
        """Build from an :class:`~repro.datasets.base.EncodedDataset`."""
        return cls(dataset.objects, **kwargs)

    # ------------------------------------------------------------------
    # Stage 2: vector weight learning (§VI)
    # ------------------------------------------------------------------
    def fit_weights(
        self,
        anchors: list[MultiVector],
        positive_object_ids: np.ndarray,
        pool_object_ids: np.ndarray | None = None,
        **learner_kwargs,
    ) -> WeightLearningResult:
        """Learn modality weights from training queries.

        ``positive_object_ids[b]`` is the corpus id of anchor ``b``'s true
        object.  The mining pool ``T`` defaults to the **whole corpus**:
        the paper mines negatives from its true-object set, which at its
        query volumes (up to 72k queries) covers the corpus densely — at
        reproduction scale the corpus itself is the faithful equivalent
        (pass ``pool_object_ids=np.unique(positive_object_ids)`` for the
        literal positives-only construction).  The learned weights are
        installed on this instance; call :meth:`build` afterwards, since
        the fused index depends on the weights.
        """
        require(
            self._segments is None,
            "cannot change weights after streaming inserts: segment graphs "
            "and inserted vectors are bound to the old weights — fit "
            "weights before going dynamic, or rebuild a fresh MUST",
        )
        positive_object_ids = np.asarray(positive_object_ids, dtype=np.int64)
        if pool_object_ids is None:
            pool_object_ids = np.arange(self.objects.n, dtype=np.int64)
        else:
            pool_object_ids = np.asarray(pool_object_ids, dtype=np.int64)
            missing = np.setdiff1d(positive_object_ids, pool_object_ids)
            require(missing.size == 0,
                    "every positive must be contained in the pool")
        pool = self.objects.subset(pool_object_ids)
        lookup = {int(obj): row for row, obj in enumerate(pool_object_ids)}
        positions = np.asarray(
            [lookup[int(obj)] for obj in positive_object_ids], dtype=np.int64
        )
        learner = VectorWeightLearner(**learner_kwargs)
        result = learner.fit(anchors, positions, pool)
        self.weight_result = result
        self.set_weights(result.weights)
        return result

    def set_weights(self, weights: Weights) -> None:
        """Install user-defined weights (Fig. 4(g) Option 2)."""
        require(
            self._segments is None,
            "cannot change weights after streaming inserts: segment graphs "
            "and inserted vectors are bound to the old weights — fit "
            "weights before going dynamic, or rebuild a fresh MUST",
        )
        self.weights = weights
        self._space = None  # weights changed → spaces/indexes are stale
        self._index = None

    def set_attributes(self, attributes: AttributeTable | dict) -> "MUST":
        """Attach the per-corpus attribute table that filters compile
        against (one value per object per named field).

        Accepts an :class:`~repro.core.attributes.AttributeTable` or a
        plain ``{field: values}`` mapping.  Attach before going dynamic:
        once streaming inserts have split the corpus into segments, each
        segment owns its attribute slice and new attributes arrive on
        the inserted :class:`MultiVectorSet` itself.
        """
        require(
            self._segments is None,
            "cannot attach attributes after streaming inserts — each "
            "segment owns its attribute slice; pass attributes on the "
            "inserted MultiVectorSet instead",
        )
        self.objects.set_attributes(attributes)
        if (
            self._index is not None
            and self._index.space.vectors is not self.objects
        ):
            # A compressed build re-seats the graph on a different
            # MultiVectorSet; mirror the table so filters compile on the
            # serving store too.
            self._index.space.vectors.set_attributes(self.objects.attributes)
        return self

    def set_sparse(self, sparse) -> "MUST":
        """Attach the sparse lexical plane hybrid queries score against
        (row ``j`` of the plane holds object ``j``'s term frequencies,
        exactly as row ``j`` of each dense matrix holds its vector).

        Accepts a :class:`~repro.sparse.store.SparseStore` (build one
        with ``SparseStore.from_rows``).  Attach before going dynamic:
        once streaming inserts have split the corpus into segments, each
        segment owns its sparse slice and new rows arrive on the
        inserted :class:`MultiVectorSet` itself.
        """
        require(
            self._segments is None,
            "cannot attach a sparse plane after streaming inserts — each "
            "segment owns its sparse slice; pass sparse= on the inserted "
            "MultiVectorSet instead",
        )
        self.objects.set_sparse(sparse)
        if (
            self._index is not None
            and self._index.space.vectors is not self.objects
        ):
            # Mirror onto the re-seated serving store, exactly as
            # set_attributes does for the attribute table.
            self._index.space.vectors.set_sparse(self.objects.sparse)
        return self

    # ------------------------------------------------------------------
    # Stage 3: indexing (§VII-A)
    # ------------------------------------------------------------------
    @property
    def space(self) -> JointSpace:
        if self._space is None:
            self._space = JointSpace(self.objects, self.weights)
        return self._space

    @property
    def index(self) -> GraphIndex:
        require(self._index is not None, "call build() first")
        return self._index

    @property
    def segments(self) -> SegmentedIndex:
        """The segmented subsystem (only exists after :meth:`insert` or
        loading a segment manifest)."""
        require(self._segments is not None,
                "no segmented index — call insert() first")
        return self._segments

    @property
    def is_built(self) -> bool:
        return self._index is not None or self._segments is not None

    @property
    def is_segmented(self) -> bool:
        return self._segments is not None

    def build(self) -> "MUST":
        """Construct the fused proximity-graph index (Algorithm 1).

        With ``compression=`` the build itself runs over full-precision
        vectors; the finished graph is then re-seated on the compressed
        store, so query-time scoring reads the hot codes.  With
        ``cold_storage="mmap"`` the store's exact cold tier is then
        spilled to ``data_dir`` and served through a lazy memory
        mapping — only the hot codes stay resident.
        """
        require(
            self._segments is None,
            "rebuilding from the original corpus would discard streamed "
            "objects and tombstones (and recycle their external ids) — "
            "use compact() to reconstruct a segmented index",
        )
        require(
            self.objects.is_ip_only,
            f"build() fuses modalities via the Lemma-1 concatenation, "
            f"which requires metric 'ip' on every dense modality "
            f"(declared: {list(self.objects.metrics)}) — cosine/l2 "
            f"modalities are served by the exact paths "
            f"(SearchOptions(exact=True))",
        )
        index = reseat_on_store(
            self.builder.build(self.space), self.compression,
            self.store_options,
        )
        if self.cold_storage == "mmap":
            index = self._spill_index(index)
        self._index = index
        return self

    def _spill_index(self, index: GraphIndex) -> GraphIndex:
        """Move a built index's resident cold tier into ``data_dir``
        sidecar files (no-op when absent or already mapped)."""
        vectors = index.space.vectors
        store = vectors.store
        plane = store.cold_plane
        if plane is None or not plane.is_resident:
            return index
        self.data_dir.mkdir(parents=True, exist_ok=True)
        seq = SegmentedIndex._scan_cold_seq(self.data_dir)
        spilled = spill_cold(store, self.data_dir, f"seg_{seq:06d}")
        index.space = JointSpace(
            MultiVectorSet.from_store(
                spilled,
                attributes=vectors.attributes,
                sparse=vectors.sparse,
                metrics=vectors.declared_metrics,
            ),
            index.space.weights,
        )
        return index

    # ------------------------------------------------------------------
    # Stage 4: searching (§VII-B) — the unified typed entry point
    # ------------------------------------------------------------------
    def query(
        self,
        queries: "Query | MultiVector | Sequence[Query | MultiVector]",
        options: SearchOptions | None = None,
    ) -> SearchResult | BatchResult:
        """Joint top-*k* search through the typed request surface.

        The single entry point every other search surface now routes
        through.  *queries* is one :class:`~repro.core.query.Query` (or
        a raw :class:`MultiVector`) for a single
        :class:`~repro.core.results.SearchResult`, or a sequence of them
        for a :class:`~repro.index.executor.BatchResult`; *options* is a
        validated :class:`~repro.core.query.SearchOptions` plan (default
        plan when omitted).

        Per-query ``weights`` / ``filter`` / ``k`` ride inside each
        :class:`Query`; a filter compiles against the corpus attribute
        table (:meth:`set_attributes`) and is intersected with the §IX
        deletion bitsets — exact paths are then bit-identical to an
        unfiltered search over the post-filtered corpus, while graph
        paths treat masked-out vertices as routable but not reportable.

        Determinism matches the historical entry points: a single query
        draws init vertices straight from ``options.rng``, a batch
        spawns one SeedSequence child per query (bit-identical for any
        ``options.n_jobs``).
        """
        opts = options if options is not None else SearchOptions()
        require(
            isinstance(opts, SearchOptions),
            f"options must be a SearchOptions instance, got "
            f"{type(opts).__name__} — build one with SearchOptions(...)",
        )
        self._check_plan(opts)
        if isinstance(queries, (Query, MultiVector)):
            return self._query_one(as_query(queries), opts)
        typed = [as_query(q) for q in queries]
        executor = BatchExecutor.from_options(opts)
        # Batch graph execution defaults to the lockstep wave engine
        # (engine="auto"): the thread-pooled per-query loop is the
        # measured negative-speedup trap.  An explicit engine keeps the
        # per-query oracle available.
        engine = opts.resolve_engine(batch=True)
        if self._segments is not None:
            opts = opts.resolve(self._segments.num_total)
            return executor.run_segmented(
                self._segments,
                typed,
                k=opts.k,
                l=opts.l,
                early_termination=opts.early_termination,
                engine=engine,
                exact=opts.exact,
                refine=opts.refine,
                sparse_engine=opts.sparse_engine,
                check_monotone=opts.check_monotone,
            )
        if opts.exact:
            return executor.run_flat(
                self._flat(), typed, opts.k, refine=opts.refine,
                sparse_engine=opts.sparse_engine,
            )
        opts = opts.resolve(self.objects.n)
        if any(t.sparse is not None for t in typed):
            return self._batch_graph_hybrid(typed, opts, engine)
        if engine == "wave":
            return executor.run_graph_wave(
                self.index,
                typed,
                k=opts.k,
                l=opts.l,
                early_termination=opts.early_termination,
                refine=opts.refine,
                check_monotone=opts.check_monotone,
            )
        return executor.run_graph(
            self.index,
            typed,
            k=opts.k,
            l=opts.l,
            early_termination=opts.early_termination,
            engine=engine,
            refine=opts.refine,
            check_monotone=opts.check_monotone,
        )

    @staticmethod
    def _check_plan(opts: SearchOptions) -> None:
        """Graph-path contract: an explicit ``l`` must hold ``k`` results.

        Checked here (not in ``SearchOptions``) because exact scans
        ignore ``l`` entirely — and checked *before* ``resolve``, whose
        ``l`` floor exists only for the corpus-smaller-than-``k``
        corner, not to silently repair a user's ``l < k``.
        """
        require(
            opts.exact or opts.l >= opts.k,
            f"result set size l={opts.l} must be at least k={opts.k}",
        )

    def _query_one(self, q: Query, opts: SearchOptions) -> SearchResult:
        """One typed query, same arithmetic as the historical ``search``."""
        self._check_plan(opts)  # legacy shims enter here, not via query()
        # engine="auto" resolves to the heap engine here: single-query
        # results stay bit-identical to the historical entry points.
        # An explicit engine="wave" runs a batch of one.
        engine = opts.resolve_engine(batch=False)
        if self._segments is not None:
            if opts.exact:
                return self._segments.exact_search(
                    q, opts.k, refine=opts.refine,
                    sparse_engine=opts.sparse_engine,
                )
            opts = opts.resolve(self._segments.num_total)
            if engine == "wave":
                self._segments.prepare_search()
                results, wave_stats = self._segments.graph_wave(
                    [q],
                    k=opts.k,
                    l=opts.l,
                    early_termination=opts.early_termination,
                    rngs=[opts.rng],
                    refine=opts.refine,
                    sparse_engine=opts.sparse_engine,
                    check_monotone=opts.check_monotone,
                )
                results[0].stats.merge(wave_stats)
                return results[0]
            return self._segments.search(
                q,
                k=opts.k,
                l=opts.l,
                early_termination=opts.early_termination,
                engine=engine,
                rng=opts.rng,
                refine=opts.refine,
                sparse_engine=opts.sparse_engine,
                check_monotone=opts.check_monotone,
            )
        if opts.exact:
            return self._flat().search(
                q, opts.k, refine=opts.refine,
                sparse_engine=opts.sparse_engine,
            )
        opts = opts.resolve(self.objects.n)
        if q.sparse is not None:
            return self._hybrid_graph_one(q, opts, engine)
        if engine == "wave":
            from repro.index.graph_wave import graph_wave_search

            results, wave_stats = graph_wave_search(
                self.index,
                [q],
                k=opts.k,
                l=opts.l,
                early_termination=opts.early_termination,
                rngs=[opts.rng],
                refine=opts.refine,
                check_monotone=opts.check_monotone,
            )
            results[0].stats.merge(wave_stats)
            return results[0]
        return joint_search(
            self.index,
            q,
            k=opts.k,
            l=opts.l,
            early_termination=opts.early_termination,
            engine=engine,
            rng=opts.rng,
            refine=opts.refine,
            check_monotone=opts.check_monotone,
        )

    def _hybrid_graph_one(
        self, q: Query, opts: SearchOptions, engine: str, rng=None
    ) -> SearchResult:
        """One hybrid query on a single-graph instance.

        The dense graph traversal proposes a candidate pool of up to
        ``l`` ids, the sparse engine proposes its own lexical
        candidates, and the union is exact-rescored under the combined
        metric — the same union-rescore contract as the segmented
        hybrid branch, so flat and segmented deployments agree on what
        a hybrid answer means.  ``rng`` (a batch's per-query SeedSequence
        child) overrides ``opts.rng`` so results are independent of
        batch composition.
        """
        from repro.sparse.hybrid import hybrid_union_rescore

        index = self.index
        k = q.resolve_k(opts.k)
        pool = min(opts.l, index.num_active)
        dense = joint_search(
            index,
            q if q.k is None else _dc_replace(q, k=None),
            k=pool,
            l=opts.l,
            early_termination=opts.early_termination,
            # The wave engine is a batch layout of the heap traversal;
            # a routed single query runs the heap engine directly.
            engine="heap" if engine == "wave" else engine,
            rng=opts.rng if rng is None else np.random.default_rng(rng),
        )
        mask = None
        if index.deleted is not None:
            mask = ~index.deleted
        if q.filter is not None:
            fmask = compile_filter(
                q.filter, index.space.vectors.attributes
            )
            mask = fmask if mask is None else mask & fmask
        ids, sims = hybrid_union_rescore(
            index.space,
            q,
            dense.ids,
            min(k, index.num_active),
            admissible=mask,
            weights=q.resolve_weights(None),
            engine=opts.sparse_engine,
            stats=dense.stats,
        )
        return SearchResult(ids=ids, similarities=sims, stats=dense.stats)

    def _batch_graph_hybrid(
        self, typed: list[Query], opts: SearchOptions, engine: str
    ) -> BatchResult:
        """Batch over a single-graph instance when some queries carry a
        lexical component.

        Hybrid queries run the per-query union-rescore path under the
        same per-query SeedSequence child the batch engines would spawn
        — so every query's answer is bit-identical regardless of its
        batch-mates — while plain queries keep the batched engine.
        """
        from repro.index.graph_wave import graph_wave_search

        seeds = spawn_seed_sequences(opts.rng, len(typed))
        routed: dict[int, SearchResult] = {}
        for i, t in enumerate(typed):
            if t.sparse is not None:
                routed[i] = self._hybrid_graph_one(
                    t, opts, engine, rng=seeds[i]
                )
        plain = [i for i in range(len(typed)) if i not in routed]
        plain_results: list[SearchResult] = []
        wave_stats = None
        if plain and engine == "wave":
            plain_results, wave_stats = graph_wave_search(
                self.index,
                [typed[i] for i in plain],
                k=opts.k,
                l=opts.l,
                early_termination=opts.early_termination,
                rngs=[seeds[i] for i in plain],
                refine=opts.refine,
                check_monotone=opts.check_monotone,
            )
        elif plain:
            memo: dict = {}
            plain_results = [
                joint_search(
                    self.index,
                    typed[i],
                    k=opts.k,
                    l=opts.l,
                    early_termination=opts.early_termination,
                    engine=engine,
                    rng=np.random.default_rng(seeds[i]),
                    refine=opts.refine,
                    check_monotone=opts.check_monotone,
                    filter_memo=memo,
                )
                for i in plain
            ]
        results: list[SearchResult] = []
        it = iter(plain_results)
        for i in range(len(typed)):
            results.append(routed[i] if i in routed else next(it))
        stats = SearchStats.aggregate(r.stats for r in results)
        if wave_stats is not None:
            stats.merge(wave_stats)
        plan = (
            "graph/wave+hybrid" if engine == "wave" else "graph/hybrid"
        )
        return BatchResult(results, stats, plan=plan)

    @staticmethod
    def _embed_weights(q: Query, weights: Weights | None) -> Query:
        """Fold a legacy batch-level ``weights=`` into the typed query."""
        if weights is None or q.weights is not None:
            return q
        return _dc_replace(q, weights=weights)

    @staticmethod
    def _warn_legacy(name: str) -> None:
        warnings.warn(
            f"MUST.{name}(**kwargs) is a deprecated shim; build a typed "
            f"request instead: must.query(Query(vector, ...), "
            f"SearchOptions(...)) — see the README 'Query API' section",
            DeprecationWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # Legacy keyword entry points (deprecation shims over MUST.query)
    # ------------------------------------------------------------------
    def search(
        self,
        query: MultiVector | Query,
        k: int = 10,
        l: int = 100,
        weights: Weights | None = None,
        early_termination: bool = False,
        exact: bool = False,
        refine: int | None = None,
        **search_kwargs,
    ) -> SearchResult:
        """Joint top-*k* search for one multimodal query (legacy shim).

        Deprecated in favour of :meth:`query`; results are bit-identical
        to the typed path (this method merely builds the
        :class:`Query`/:class:`SearchOptions` pair and delegates).
        Unknown keyword arguments raise immediately with a did-you-mean
        hint — a misspelled option used to be silently swallowed.

        ``weights`` overrides the index weights at query time; ``exact``
        bypasses the graph (brute force over the full-precision corpus,
        the MUST-- behaviour — compression never touches this path on a
        non-segmented instance).  ``refine=r`` runs the two-stage rerank
        pipeline: the top ``r·k`` hot-tier survivors are re-scored at
        full precision before cutting to *k* (the recall knob for
        compressed stores).  On a segmented instance results carry
        stable external ids, and the exact path is layout-independent
        (bit-identical no matter how the corpus is split into segments).
        """
        self._warn_legacy("search")
        opts = SearchOptions.from_kwargs(
            k=k,
            l=l,
            exact=exact,
            refine=refine,
            early_termination=early_termination,
            **search_kwargs,
        )
        return self._query_one(
            self._embed_weights(as_query(query), weights), opts
        )

    def _flat(self) -> FlatIndex:
        """Exact searcher sharing the live §IX deletion bitset (if any)."""
        deleted = self._index.deleted if self._index is not None else None
        return FlatIndex(self.space, deleted=deleted)

    def batch_search(
        self,
        queries: "Sequence[MultiVector | Query]",
        k: int = 10,
        l: int = 100,
        weights: Weights | None = None,
        early_termination: bool = False,
        exact: bool = False,
        engine: str = "auto",
        n_jobs: int = 1,
        rng: int | None = 0,
        refine: int | None = None,
        **search_kwargs,
    ) -> BatchResult:
        """Joint top-*k* search for a batch of queries (legacy shim).

        Deprecated in favour of :meth:`query` with a sequence of typed
        queries — this method builds the equivalent request and
        delegates, so results are bit-identical to the typed path.
        Unknown keyword arguments raise with a did-you-mean hint.

        The exact path scores all queries with a single GEMM per wave;
        the graph path defaults to the lockstep wave engine
        (``engine="auto"``), with ``engine="heap"``/``"paper"`` running
        the per-query searchers, on a thread pool when ``n_jobs != 1``.
        Each query draws its random init
        vertices from its own child seed derived from ``rng``
        (``SeedSequence.spawn``), so batches are deterministic without
        every query sharing one init draw — and bit-identical for any
        ``n_jobs``.  ``refine`` applies the two-stage full-precision
        rerank per query (see :meth:`search`).  The returned
        :class:`BatchResult` iterates like the old list of per-query
        results and carries the aggregated per-batch
        :class:`~repro.core.results.SearchStats` as ``.stats``.
        """
        self._warn_legacy("batch_search")
        opts = SearchOptions.from_kwargs(
            k=k,
            l=l,
            exact=exact,
            refine=refine,
            early_termination=early_termination,
            engine=engine,
            n_jobs=n_jobs,
            rng=rng,
            **search_kwargs,
        )
        typed = [
            self._embed_weights(as_query(q), weights) for q in queries
        ]
        out = self.query(typed, opts)
        assert isinstance(out, BatchResult)
        return out

    # ------------------------------------------------------------------
    # Serving (snapshot reads + micro-batch coalescing)
    # ------------------------------------------------------------------
    def snapshot(self):
        """A frozen, searchable view of the current index state.

        Returns an :class:`~repro.service.IndexSnapshot`: later
        :meth:`insert` / :meth:`mark_deleted` / :meth:`compact` calls
        never change what it answers, and its ``search`` mirrors
        :meth:`search` bit for bit at capture time.  Capturing is cheap
        (no vector data is copied).  When other threads may be mutating
        this instance, serialise the capture with them — or use
        :meth:`serve`, which does.
        """
        from repro.service.snapshot import IndexSnapshot

        return IndexSnapshot.of(self)

    def serve(self, config=None, **config_kwargs):
        """Wrap this built instance in a concurrent serving front-end.

        Returns a started :class:`~repro.service.MustService`: client
        threads call ``service.search`` concurrently, the dispatcher
        coalesces them into batched waves over snapshots, and writes
        routed through the service proceed without blocking reads.
        Pass a :class:`~repro.service.ServiceConfig` or its fields as
        keyword arguments (``max_batch=64, max_wait_ms=1.0, ...``).
        """
        from repro.service.service import MustService, ServiceConfig

        if config is None:
            config = ServiceConfig(**config_kwargs)
        else:
            require(
                not config_kwargs,
                "pass either a ServiceConfig or its fields, not both",
            )
        return MustService(self, config)

    def serve_sharded(
        self, n_shards: int = 2, config=None, **kwargs
    ):
        """Wrap this built instance in the process-sharded serving tier.

        Returns a started :class:`~repro.service.ShardedService`: the
        corpus is partitioned by external id across ``n_shards`` worker
        processes (vector planes shared at spawn, never pickled on the
        hot path), each coalesced wave scatters to every shard, and the
        gathered exact answers merge bit-identically to this instance's
        own :meth:`search`.  ``config`` / extra keyword arguments are
        the same :class:`~repro.service.ServiceConfig` fields as
        :meth:`serve`; ``worker_timeout_s`` / ``mp_start`` pass through
        to the sharded constructor.
        """
        from repro.service.service import ServiceConfig
        from repro.service.sharded import ShardedService

        passthrough = {
            key: kwargs.pop(key)
            for key in ("worker_timeout_s", "spawn_timeout_s", "mp_start")
            if key in kwargs
        }
        if config is None:
            config = ServiceConfig(**kwargs)
        else:
            require(
                not kwargs,
                "pass either a ServiceConfig or its fields, not both",
            )
        return ShardedService(
            self, n_shards=n_shards, config=config, **passthrough
        )

    # ------------------------------------------------------------------
    # Dynamic updates (paper §IX, segmented subsystem)
    # ------------------------------------------------------------------
    def insert(self, objects: MultiVectorSet | MultiVector) -> np.ndarray:
        """Stream new objects into the live index; returns their ids.

        The first insert switches the instance to the segmented
        subsystem: the existing fused graph becomes sealed segment 0
        (its rows keep ids ``0..n-1``) and new objects flow into a
        mutable delta segment via incremental HNSW insertion.  Sealing
        and compaction run automatically per
        :class:`~repro.index.segments.SegmentPolicy` (override via the
        ``segment_policy`` constructor argument).  An unbuilt instance is
        built first.
        """
        return self._ensure_segments().insert(objects)

    def mark_deleted(self, object_ids: np.ndarray) -> None:
        """Soft-delete objects (data-status bitset, §IX).

        Deleted objects stop appearing in results immediately but keep
        routing searches — proximity graphs need periodic reconstruction
        to physically remove them; see :meth:`compact` (automatic on a
        segmented instance once the tombstone ratio crosses the policy
        threshold).
        """
        if self._segments is not None:
            self._segments.mark_deleted(object_ids)
            return
        self.index.mark_deleted(object_ids)

    def compact(self) -> tuple["MUST", np.ndarray]:
        """Reconstruct over the active subset (§IX periodic rebuild).

        Returns ``(must, active_ids)``.  On a segmented instance the
        rebuild happens **in place** (all segments merge into one fresh
        sealed segment, tombstones dropped, external ids preserved) and
        ``must is self``; otherwise the legacy behaviour returns a
        freshly built framework over the surviving objects, where row
        ``j`` of the new corpus is object ``active_ids[j]`` of the old.
        """
        if self._segments is not None:
            active = self._segments.compact()
            self._drop_caches()
            return self, active
        active = self.index.active_ids()
        fresh = MUST(
            self.objects.subset(active),
            weights=self.weights,
            builder=self.builder,
            compression=self.compression,
            store_options=self.store_options,
            cold_storage=self.cold_storage,
            data_dir=self.data_dir,
        )
        fresh.build()
        self._drop_caches()
        return fresh, active

    def memory_stats(self) -> dict:
        """Byte accounting split by tier: ``hot_bytes`` (always
        resident), ``cold_bytes`` (logical exact-tier size wherever it
        lives), ``resident_bytes`` (hot plus the RAM-resident part of
        cold — equal to hot under ``cold_storage="mmap"``)."""
        if self._segments is not None:
            return self._segments.memory_stats()
        require(self._index is not None, "call build() first")
        store = self._index.space.vectors.store
        return {
            "hot_bytes": int(store.hot_bytes()),
            "cold_bytes": int(store.cold_bytes()),
            "resident_bytes": int(store.resident_bytes()),
        }

    def _drop_caches(self) -> None:
        """Release lazily materialised per-space caches (the ω-scaled
        concatenation and the float64 deterministic-scan copies) after a
        compaction — the rebuilt index no longer needs the old corpus's
        derived state pinned in memory."""
        if self._space is not None:
            self._space.drop_caches()
        if self._index is not None:
            self._index.space.drop_caches()

    def _ensure_segments(self) -> SegmentedIndex:
        if self._segments is None:
            if self._index is None:
                self.build()
            self._segments = SegmentedIndex.from_graph(
                self._index,
                builder=self.builder,
                policy=self.segment_policy,
                compression=self.compression,
                store_options=self.store_options,
                cold_storage=self.cold_storage,
                data_dir=self.data_dir,
            )
            self._index = None
        return self._segments

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_index(self, path: str | Path) -> None:
        """Persist the index; weights go in the metadata.

        A classic single-graph index saves as one ``.npz`` archive
        (graph structure only — vectors stay with the corpus).  A
        segmented instance saves *path* as a directory: a manifest plus
        one ``.npz`` per segment, vectors included, so streamed objects
        survive the round-trip.
        """
        if self._segments is not None:
            self._segments.save(path)
            return
        require(self._index is not None, "call build() first")
        self._index.meta["squared_weights"] = [
            float(x) for x in self.weights.squared
        ]
        # Store kind + options ride along so a reload re-derives the
        # same compressed serving store (codebook training is
        # deterministic given the corpus and these options).
        self._index.meta["compression"] = self.compression
        self._index.meta["store_options"] = {
            k: v
            for k, v in self.store_options.items()
            if isinstance(v, (str, int, float, bool))
        }
        self._index.save(path)

    def load_index(self, path: str | Path) -> "MUST":
        """Restore an index saved by :meth:`save_index`.

        Directories holding a segment manifest load the full segmented
        state; plain archives load the legacy single-graph path for these
        objects.  Either way the archive is read once — stored weights
        are applied before the graph is bound to its space, not by
        re-reading the file.

        Loading is **atomic**: every fallible step (archive reads,
        store reconstruction, graph rebinding) runs before any instance
        state is touched, so a corrupt or incompatible save raises and
        leaves this instance exactly as it was.
        """
        path = Path(path)
        if path.is_dir() or (path / MANIFEST_NAME).exists():
            segments = SegmentedIndex.load(path, builder=self.builder)
            self._segments = segments
            self.weights = segments.weights
            self.cold_storage = segments.cold_storage
            self.data_dir = segments.data_dir
            self._space = None
            self._index = None
            return self
        metadata, arrays = load_arrays(path)
        meta = metadata.get("meta", {})
        stored = meta.get("squared_weights")
        weights = self.weights if stored is None else Weights(stored)
        stored_kind = meta.get("compression", "none")
        if stored_kind != "none":
            require(
                stored_kind in STORE_KINDS,
                f"index was saved with compression {stored_kind!r}; this "
                f"build supports {sorted(STORE_KINDS)} — upgrade the "
                f"library or rebuild the index",
            )
            # Restore the saved codec options too: retraining with
            # different ones would silently serve different codes than
            # the index was built and benchmarked with.
            compression = stored_kind
            store_options = dict(meta.get("store_options", {}))
        else:
            compression = self.compression
            store_options = self.store_options
        space = JointSpace(self.objects, weights)
        index = reseat_on_store(
            GraphIndex.from_arrays(metadata, arrays, space),
            compression,
            store_options,
        )
        if self.cold_storage == "mmap":
            index = self._spill_index(index)
        # All fallible work is done — commit.
        self.weights = weights
        self.compression = compression
        self.store_options = store_options
        self._space = space
        self._index = index
        self._segments = None
        return self

    @classmethod
    def from_saved(cls, path: str | Path, builder=None) -> "MUST":
        """Serve a saved *segmented* index without the original corpus.

        Segment archives carry their vectors, so a serving process
        never needs the corpus the index was built from — the seam that
        lets a beyond-RAM index load on a machine that could not hold
        the float32 corpus in the first place.  The returned instance
        holds a placeholder one-row corpus: query/serve/insert/compact
        all work (they read the segments), but corpus-bound stages
        (``fit_weights``, ``build``) need the real objects.
        """
        path = Path(path)
        require(
            path.is_dir() or (path / MANIFEST_NAME).exists(),
            f"{path} is not a segmented index directory — from_saved "
            f"restores directory saves (MUST.save_index of a segmented "
            f"instance); for single-graph archives construct MUST with "
            f"the corpus and call load_index",
        )
        segments = SegmentedIndex.load(path, builder=builder)
        dims = segments._modality_dims()
        placeholder = MultiVectorSet(
            [np.zeros((1, d), dtype=np.float32) for d in dims]
        )
        must = cls(
            placeholder,
            weights=segments.weights,
            builder=builder,
            compression=segments.compression,
            store_options=segments.store_options,
            cold_storage=segments.cold_storage,
            data_dir=segments.data_dir,
        )
        must._segments = segments
        return must
