"""Multi-vector representation of multimodal objects (paper §V).

A multimodal object with ``m`` modalities is represented by ``m``
L2-normalised vectors, one per modality, produced by pluggable encoders.
The library stores an object set column-wise — one ``(n, d_i)`` matrix per
modality — which keeps every similarity kernel a dense matrix product.

The column store itself is pluggable: a :class:`MultiVectorSet` is backed
by a :class:`~repro.store.VectorStore` (float32 by default — bit-identical
to the historical in-matrix layout — or a compressed backend: float16,
int8 scalar quantisation, product quantisation).  Hot search paths score
through the store's asymmetric kernels; :attr:`matrices` decodes, so code
that touches raw matrices keeps working on any backend at reconstruction
precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.attributes import AttributeTable
from repro.core.registry import validate_metrics
from repro.store import DenseStore, VectorStore
from repro.utils.validation import as_float_matrix, as_float_vector, require

if TYPE_CHECKING:
    from repro.sparse.store import SparseStore

__all__ = ["MultiVector", "MultiVectorSet", "normalize_rows"]


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Return *matrix* with each row scaled to unit L2 norm.

    Zero rows are left untouched (they encode "missing modality" and must
    keep an inner product of 0 with everything).  Norms accumulate in
    float64 (einsum upcasts per element — no corpus-sized float64 copy):
    squaring float32 values near the denormal range underflows and
    produced norms small enough to break idempotency.
    """
    matrix = np.asarray(matrix, dtype=np.float32)
    squares = np.einsum("...i,...i->...", matrix, matrix, dtype=np.float64)
    norms = np.sqrt(squares)[..., np.newaxis]
    safe = np.where(norms == 0.0, 1.0, norms)
    return (matrix / safe).astype(np.float32)


@dataclass(frozen=True)
class MultiVector:
    """Per-modality vectors for a single object or query.

    ``vectors[i] is None`` marks a missing modality (the paper's ``t < m``
    case, §VII-B): its weight is forced to zero during similarity
    computation.
    """

    vectors: tuple[np.ndarray | None, ...]

    @classmethod
    def from_arrays(cls, arrays: Iterable[np.ndarray | None]) -> "MultiVector":
        prepared: list[np.ndarray | None] = []
        for i, arr in enumerate(arrays):
            if arr is None:
                prepared.append(None)
            else:
                prepared.append(as_float_vector(arr, f"modality {i}"))
        return cls(tuple(prepared))

    @property
    def num_modalities(self) -> int:
        return len(self.vectors)

    @property
    def present(self) -> tuple[bool, ...]:
        """Flags marking which modalities carry a vector."""
        return tuple(v is not None for v in self.vectors)

    def replace(self, modality: int, vector: np.ndarray | None) -> "MultiVector":
        """Return a copy with one modality slot swapped out.

        Used to switch the target slot between Option 1 (unimodal
        embedding) and Option 2 (composition vector), Fig. 4(f).
        """
        vectors = list(self.vectors)
        vectors[modality] = None if vector is None else as_float_vector(vector)
        return MultiVector(tuple(vectors))


class MultiVectorSet:
    """Column store of multi-vector objects: one matrix per modality.

    All matrices share the row count ``n``; row ``j`` across matrices forms
    the multi-vector of object ``j``.  The columns live in a pluggable
    :class:`~repro.store.VectorStore`; constructing from raw matrices wraps
    them in a :class:`~repro.store.DenseStore` (float32, bit-identical to
    the pre-store behaviour), while :meth:`from_store` attaches a
    compressed backend.
    """

    def __init__(
        self,
        matrices: Sequence[np.ndarray],
        normalize: bool = False,
        attributes: AttributeTable | dict | None = None,
        sparse: "SparseStore | None" = None,
        metrics: Sequence[str] | None = None,
    ):
        require(len(matrices) >= 1, "at least one modality matrix required")
        mats = [as_float_matrix(m, f"modality {i}") for i, m in enumerate(matrices)]
        n = mats[0].shape[0]
        for i, mat in enumerate(mats):
            require(
                mat.shape[0] == n,
                f"modality {i} has {mat.shape[0]} rows, expected {n}",
            )
        if normalize:
            mats = [normalize_rows(m) for m in mats]
        self._store: VectorStore = DenseStore(mats)
        self._attributes: AttributeTable | None = None
        self._sparse: "SparseStore | None" = None
        self._metrics: tuple[str, ...] | None = (
            None if metrics is None else validate_metrics(metrics, len(mats))
        )
        if attributes is not None:
            self.set_attributes(attributes)
        if sparse is not None:
            self.set_sparse(sparse)

    @classmethod
    def from_store(
        cls,
        store: VectorStore,
        attributes: AttributeTable | None = None,
        sparse: "SparseStore | None" = None,
        metrics: "tuple[str, ...] | None" = None,
    ) -> "MultiVectorSet":
        """Wrap an existing (possibly compressed) vector store."""
        out = cls.__new__(cls)
        out._store = store
        out._attributes = None
        out._sparse = None
        out._metrics = (
            None
            if metrics is None
            else validate_metrics(metrics, store.num_modalities)
        )
        if attributes is not None:
            out.set_attributes(attributes)
        if sparse is not None:
            out.set_sparse(sparse)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def store(self) -> VectorStore:
        """The backing store (scoring kernels, byte accounting, codecs)."""
        return self._store

    @property
    def attributes(self) -> AttributeTable | None:
        """The per-object attribute table filters compile against."""
        return self._attributes

    def set_attributes(
        self, attributes: AttributeTable | dict
    ) -> "MultiVectorSet":
        """Attach (or replace) the attribute table; returns ``self``.

        Accepts a ready :class:`~repro.core.attributes.AttributeTable` or
        a plain ``{field: values}`` mapping; column lengths must match
        the corpus row count.  Filtered queries
        (:class:`~repro.core.query.Query` with ``filter=``) require a
        table — the filter compiler raises an actionable error
        otherwise.
        """
        if not isinstance(attributes, AttributeTable):
            attributes = AttributeTable(attributes)
        require(
            attributes.n == self.n,
            f"attribute table covers {attributes.n} objects but the corpus "
            f"has {self.n}",
        )
        self._attributes = attributes
        return self

    @property
    def sparse(self) -> "SparseStore | None":
        """The optional sparse lexical plane (BM25/TF-IDF rows)."""
        return self._sparse

    def set_sparse(self, sparse: "SparseStore") -> "MultiVectorSet":
        """Attach (or replace) the sparse lexical plane; returns ``self``.

        The plane's row count must match the corpus — row ``j`` of the
        plane is object ``j``'s term frequencies, exactly as row ``j``
        of every dense modality matrix is its dense vector.  Hybrid
        queries (:class:`~repro.core.query.Query` with ``sparse=``)
        require a plane — the hybrid scorer raises an actionable error
        otherwise.
        """
        from repro.sparse.store import SparseStore

        require(
            isinstance(sparse, SparseStore),
            f"set_sparse needs a SparseStore, got "
            f"{type(sparse).__name__} — build one with "
            f"SparseStore.from_rows(...)",
        )
        require(
            sparse.n == self.n,
            f"sparse plane covers {sparse.n} objects but the corpus "
            f"has {self.n}",
        )
        self._sparse = sparse
        return self

    @property
    def metrics(self) -> tuple[str, ...]:
        """Registered scoring metric per dense modality (default ``ip``).

        Declared at construction (``metrics=``) and validated against
        the :mod:`~repro.core.registry`; ``ip`` everywhere reproduces
        the historical behaviour bit for bit.
        """
        if self._metrics is None:
            return ("ip",) * self.num_modalities
        return self._metrics

    @property
    def declared_metrics(self) -> tuple[str, ...] | None:
        """The explicit ``metrics=`` declaration (``None`` = default
        ``ip`` everywhere) — what store-rebuild seams must thread
        through to preserve the declaration."""
        return self._metrics

    @property
    def is_ip_only(self) -> bool:
        """True when every dense modality scores by inner product."""
        return self._metrics is None or all(
            m == "ip" for m in self._metrics
        )

    @property
    def is_compressed(self) -> bool:
        """True when the hot tier is not plain float32."""
        return self._store.kind != "none"

    @property
    def matrices(self) -> tuple[np.ndarray, ...]:
        """Per-modality float32 matrices.

        The stored arrays for a dense set; **decoded reconstructions**
        (materialised on every call) for compressed backends — hot paths
        must go through the store kernels instead.
        """
        return tuple(
            self._store.modality(i) for i in range(self._store.num_modalities)
        )

    @property
    def n(self) -> int:
        """Number of objects."""
        return self._store.n

    def __len__(self) -> int:
        return self.n

    @property
    def num_modalities(self) -> int:
        return self._store.num_modalities

    @property
    def dims(self) -> tuple[int, ...]:
        """Per-modality vector dimensionality."""
        return self._store.dims

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def row(self, index: int) -> MultiVector:
        """Multi-vector of object *index* (decoded on compressed stores)."""
        idx = np.asarray([index])
        return MultiVector(tuple(
            self._store.rows(i, idx)[0] for i in range(self.num_modalities)
        ))

    def modality(self, i: int) -> np.ndarray:
        """The full ``(n, d_i)`` matrix of modality *i* (decoded)."""
        return self._store.modality(i)

    def exact_modality(self, i: int) -> np.ndarray:
        """Full-precision matrix of modality *i*.

        The cold exact tier on compressed stores (rerank/compaction
        source); identical to :meth:`modality` on dense sets and on
        stores built with ``keep_exact=False``.
        """
        return self._store.exact_modality(i)

    def subset(self, ids: np.ndarray) -> "MultiVectorSet":
        """New set containing only the objects in *ids* (row order kept).

        The attribute table and the sparse plane, when present, are
        sliced alongside the vectors so filters and lexical scoring
        keep answering correctly on the subset (the plane keeps its
        stamped corpus-global statistics).
        """
        ids = np.asarray(ids)
        return MultiVectorSet.from_store(
            self._store.subset(ids),
            attributes=(
                None
                if self._attributes is None
                else self._attributes.subset(ids)
            ),
            sparse=(
                None if self._sparse is None else self._sparse.subset(ids)
            ),
            metrics=self._metrics,
        )

    def concatenated(self, scales: Sequence[float] | None = None) -> np.ndarray:
        """Horizontal concatenation, optionally scaling each block.

        With ``scales = ω`` this materialises the paper's concatenated
        vectors ``x̂ = [ω_0·ϕ_0(x_0), …]`` so that a single dot product
        equals the joint similarity (Lemma 1).  Decodes compressed
        backends — a build/compaction path, not a serving path.
        """
        mats = self.matrices
        if scales is None:
            return np.concatenate(mats, axis=1)
        require(
            len(scales) == self.num_modalities,
            "one scale per modality required",
        )
        blocks = [np.float32(s) * m for s, m in zip(scales, mats)]
        return np.concatenate(blocks, axis=1)
