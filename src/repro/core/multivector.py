"""Multi-vector representation of multimodal objects (paper §V).

A multimodal object with ``m`` modalities is represented by ``m``
L2-normalised vectors, one per modality, produced by pluggable encoders.
The library stores an object set column-wise — one ``(n, d_i)`` matrix per
modality — which keeps every similarity kernel a dense matrix product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import as_float_matrix, as_float_vector, require

__all__ = ["MultiVector", "MultiVectorSet", "normalize_rows"]


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Return *matrix* with each row scaled to unit L2 norm.

    Zero rows are left untouched (they encode "missing modality" and must
    keep an inner product of 0 with everything).
    """
    matrix = np.asarray(matrix, dtype=np.float32)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    safe = np.where(norms == 0.0, 1.0, norms)
    return (matrix / safe).astype(np.float32)


@dataclass(frozen=True)
class MultiVector:
    """Per-modality vectors for a single object or query.

    ``vectors[i] is None`` marks a missing modality (the paper's ``t < m``
    case, §VII-B): its weight is forced to zero during similarity
    computation.
    """

    vectors: tuple[np.ndarray | None, ...]

    @classmethod
    def from_arrays(cls, arrays: Iterable[np.ndarray | None]) -> "MultiVector":
        prepared: list[np.ndarray | None] = []
        for i, arr in enumerate(arrays):
            if arr is None:
                prepared.append(None)
            else:
                prepared.append(as_float_vector(arr, f"modality {i}"))
        return cls(tuple(prepared))

    @property
    def num_modalities(self) -> int:
        return len(self.vectors)

    @property
    def present(self) -> tuple[bool, ...]:
        """Flags marking which modalities carry a vector."""
        return tuple(v is not None for v in self.vectors)

    def replace(self, modality: int, vector: np.ndarray | None) -> "MultiVector":
        """Return a copy with one modality slot swapped out.

        Used to switch the target slot between Option 1 (unimodal
        embedding) and Option 2 (composition vector), Fig. 4(f).
        """
        vectors = list(self.vectors)
        vectors[modality] = None if vector is None else as_float_vector(vector)
        return MultiVector(tuple(vectors))


class MultiVectorSet:
    """Column store of multi-vector objects: one matrix per modality.

    All matrices share the row count ``n``; row ``j`` across matrices forms
    the multi-vector of object ``j``.
    """

    def __init__(self, matrices: Sequence[np.ndarray], normalize: bool = False):
        require(len(matrices) >= 1, "at least one modality matrix required")
        mats = [as_float_matrix(m, f"modality {i}") for i, m in enumerate(matrices)]
        n = mats[0].shape[0]
        for i, mat in enumerate(mats):
            require(
                mat.shape[0] == n,
                f"modality {i} has {mat.shape[0]} rows, expected {n}",
            )
        if normalize:
            mats = [normalize_rows(m) for m in mats]
        self._matrices = tuple(mats)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def matrices(self) -> tuple[np.ndarray, ...]:
        return self._matrices

    @property
    def n(self) -> int:
        """Number of objects."""
        return self._matrices[0].shape[0]

    def __len__(self) -> int:
        return self.n

    @property
    def num_modalities(self) -> int:
        return len(self._matrices)

    @property
    def dims(self) -> tuple[int, ...]:
        """Per-modality vector dimensionality."""
        return tuple(m.shape[1] for m in self._matrices)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def row(self, index: int) -> MultiVector:
        """Multi-vector of object *index*."""
        return MultiVector(tuple(m[index] for m in self._matrices))

    def modality(self, i: int) -> np.ndarray:
        """The full ``(n, d_i)`` matrix of modality *i*."""
        return self._matrices[i]

    def subset(self, ids: np.ndarray) -> "MultiVectorSet":
        """New set containing only the objects in *ids* (row order kept)."""
        ids = np.asarray(ids)
        return MultiVectorSet([m[ids] for m in self._matrices])

    def concatenated(self, scales: Sequence[float] | None = None) -> np.ndarray:
        """Horizontal concatenation, optionally scaling each block.

        With ``scales = ω`` this materialises the paper's concatenated
        vectors ``x̂ = [ω_0·ϕ_0(x_0), …]`` so that a single dot product
        equals the joint similarity (Lemma 1).
        """
        if scales is None:
            return np.concatenate(self._matrices, axis=1)
        require(
            len(scales) == self.num_modalities,
            "one scale per modality required",
        )
        blocks = [
            np.float32(s) * m for s, m in zip(scales, self._matrices)
        ]
        return np.concatenate(blocks, axis=1)
