"""Typed request surface: queries, search options, and attribute filters.

Every search entry point in the library — ``MUST.search`` /
``batch_search``, :class:`~repro.index.flat.FlatIndex`,
:class:`~repro.index.segments.SegmentedIndex`, the
:class:`~repro.index.executor.BatchExecutor`, and
:class:`~repro.service.MustService` — used to re-declare the same
growing keyword sprawl, where a misspelled ``early_terminatoin=`` was
silently swallowed.  This module replaces that surface with three frozen
dataclasses:

* :class:`Query` — one request: the multi-vector, plus optional
  per-query ``weights`` (Fig. 4(g) Option 2), a structured ``filter``,
  and a per-query ``k`` override.
* :class:`SearchOptions` — the execution plan shared by a wave of
  queries (``k``, ``l``, ``exact``, ``refine``, ``early_termination``,
  ``engine``, ``n_jobs``, ``rng``, ``check_monotone``), validated once
  at construction with errors that name the offending field.
  :meth:`SearchOptions.from_kwargs` is the legacy-shim gate: unknown
  keyword names raise immediately with a did-you-mean suggestion.
* a :class:`Filter` mini-DSL (:class:`Eq` / :class:`In` /
  :class:`Range` / :class:`And` / :class:`Or` / :class:`Not`) over the
  per-corpus :class:`~repro.core.attributes.AttributeTable`, compiling
  to a boolean candidate mask.  Exact paths intersect the mask into the
  §IX deletion bitsets (so filtered exact search is bit-identical to an
  unfiltered search over the post-filtered corpus); graph paths treat
  masked-out vertices as routable-but-not-reportable — the standard
  filtered-ANN construction.

Filters compose with ``&``, ``|`` and ``~``::

    flt = (Eq("category", "shoes") & Range("price", high=50.0)) | \
          In("brand", ("acme", "zenith"))
    result = must.query(Query(vector, filter=flt), SearchOptions(k=5))
"""

from __future__ import annotations

import abc
import difflib
from dataclasses import dataclass, fields, replace
from typing import Any, Iterable, Union

import numpy as np
import numpy.typing as npt

from repro.core.attributes import AttributeTable
from repro.core.multivector import MultiVector
from repro.core.registry import resolve_engine
from repro.core.weights import Weights
from repro.utils.validation import require

__all__ = [
    "Filter",
    "Eq",
    "In",
    "Range",
    "And",
    "Or",
    "Not",
    "Query",
    "SearchOptions",
    "RngLike",
    "as_query",
    "compile_filter",
    "unpack_query",
]

BoolMask = npt.NDArray[np.bool_]
#: everything the graph searchers accept as an init-draw seed.
RngLike = Union[int, None, np.random.SeedSequence, np.random.Generator]


# ----------------------------------------------------------------------
# Filter mini-DSL
# ----------------------------------------------------------------------
class Filter(abc.ABC):
    """A predicate over attribute columns, compiling to a boolean mask.

    ``mask(table)[j]`` is True when object ``j`` is admissible.  Clauses
    compose structurally (:class:`And` / :class:`Or` / :class:`Not`, or
    the ``&`` / ``|`` / ``~`` operators); compilation is a handful of
    vectorised column comparisons, cheap next to any scan or traversal.
    """

    @abc.abstractmethod
    def mask(self, table: AttributeTable) -> BoolMask:
        """Admissibility of every object under this clause."""

    def __and__(self, other: "Filter") -> "And":
        return And(self, other)

    def __or__(self, other: "Filter") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Eq(Filter):
    """``column == value``."""

    field: str
    value: object

    def mask(self, table: AttributeTable) -> BoolMask:
        return np.asarray(table.column(self.field) == self.value, dtype=bool)


@dataclass(frozen=True, init=False)
class In(Filter):
    """``column ∈ values`` (membership over an explicit set)."""

    field: str
    values: tuple[object, ...]

    def __init__(self, field: str, values: Iterable[object]) -> None:
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "values", tuple(values))
        require(len(self.values) >= 1, "In() needs at least one value")

    def mask(self, table: AttributeTable) -> BoolMask:
        return np.asarray(
            np.isin(table.column(self.field), np.asarray(self.values)),
            dtype=bool,
        )


@dataclass(frozen=True)
class Range(Filter):
    """``low ≤ column ≤ high`` (either bound optional, both inclusive)."""

    field: str
    low: object = None
    high: object = None

    def __post_init__(self) -> None:
        require(
            self.low is not None or self.high is not None,
            f"Range({self.field!r}) needs at least one of low=/high=",
        )

    def mask(self, table: AttributeTable) -> BoolMask:
        column = table.column(self.field)
        out = np.ones(column.shape[0], dtype=bool)
        if self.low is not None:
            out &= column >= self.low
        if self.high is not None:
            out &= column <= self.high
        return out


@dataclass(frozen=True, init=False)
class And(Filter):
    """Conjunction of one or more clauses."""

    clauses: tuple[Filter, ...]

    def __init__(self, *clauses: Filter) -> None:
        object.__setattr__(self, "clauses", tuple(clauses))
        require(len(self.clauses) >= 1, "And() needs at least one clause")

    def mask(self, table: AttributeTable) -> BoolMask:
        out = self.clauses[0].mask(table)
        for clause in self.clauses[1:]:
            out = out & clause.mask(table)
        return out


@dataclass(frozen=True, init=False)
class Or(Filter):
    """Disjunction of one or more clauses."""

    clauses: tuple[Filter, ...]

    def __init__(self, *clauses: Filter) -> None:
        object.__setattr__(self, "clauses", tuple(clauses))
        require(len(self.clauses) >= 1, "Or() needs at least one clause")

    def mask(self, table: AttributeTable) -> BoolMask:
        out = self.clauses[0].mask(table)
        for clause in self.clauses[1:]:
            out = out | clause.mask(table)
        return out


@dataclass(frozen=True)
class Not(Filter):
    """Negation of a clause."""

    clause: Filter

    def mask(self, table: AttributeTable) -> BoolMask:
        return ~self.clause.mask(table)


#: per-wave filter-compilation cache: (filter id, attribute-table id) →
#: mask.  Keyed on both identities so one memo can serve every segment
#: of a cross-segment wave without mask-length collisions.
FilterMemo = dict[tuple[int, int], BoolMask]


def compile_filter(
    flt: Filter,
    attributes: "AttributeTable | None",
    context: str = "corpus",
    memo: "FilterMemo | None" = None,
) -> BoolMask:
    """Compile *flt* against a corpus slice's attribute table.

    Raises an actionable error when the slice carries no attributes at
    all (the caller names the slice via *context*, e.g. which segment);
    unknown fields raise from :meth:`AttributeTable.column` with the
    available field list.

    *memo* lets a batch entry point compile each shared filter once per
    corpus slice instead of once per query — batches typically reuse
    one ``Filter`` instance across every request in the wave.  Sharing
    a memo across pool threads is safe: dict reads/writes are atomic
    and a race merely recomputes the same mask.
    """
    key = (id(flt), id(attributes))
    if memo is not None:
        cached = memo.get(key)
        if cached is not None:
            return cached
    if attributes is None:
        raise ValueError(
            f"query has a filter but the {context} has no attribute table — "
            f"attach one with MultiVectorSet.set_attributes(...) (inserted "
            f"objects must carry the same fields as the corpus)"
        )
    mask = flt.mask(attributes)
    if memo is not None:
        memo[key] = mask
    return mask


# ----------------------------------------------------------------------
# Query
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Query:
    """One typed search request.

    ``vector`` is the multi-vector (missing modalities allowed, §VII-B);
    ``weights`` overrides the index weights for this query only;
    ``filter`` restricts admissible answers via the corpus attribute
    table; ``k`` overrides the wave-level ``SearchOptions.k`` for this
    query only.

    ``sparse`` optionally adds a lexical component — a
    :class:`~repro.sparse.kernels.SparseQuery`, a ``{term: weight}``
    mapping, or an ``(indices, values)`` pair, normalised at
    construction — scored against the corpus's sparse plane and mixed
    into the joint similarity as ``ω_s²·lex`` with
    ``ω_s = sparse_weight`` (squared, mirroring the dense ω²
    convention).
    """

    vector: MultiVector
    weights: "Weights | None" = None
    filter: "Filter | None" = None
    k: "int | None" = None
    sparse: Any = None
    sparse_weight: float = 1.0

    def __post_init__(self) -> None:
        require(
            isinstance(self.vector, MultiVector),
            f"Query.vector must be a MultiVector, got "
            f"{type(self.vector).__name__} — wrap per-modality arrays with "
            f"MultiVector.from_arrays(...)",
        )
        require(
            self.weights is None or isinstance(self.weights, Weights),
            "Query.weights must be a Weights instance or None",
        )
        require(
            self.filter is None or isinstance(self.filter, Filter),
            "Query.filter must be a Filter clause or None",
        )
        require(
            self.k is None or (isinstance(self.k, int) and self.k >= 1),
            f"Query.k must be a positive int or None, got {self.k!r}",
        )
        if self.sparse is not None:
            # Normalise once at construction; dataclasses.replace()
            # re-runs this, where as_sparse_query is the identity on an
            # already-canonical SparseQuery.
            from repro.sparse.kernels import as_sparse_query

            object.__setattr__(self, "sparse", as_sparse_query(self.sparse))
        require(
            isinstance(self.sparse_weight, (int, float))
            and np.isfinite(self.sparse_weight)
            and float(self.sparse_weight) >= 0.0,
            f"Query.sparse_weight must be a finite non-negative number, "
            f"got {self.sparse_weight!r}",
        )

    def resolve_k(self, default: int) -> int:
        """This query's effective ``k`` under a wave-level default."""
        return default if self.k is None else self.k

    def resolve_weights(self, default: "Weights | None") -> "Weights | None":
        """This query's effective weight override."""
        return default if self.weights is None else self.weights


def as_query(query: "Query | MultiVector") -> Query:
    """Coerce a raw :class:`MultiVector` into a plain :class:`Query`."""
    if isinstance(query, Query):
        return query
    return Query(vector=query)


def unpack_query(
    query: "Query | MultiVector",
    k: int,
    weights: "Weights | None",
    attributes: "AttributeTable | None",
    context: str = "corpus",
    memo: "FilterMemo | None" = None,
) -> "tuple[MultiVector, int, Weights | None, BoolMask | None]":
    """Resolve a possibly-typed query against wave-level defaults.

    Returns ``(vector, k, weights, mask)`` where ``mask`` is the
    compiled filter (None when the query carries no filter).  Raw
    :class:`MultiVector` inputs pass straight through — the seam that
    lets every search layer accept both representations with one line.
    *memo* forwards to :func:`compile_filter` so batch callers compile
    each shared filter once.
    """
    q = as_query(query)
    if q.filter is None:
        mask = None
    else:
        mask = compile_filter(q.filter, attributes, context, memo=memo)
    return q.vector, q.resolve_k(k), q.resolve_weights(weights), mask


# ----------------------------------------------------------------------
# SearchOptions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchOptions:
    """The validated execution plan for one search or one wave of them.

    Construct directly (field errors name the field) or through
    :meth:`from_kwargs`, which additionally rejects unknown keyword
    names — the gate every legacy ``**search_kwargs`` entry point now
    funnels through, so a typo'd ``early_terminatoin=`` fails loudly
    instead of being silently dropped.

    ``collection`` names the target workspace when the request is
    served by a multi-tenant :class:`~repro.service.MustService`
    (``None`` means the service's default collection).  A standalone
    :class:`~repro.core.framework.MUST` *is* a single collection, so
    the field is ignored on direct queries — routing is a service-level
    concern.
    """

    k: int = 10
    l: int = 100
    exact: bool = False
    refine: "int | None" = None
    early_termination: bool = False
    engine: str = "auto"
    n_jobs: int = 1
    rng: RngLike = 0
    check_monotone: bool = False
    collection: "str | None" = None
    sparse_engine: str = "auto"

    def __post_init__(self) -> None:
        require(
            isinstance(self.k, int) and self.k >= 1,
            f"SearchOptions.k must be a positive int, got {self.k!r}",
        )
        require(
            isinstance(self.l, int) and self.l >= 1,
            f"SearchOptions.l must be a positive int, got {self.l!r}",
        )
        # l >= k is a *graph-path* contract (exact scans ignore l); the
        # searcher enforces it, keeping legacy exact calls with k > l
        # valid.
        require(
            isinstance(self.exact, bool),
            f"SearchOptions.exact must be a bool, got {self.exact!r}",
        )
        require(
            self.refine is None
            or (isinstance(self.refine, int) and self.refine >= 1),
            f"SearchOptions.refine must be an int >= 1 or None, got "
            f"{self.refine!r}",
        )
        require(
            isinstance(self.early_termination, bool),
            f"SearchOptions.early_termination must be a bool, got "
            f"{self.early_termination!r}",
        )
        # Engine names resolve through the metric/engine registry, so a
        # typo'd engine= fails here with a did-you-mean instead of deep
        # inside a searcher.
        try:
            resolve_engine(self.engine, kind="graph")
        except ValueError as exc:
            raise ValueError(f"SearchOptions.engine: {exc}") from None
        try:
            resolve_engine(self.sparse_engine, kind="sparse")
        except ValueError as exc:
            raise ValueError(f"SearchOptions.sparse_engine: {exc}") from None
        require(
            isinstance(self.n_jobs, int),
            f"SearchOptions.n_jobs must be an int (scikit-learn "
            f"convention: 1 sequential, -1 all cores), got {self.n_jobs!r}",
        )
        require(
            isinstance(self.check_monotone, bool),
            f"SearchOptions.check_monotone must be a bool, got "
            f"{self.check_monotone!r}",
        )
        require(
            self.collection is None
            or (isinstance(self.collection, str) and self.collection),
            f"SearchOptions.collection must be a non-empty str or None, "
            f"got {self.collection!r}",
        )

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    @classmethod
    def validate_names(cls, names: Iterable[str], extra: tuple[str, ...] = ()) -> None:
        """Reject unknown option names with a did-you-mean hint.

        *extra* lists additional names a particular entry point accepts
        (e.g. the legacy ``weights=``, which lives on :class:`Query` in
        the typed surface).  This is the gate every legacy
        ``**search_kwargs`` entry point funnels through, so a typo'd
        ``early_terminatoin=`` fails loudly instead of being swallowed.
        """
        known = cls.field_names() + tuple(extra)
        unknown = [name for name in names if name not in known]
        if not unknown:
            return
        hints = []
        for name in unknown:
            close = difflib.get_close_matches(name, known, n=1)
            if close:
                hints.append(f"{name!r} (did you mean {close[0]!r}?)")
            else:
                hints.append(f"{name!r}")
        raise TypeError(
            f"unknown search option{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(hints)}; valid options: {', '.join(known)}"
        )

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "SearchOptions":
        """Build options from loose keywords, rejecting unknown names
        (see :meth:`validate_names`) and out-of-range values alike."""
        cls.validate_names(kwargs)
        return cls(**kwargs)

    def resolve_engine(self, batch: bool) -> str:
        """Concrete graph engine for this plan.

        ``"auto"`` (the default) picks the per-query heap engine for a
        single query — preserving the historical single-query results
        bit for bit — and the lockstep wave engine for a batch, where
        per-query beam loops are the measured throughput trap (the
        thread pool gives *negative* speedup on GIL-bound hops).  An
        explicit engine name always wins, including ``"wave"`` on a
        single query (a batch of one) and ``"heap"``/``"paper"`` on
        batches (the per-query oracle the parity tests pin against).
        """
        if self.engine != "auto":
            return self.engine
        return "wave" if batch else "heap"

    def resolve(self, n: int) -> "SearchOptions":
        """Clamp the result-set size to the corpus: ``l = min(l, n)``.

        The one place the ``l`` clamp now lives — applied to the
        single-graph *and* the segmented path, which historically
        disagreed (only the former clamped).  ``l`` never drops below
        ``k``, so a corpus smaller than ``k`` searches with ``l = k``
        and simply returns every admissible object (the historical
        unclamped-``l`` error for that corner is gone).
        """
        clamped = max(min(self.l, int(n)), self.k)
        if clamped == self.l:
            return self
        return replace(self, l=clamped)

    def updated(self, **changes: Any) -> "SearchOptions":
        """A copy with *changes* applied (re-validated)."""
        return replace(self, **changes)

    def to_kwargs(self, exclude: tuple[str, ...] = ()) -> dict[str, Any]:
        """Field → value mapping for legacy ``**kwargs`` call sites.

        The one derivation the service plan and the snapshot read path
        share, so a new field can never be silently dropped by a
        hand-written copy of the schema.
        """
        return {
            name: getattr(self, name)
            for name in self.field_names()
            if name not in exclude
        }
