"""Declarative metric/engine registry — the pluggability seam.

Historically the scoring engine assumed inner-product over dense float
planes: every kernel, every searcher, every bench hardwired ``q @ M.T``.
This module makes the two axes of that assumption *declarative*, in the
spirit of openTSNE's ``KNNIndex``/``VALID_METRICS`` pattern:

* **metrics** — how a query is scored against stored rows.  Dense
  modalities register ``ip`` (the paper's kernel; the default and the
  bit-identical legacy path), ``cosine`` and ``l2``; the sparse lexical
  modality registers ``bm25`` and ``tfidf``.
* **engines** — which search procedure produces candidates.  Dense
  modalities are served by the graph engines (``auto``/``heap``/
  ``paper``/``wave``) or the ``exact`` scan; the sparse modality by the
  ``inverted`` posting-list engine or its brute-force ``exact`` oracle.

Both tables are validated *once, up front* — at ``MUST(...)`` /
``SearchOptions`` construction — with did-you-mean errors mirroring
:meth:`~repro.core.query.SearchOptions.validate_names`, so a typo'd
``metric="cosin"`` fails at the constructor instead of deep inside a
scorer.

Bit-identity contract: when a dense modality's registered metric is
``ip`` (the default), every scoring path takes the exact historical code
route — the registry resolves to a sentinel the callers interpret as
"legacy path", so pre-registry results are preserved bit for bit.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.validation import require

__all__ = [
    "MetricSpec",
    "EngineSpec",
    "METRICS",
    "ENGINES",
    "DENSE_METRICS",
    "SPARSE_METRICS",
    "DENSE_ENGINES",
    "SPARSE_ENGINES",
    "resolve_metric",
    "resolve_engine",
    "validate_metrics",
    "dense_score_rows",
]


@dataclass(frozen=True)
class MetricSpec:
    """One registered scoring metric.

    ``kind`` names the modality family the metric applies to (``dense``
    or ``sparse``); ``description`` feeds error messages and docs.
    """

    name: str
    kind: str
    description: str


@dataclass(frozen=True)
class EngineSpec:
    """One registered search engine (candidate-generation procedure)."""

    name: str
    kind: str
    description: str


#: metric name → spec.  ``ip`` is the default dense metric and the only
#: one the compressed stores and the concat fast path support — the
#: others score through the row-wise float64 fallback kernels.
METRICS: dict[str, MetricSpec] = {
    "ip": MetricSpec("ip", "dense", "inner product (the paper's kernel)"),
    "cosine": MetricSpec(
        "cosine", "dense", "angular similarity (IP over normalised rows)"
    ),
    "l2": MetricSpec(
        "l2", "dense", "negative squared Euclidean distance"
    ),
    "bm25": MetricSpec(
        "bm25", "sparse", "Okapi BM25 over term-frequency rows"
    ),
    "tfidf": MetricSpec(
        "tfidf", "sparse", "TF-IDF dot product over term-frequency rows"
    ),
}

#: engine name → spec.  The dense names match the historical
#: ``SearchOptions.engine`` values; the sparse names drive the lexical
#: candidate generator (``SearchOptions.sparse_engine``).
ENGINES: dict[str, EngineSpec] = {
    "auto": EngineSpec(
        "auto", "dense", "heap for single queries, wave for batches"
    ),
    "heap": EngineSpec("heap", "dense", "per-query two-heap beam search"),
    "paper": EngineSpec("paper", "dense", "Algorithm 2, literal"),
    "wave": EngineSpec("wave", "dense", "lockstep batched traversal"),
    "exact": EngineSpec("exact", "dense", "full scan (MUST--)"),
    "inverted": EngineSpec(
        "inverted", "sparse", "posting-list scatter-add over query terms"
    ),
    "sparse-auto": EngineSpec(
        "sparse-auto", "sparse", "inverted unless overridden"
    ),
    "sparse-exact": EngineSpec(
        "sparse-exact", "sparse", "brute-force per-term scan (the oracle)"
    ),
}

DENSE_METRICS: tuple[str, ...] = tuple(
    name for name, spec in METRICS.items() if spec.kind == "dense"
)
SPARSE_METRICS: tuple[str, ...] = tuple(
    name for name, spec in METRICS.items() if spec.kind == "sparse"
)
DENSE_ENGINES: tuple[str, ...] = tuple(
    name for name, spec in ENGINES.items() if spec.kind == "dense"
)
#: the public ``SearchOptions.sparse_engine`` values.
SPARSE_ENGINES: tuple[str, ...] = ("auto", "inverted", "exact")


def _did_you_mean(name: str, known: tuple[str, ...], what: str) -> str:
    close = difflib.get_close_matches(name, known, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    return (
        f"unknown {what} {name!r}{hint}; registered {what}s: "
        f"{', '.join(known)}"
    )


def resolve_metric(name: str, kind: str | None = None) -> MetricSpec:
    """Look up a metric by name, with a did-you-mean error on a typo.

    *kind* optionally restricts the lookup to one modality family so a
    dense modality declared with ``metric="bm25"`` fails with the dense
    candidate list, not a confusing pass.
    """
    known = tuple(
        n for n, spec in METRICS.items()
        if kind is None or spec.kind == kind
    )
    if name not in known:
        what = f"{kind} metric" if kind else "metric"
        raise ValueError(_did_you_mean(str(name), known, what))
    return METRICS[name]


def resolve_engine(name: str, kind: str | None = None) -> EngineSpec:
    """Look up an engine by name, with a did-you-mean error on a typo.

    ``kind="sparse"`` validates against the public
    :data:`SPARSE_ENGINES` names (``auto`` resolves to ``inverted``);
    ``kind="graph"`` restricts to the graph traversal engines — the
    legal :attr:`~repro.core.query.SearchOptions.engine` values, where
    ``exact`` is a separate flag rather than an engine name.
    """
    if kind == "sparse":
        if name not in SPARSE_ENGINES:
            raise ValueError(
                _did_you_mean(str(name), SPARSE_ENGINES, "sparse engine")
            )
        resolved = "inverted" if name == "auto" else name
        return ENGINES["inverted" if resolved == "inverted" else "sparse-exact"]
    if kind == "graph":
        known = tuple(n for n in DENSE_ENGINES if n != "exact")
        if name not in known:
            raise ValueError(_did_you_mean(str(name), known, "graph engine"))
        return ENGINES[name]
    known = tuple(
        n for n, spec in ENGINES.items()
        if (kind is None or spec.kind == kind) and not n.startswith("sparse-")
    )
    if name not in known:
        what = f"{kind} engine" if kind else "engine"
        raise ValueError(_did_you_mean(str(name), known, what))
    return ENGINES[name]


def validate_metrics(
    metrics: "tuple[str, ...] | list[str]", num_modalities: int
) -> tuple[str, ...]:
    """Validate a per-dense-modality metric declaration.

    Returns the normalised tuple.  One name per modality; every name
    must be a registered *dense* metric (the sparse metrics live on the
    sparse plane, not in this list).
    """
    names = tuple(str(m) for m in metrics)
    require(
        len(names) == num_modalities,
        f"metrics declares {len(names)} entries but the object set has "
        f"{num_modalities} dense modalities — one metric name per modality",
    )
    for name in names:
        resolve_metric(name, kind="dense")
    return names


# ----------------------------------------------------------------------
# Dense fallback kernels (non-IP metrics)
# ----------------------------------------------------------------------
def _score_cosine(query: np.ndarray, rows: np.ndarray) -> np.ndarray:
    ips = np.einsum("ij,j->i", rows, query, dtype=np.float64)
    row_norms = np.sqrt(
        np.einsum("ij,ij->i", rows, rows, dtype=np.float64)
    )
    q_norm = float(np.sqrt(np.einsum("i,i->", query, query)))
    denom = row_norms * q_norm
    safe = np.where(denom == 0.0, 1.0, denom)
    return np.asarray(ips / safe, dtype=np.float64)


def _score_l2(query: np.ndarray, rows: np.ndarray) -> np.ndarray:
    diff = rows - query
    return -np.einsum("ij,ij->i", diff, diff, dtype=np.float64)


_DENSE_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "cosine": _score_cosine,
    "l2": _score_l2,
}


def dense_score_rows(
    metric: str, query: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Row-independent float64 scores of *query* against *rows*.

    The fallback kernel the :class:`~repro.core.space.JointSpace`
    scoring routes use for non-IP dense metrics.  Each row is reduced
    independently in float64 (einsum upcasts per element), so — like
    :meth:`JointSpace.query_ids_stable` — a row's score never depends
    on which other rows share the matrix.  ``ip`` deliberately has no
    entry here: IP takes the historical (bit-identical) code path, never
    this one.
    """
    kernel = _DENSE_KERNELS.get(metric)
    if kernel is None:
        raise ValueError(
            f"metric {metric!r} has no dense fallback kernel — 'ip' is "
            f"scored on the legacy path and sparse metrics are scored by "
            f"the sparse plane"
        )
    query64 = np.asarray(query, dtype=np.float64)
    rows64 = np.asarray(rows, dtype=np.float64)
    return kernel(query64, rows64)
