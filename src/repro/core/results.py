"""Search result containers and instrumentation counters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["SearchStats", "SearchResult"]


@dataclass
class SearchStats:
    """Work counters for one search (or an aggregate over a batch).

    ``modality_evals`` counts per-modality vector similarity evaluations —
    the unit the multi-vector computation optimisation (Lemma 4) saves.
    A full joint similarity over ``m`` modalities costs ``m`` modality
    evaluations; an early-terminated one costs fewer.

    ``segments_probed`` counts how many index segments contributed to the
    answer: 0 for a classic single-graph search, ≥1 when the query went
    through a :class:`~repro.index.segments.SegmentedIndex` (one per
    sealed/delta segment probed; merging per-segment stats sums it, so a
    batch aggregate reports total probes across the batch).

    ``reranked`` counts candidates re-scored at full precision by the
    two-stage ``refine=`` pipeline (0 when rerank is off).

    ``waves`` and ``frontier_sizes`` are batch-level counters of the
    lockstep :func:`~repro.index.graph_wave.graph_wave_search` engine:
    one wave advances every active query by up to
    ``expansions_per_wave`` expansions, and each wave's frontier size
    is the number of stacked candidates it scored in one batched call.
    They stay 0/empty on per-query engines; merging sums waves and
    concatenates the frontier trace.
    """

    visited_vertices: int = 0
    hops: int = 0
    joint_evals: int = 0
    modality_evals: int = 0
    pruned_early: int = 0
    segments_probed: int = 0
    reranked: int = 0
    waves: int = 0
    frontier_sizes: list[int] = field(default_factory=list)

    def merge(self, other: "SearchStats") -> None:
        """Accumulate *other* into self (for batch aggregation)."""
        self.visited_vertices += other.visited_vertices
        self.hops += other.hops
        self.joint_evals += other.joint_evals
        self.modality_evals += other.modality_evals
        self.pruned_early += other.pruned_early
        self.segments_probed += other.segments_probed
        self.reranked += other.reranked
        self.waves += other.waves
        if other.frontier_sizes:
            self.frontier_sizes = self.frontier_sizes + other.frontier_sizes

    @classmethod
    def aggregate(cls, stats: "Iterable[SearchStats]") -> "SearchStats":
        """Sum of many per-query counters (one batch's total work)."""
        total = cls()
        for s in stats:
            total.merge(s)
        return total


@dataclass
class SearchResult:
    """Ranked answer to one query: best-first ids with joint similarities."""

    ids: np.ndarray
    similarities: np.ndarray
    stats: SearchStats = field(default_factory=SearchStats)

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.similarities = np.asarray(self.similarities, dtype=np.float64)

    def __len__(self) -> int:
        return int(self.ids.size)

    def top(self, k: int) -> "SearchResult":
        """First *k* entries (results are already best-first)."""
        return SearchResult(self.ids[:k], self.similarities[:k], self.stats)
