"""Joint similarity space over multi-vector objects (Lemmas 1 and 4).

:class:`JointSpace` binds a :class:`~repro.core.multivector.MultiVectorSet`
to a :class:`~repro.core.weights.Weights` instance and exposes every
similarity kernel the indexes and searchers need:

* object↔object joint similarity (used during graph construction),
* query→corpus joint similarity, dense or restricted to an id subset,
* the **incremental multi-vector computation** of §VII-B: per-modality
  distances are accumulated and an object is discarded as soon as its
  partial-IP upper bound drops to the pruning threshold (Lemma 4 guarantees
  this is lossless).

All vectors are assumed L2-normalised, which gives the identity the paper
uses in Eq. 8 (generalised to arbitrary weight totals ``S = Σ ω²``)::

    IP(q̂, û) = S − ½ · Σ_i ω_i² · ‖q_i − u_i‖²

Scanning modalities in descending-weight order maximises early pruning and
— by Lemma 4 — never changes any returned result.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.multivector import MultiVector, MultiVectorSet
from repro.core.registry import dense_score_rows
from repro.core.results import SearchStats
from repro.core.weights import Weights
from repro.store import ModalityKernel, VectorStore
from repro.utils.validation import require

__all__ = ["JointSpace"]


def _f64_cache_limit_bytes() -> int:
    """Cap on the lazy float64 deterministic-scan cache.

    The cache doubles corpus memory, so it is only kept when the float64
    copies fit under ``REPRO_F64_CACHE_MB`` (default 256 MiB); beyond
    that the stable kernel recomputes per call instead of caching.
    """
    return int(os.environ.get("REPRO_F64_CACHE_MB", "256")) * (1 << 20)


def _mmap_backed(arr: np.ndarray) -> bool:
    """True when *arr* is (a view over) a ``np.memmap``.

    Such matrices are deliberately never promoted into the float64
    cache: the conversion would silently page the whole mapping in and
    pin ``2×`` its bytes as process-resident copies, defeating the
    beyond-RAM layout.
    """
    base: object = arr
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = getattr(base, "base", None)
    return False


class JointSpace:
    """Similarity oracle for one object set under one weight configuration."""

    def __init__(self, vectors: MultiVectorSet, weights: Weights):
        require(
            weights.num_modalities == vectors.num_modalities,
            f"weights cover {weights.num_modalities} modalities but the "
            f"object set has {vectors.num_modalities}",
        )
        self._vectors = vectors
        self._weights = weights
        self._concat: np.ndarray | None = None  # lazy ω-scaled concatenation
        #: lazy float64 copies of the modality matrices, built on the
        #: first deterministic scan (:meth:`query_ids_stable`) — trades
        #: memory for not re-converting the corpus on every exact query.
        #: Capped by ``REPRO_F64_CACHE_MB`` and released by
        #: :meth:`drop_caches`.
        self._f64: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Introspection / derivation
    # ------------------------------------------------------------------
    @property
    def vectors(self) -> MultiVectorSet:
        return self._vectors

    @property
    def weights(self) -> Weights:
        return self._weights

    @property
    def store(self) -> VectorStore:
        """The backing vector store (hot representation + kernels)."""
        return self._vectors.store

    @property
    def is_compressed(self) -> bool:
        """True when the corpus side of every kernel is compressed."""
        return self._vectors.is_compressed

    def drop_caches(self) -> None:
        """Release lazily materialised derived state.

        Drops the ω-scaled concatenation and the float64 scan cache —
        together they can double (or worse) the resident corpus bytes.
        Called by :meth:`MUST.compact` and safe at any time: both caches
        rebuild on demand.
        """
        self._concat = None
        self._f64 = None

    @property
    def n(self) -> int:
        return self._vectors.n

    @property
    def num_modalities(self) -> int:
        return self._vectors.num_modalities

    def with_weights(self, weights: Weights) -> "JointSpace":
        """Same object set under different weights (user override path)."""
        return JointSpace(self._vectors, weights)

    # ------------------------------------------------------------------
    # Object ↔ object kernels (index construction)
    # ------------------------------------------------------------------
    @property
    def concatenated(self) -> np.ndarray:
        """The ω-scaled concatenated matrix; one dot product = Lemma 1.

        Reads the cache slot once into a local so lock-free readers (the
        serving layer's snapshot waves) stay safe against a concurrent
        :meth:`drop_caches`: they either see the old matrix — same
        values, the vectors never change — or rebuild it, never ``None``.
        """
        cached = self._concat
        if cached is None:
            cached = self._vectors.concatenated(self._weights.omegas)
            self._concat = cached
        return cached

    def pair(self, i: int, j: int) -> float:
        """Joint similarity of objects *i* and *j*."""
        c = self.concatenated
        return float(c[i] @ c[j])

    def block(self, ids_a: np.ndarray, ids_b: np.ndarray) -> np.ndarray:
        """Joint-similarity matrix between two id lists, shape (|a|, |b|)."""
        c = self.concatenated
        return c[np.asarray(ids_a)] @ c[np.asarray(ids_b)].T

    def rows_vs_one(self, ids: np.ndarray, j: int) -> np.ndarray:
        """Joint similarity of each object in *ids* against object *j*."""
        c = self.concatenated
        return c[np.asarray(ids)] @ c[j]

    def centroid_id(self) -> int:
        """Vertex nearest the dataset centroid (seed preprocessing, ④)."""
        c = self.concatenated
        centroid = c.mean(axis=0)
        return int(np.argmax(c @ centroid))

    # ------------------------------------------------------------------
    # Query → corpus kernels
    # ------------------------------------------------------------------
    def _effective_weights(
        self, query: MultiVector, weights: Weights | None
    ) -> np.ndarray:
        w = weights if weights is not None else self._weights
        return w.masked(query).squared

    def effective_squared_weights(
        self, query: MultiVector, weights: Weights | None = None
    ) -> np.ndarray:
        """``ω²`` per modality after masking modalities *query* lacks."""
        return self._effective_weights(query, weights)

    def concat_query(
        self, query: MultiVector, weights: Weights | None = None
    ) -> np.ndarray | None:
        """Query vector against :attr:`concatenated`, or None if impossible.

        Rescales each present block by ``w2_i / ω_i`` so that a single dot
        product with the ω-scaled concatenated matrix equals the joint
        similarity under the *effective* weights — the searcher's fast
        path (one gather + one GEMV per hop).  Returns ``None`` when the
        query needs a modality the index weights zeroed out (``ω_i = 0``),
        in which case callers fall back to per-modality evaluation — and
        on compressed stores, where materialising (and caching) a float32
        concatenation would silently undo the compression; scoring then
        runs through the store's asymmetric per-modality kernels.
        """
        if self.is_compressed or not self._vectors.is_ip_only:
            # Non-IP metrics have no concatenation identity (Lemma 1 is
            # an inner-product fact); they score through the registry's
            # row-wise fallback kernels instead.
            return None
        w2 = self._effective_weights(query, weights)
        omegas = self._weights.omegas
        blocks: list[np.ndarray] = []
        for i, q in enumerate(query.vectors):
            dim = self._vectors.dims[i]
            if q is None or w2[i] == 0.0:
                blocks.append(np.zeros(dim, dtype=np.float32))
            elif omegas[i] == 0.0:
                return None
            else:
                blocks.append((w2[i] / omegas[i]) * q.astype(np.float32))
        return np.concatenate(blocks).astype(np.float32)

    def query_kernels(
        self, query: MultiVector, weights: Weights | None = None
    ) -> list[tuple[int, float, ModalityKernel]]:
        """Per-modality asymmetric kernels for the active modalities.

        One ``(modality, w2_i, kernel)`` triple per modality the query
        carries with a positive effective weight.  Kernel construction
        pays any per-query preprocessing (PQ ADC lookup tables,
        scalar-quant rescale) once; a
        :class:`~repro.index.scoring.Scorer` holds them for its whole
        search.
        """
        require(
            self._vectors.is_ip_only,
            f"graph traversal and compressed scoring require metric 'ip' "
            f"on every dense modality (declared: "
            f"{self._vectors.metrics}) — use exact search for "
            f"cosine/l2 modalities",
        )
        w2 = self._effective_weights(query, weights)
        store = self.store
        return [
            (i, float(w2[i]), store.query_kernel(i, q.astype(np.float32)))
            for i, q in enumerate(query.vectors)
            if q is not None and w2[i] > 0.0
        ]

    def query_all(
        self, query: MultiVector, weights: Weights | None = None
    ) -> np.ndarray:
        """Joint similarity of *query* against every object (brute force).

        Scores through the store's asymmetric kernels: exact BLAS on the
        dense backend (bit-identical to the historical matrix path),
        uncompressed-query-vs-codes elsewhere.
        """
        out = np.zeros(self.n, dtype=np.float64)
        if not self._vectors.is_ip_only:
            w2 = self._effective_weights(query, weights)
            metrics = self._vectors.metrics
            store = self.store
            for i, q in enumerate(query.vectors):
                if q is None or w2[i] == 0.0:
                    continue
                if metrics[i] == "ip":
                    kernel = store.query_kernel(i, q.astype(np.float32))
                    out += w2[i] * kernel.all().astype(np.float64)
                else:
                    out += w2[i] * dense_score_rows(
                        metrics[i], q, store.modality(i)
                    )
            return out
        for _, w2_i, kernel in self.query_kernels(query, weights):
            out += w2_i * kernel.all().astype(np.float64)
        return out

    def query_ids(
        self,
        query: MultiVector,
        ids: np.ndarray,
        weights: Weights | None = None,
        stats: SearchStats | None = None,
    ) -> np.ndarray:
        """Joint similarity against the objects in *ids* (no pruning)."""
        ids = np.asarray(ids)
        out = np.zeros(ids.shape[0], dtype=np.float64)
        if not self._vectors.is_ip_only:
            w2 = self._effective_weights(query, weights)
            metrics = self._vectors.metrics
            store = self.store
            active = 0
            for i, q in enumerate(query.vectors):
                if q is None or w2[i] == 0.0:
                    continue
                active += 1
                if metrics[i] == "ip":
                    kernel = store.query_kernel(i, q.astype(np.float32))
                    out += w2[i] * kernel.ids(ids).astype(np.float64)
                else:
                    out += w2[i] * dense_score_rows(
                        metrics[i], q, store.rows(i, ids)
                    )
            if stats is not None:
                stats.joint_evals += int(ids.shape[0])
                stats.modality_evals += int(ids.shape[0]) * active
            return out
        kernels = self.query_kernels(query, weights)
        for _, w2_i, kernel in kernels:
            out += w2_i * kernel.ids(ids).astype(np.float64)
        if stats is not None:
            stats.joint_evals += int(ids.shape[0])
            stats.modality_evals += int(ids.shape[0]) * len(kernels)
        return out

    def query_ids_exact(
        self,
        query: MultiVector,
        ids: np.ndarray | None = None,
        weights: Weights | None = None,
        stats: SearchStats | None = None,
    ) -> np.ndarray:
        """Full-precision joint similarities (the rerank kernel).

        Scores against the store's cold exact tier — the second stage of
        the ``refine=`` pipeline re-scores the compressed search's top
        survivors here.  On a dense store this equals :meth:`query_ids`;
        on a compressed store built with ``keep_exact=False`` it falls
        back to reconstructions (rerank becomes a no-op).
        ``ids=None`` scores the whole corpus.
        """
        w2 = self._effective_weights(query, weights)
        store = self.store
        count = self.n if ids is None else int(np.asarray(ids).shape[0])
        out = np.zeros(count, dtype=np.float64)
        active = 0
        for i, q in enumerate(query.vectors):
            if q is None or w2[i] == 0.0:
                continue
            rows = (
                store.exact_modality(i)
                if ids is None
                else store.exact_rows(i, np.asarray(ids))
            )
            metric = self._vectors.metrics[i]
            if metric == "ip":
                out += w2[i] * (
                    rows @ q.astype(np.float32)
                ).astype(np.float64)
            else:
                out += w2[i] * dense_score_rows(metric, q, rows)
            active += 1
        if stats is not None:
            stats.joint_evals += count
            stats.modality_evals += count * active
            stats.reranked += count
        return out

    def query_ids_stable(
        self,
        query: MultiVector,
        ids: np.ndarray | None = None,
        weights: Weights | None = None,
        stats: SearchStats | None = None,
    ) -> np.ndarray:
        """Layout-independent exact joint similarities.

        BLAS GEMV kernels pick different accumulation orders for
        different matrix row counts, so :meth:`query_all` over a 60-row
        corpus and over a 600-row corpus can disagree in the last bit for
        the *same* object.  This route multiplies elementwise and reduces
        each row independently in float64, so a row's similarity depends
        only on its own vectors, the query, and the per-modality
        dimensionality — never on which other rows share the matrix.
        The segmented exact path uses it so results are bit-identical
        regardless of how the corpus is split into segments.
        ``ids=None`` scores the whole corpus.  On compressed stores rows
        are decoded (per call) before the float64 reduction, which keeps
        the row-independence property over the reconstructed values.
        """
        w2 = self._effective_weights(query, weights)
        ids_arr = None if ids is None else np.asarray(ids)
        count = self.n if ids_arr is None else int(ids_arr.shape[0])
        out = np.zeros(count, dtype=np.float64)
        active = 0
        for i, q in enumerate(query.vectors):
            if q is None or w2[i] == 0.0:
                continue
            rows = self._f64_rows(i, ids_arr)
            metric = self._vectors.metrics[i]
            if metric == "ip":
                prod = rows * q.astype(np.float64)
                out += w2[i] * np.add.reduce(prod, axis=1)
            else:
                # The registry fallback reduces each row independently
                # in float64, preserving this route's layout-independence.
                out += w2[i] * dense_score_rows(metric, q, rows)
            active += 1
        if stats is not None:
            stats.joint_evals += count
            stats.modality_evals += count * active
        return out

    def _f64_cacheable(self) -> bool:
        """Whether the float64 scan cache may be built for this corpus.

        The decision is made from the *projected* size (``8·n·Σd``)
        before anything is materialised — the historical implementation
        converted the whole corpus first and only then checked the cap,
        transiently tripling resident bytes right at the limit.  The
        cache is per-tier by construction: it only ever covers the
        resident dense hot tier — compressed stores (whose decode would
        pin a full reconstruction) and mmap-backed matrices (whose
        conversion would page the whole mapping into pinned RAM copies)
        always recompute per call, row-subset first.
        """
        if self.is_compressed:
            return False
        projected = 8 * self.n * int(sum(self._vectors.dims))
        if projected > _f64_cache_limit_bytes():
            return False
        store = self._vectors.store
        return not any(
            _mmap_backed(store.modality(i))
            for i in range(self.num_modalities)
        )

    def _f64_rows(self, i: int, ids: np.ndarray | None) -> np.ndarray:
        """Float64 rows of modality *i* for the deterministic scan.

        Bit-identical either way — ``mat.astype(f64)[ids]`` equals
        ``mat[ids].astype(f64)`` elementwise, and every backend's row
        decode is an elementwise/gather transform — so subsetting
        *before* the conversion changes no result while keeping a
        40-row rerank from converting (or decoding) the whole corpus.
        """
        cached = self._f64  # single read: safe vs concurrent drop_caches
        if cached is None and self._f64_cacheable():
            cached = [m.astype(np.float64) for m in self._vectors.matrices]
            self._f64 = cached
        if cached is not None:
            mat = cached[i]
            return mat if ids is None else mat[ids]
        store = self._vectors.store
        if ids is None:
            return store.modality(i).astype(np.float64)
        return store.rows(i, ids).astype(np.float64)

    def query_ids_early_stop(
        self,
        query: MultiVector,
        ids: np.ndarray,
        threshold: float,
        weights: Weights | None = None,
        stats: SearchStats | None = None,
        kernels: dict[int, ModalityKernel] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lemma-4 pruned similarity evaluation.

        Returns ``(sims, exact)`` where ``exact[j]`` is True when
        ``sims[j]`` is the exact joint similarity of ``ids[j]``; when False
        the object was pruned because its upper bound fell to ``threshold``
        or below (so its exact similarity is also ≤ the threshold, and
        ``sims[j]`` holds the bound at pruning time).

        ``kernels`` optionally supplies prebuilt per-modality scoring
        kernels (keyed by modality) so a caller evaluating many frontier
        waves for one query — the graph searcher — pays per-query kernel
        preprocessing (PQ ADC tables) once instead of per wave.
        """
        require(
            self._vectors.is_ip_only,
            "Lemma-4 early termination is an inner-product bound — it "
            "requires metric 'ip' on every dense modality",
        )
        ids = np.asarray(ids)
        w2 = self._effective_weights(query, weights)
        store = self.store
        active = [
            i
            for i, q in enumerate(query.vectors)
            if q is not None and w2[i] > 0.0
        ]
        # Descending-weight scan order: heavier modalities shrink the upper
        # bound fastest, maximising pruning without affecting correctness.
        active.sort(key=lambda i: -w2[i])

        total = float(sum(w2[i] for i in active))
        bound = np.full(ids.shape[0], total, dtype=np.float64)
        alive = np.arange(ids.shape[0])
        if stats is not None:
            stats.joint_evals += int(ids.shape[0])
        for step, i in enumerate(active):
            kernel = kernels.get(i) if kernels is not None else None
            if kernel is None:
                kernel = store.query_kernel(
                    i, query.vectors[i].astype(np.float32)
                )
            # ‖q−u‖² = 2 − 2·(q·u) for unit vectors.  On compressed rows
            # the identity Σ wᵢ²·(1 − ½d²ᵢ) = Σ wᵢ²·IPᵢ still holds
            # exactly; only the *bound* direction inherits the (tiny)
            # reconstruction error, so pruning is lossless w.r.t. the
            # store's own scores up to that error.
            d2 = 2.0 - 2.0 * kernel.ids(ids[alive]).astype(np.float64)
            bound[alive] -= 0.5 * w2[i] * d2
            if stats is not None:
                stats.modality_evals += int(alive.shape[0])
            if step < len(active) - 1:
                survivors = bound[alive] > threshold
                if stats is not None:
                    stats.pruned_early += int(
                        alive.shape[0] - int(survivors.sum())
                    )
                alive = alive[survivors]
                if alive.size == 0:
                    break
        exact = bound > threshold
        # Objects that survived the full scan hold exact similarities even
        # if they ended at/below the threshold: mark them exact so callers
        # can still use the value (Lemma 4, second clause).
        if alive.size:
            exact[alive] = True
        return bound, exact
