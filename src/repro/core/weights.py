"""Modality weights (paper §VI, Lemma 1).

The joint similarity between two multi-vector objects is the weighted sum of
per-modality inner products::

    IP(â, b̂) = Σ_i ω_i² · IP(ϕ_i(a_i), ϕ_i(b_i))

Weights are stored in *squared* form (``w2 = ω²``) because that is the
quantity every kernel consumes; the paper's appendix tables (XIII–XVIII)
also report ``ω²`` directly.

Two sources of weights exist (Fig. 4(g)):

* **Option 1 — learned weights** from :mod:`repro.weightlearn`.
* **Option 2 — user-defined weights** for customised preferences (Tab. IX).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.multivector import MultiVector
from repro.utils.validation import require

__all__ = ["Weights"]


class Weights:
    """Immutable per-modality weight vector, stored as ``ω²``."""

    def __init__(self, squared: Sequence[float]):
        arr = np.asarray(squared, dtype=np.float64)
        require(arr.ndim == 1 and arr.size >= 1, "weights must be a 1-D sequence")
        require(bool(np.all(arr >= 0.0)), "squared weights must be non-negative")
        require(bool(arr.sum() > 0.0), "at least one weight must be positive")
        self._squared = arr.copy()
        self._squared.flags.writeable = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_omegas(cls, omegas: Sequence[float]) -> "Weights":
        """Build from raw ω values (squares them)."""
        omegas = np.asarray(omegas, dtype=np.float64)
        return cls(omegas**2)

    @classmethod
    def uniform(cls, num_modalities: int) -> "Weights":
        """Equal importance for every modality, ``Σ ω² = 1``."""
        require(num_modalities >= 1, "need at least one modality")
        return cls(np.full(num_modalities, 1.0 / num_modalities))

    @classmethod
    def user_defined(cls, squared: Sequence[float]) -> "Weights":
        """Explicit user preference (paper Tab. IX); alias for the ctor."""
        return cls(squared)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def squared(self) -> np.ndarray:
        """The ``ω²`` vector (read-only)."""
        return self._squared

    @property
    def omegas(self) -> np.ndarray:
        """The ω vector (non-negative root)."""
        return np.sqrt(self._squared)

    @property
    def num_modalities(self) -> int:
        return int(self._squared.size)

    @property
    def total(self) -> float:
        """``S = Σ ω²`` — the self-similarity of any fully-present object."""
        return float(self._squared.sum())

    def normalized(self) -> "Weights":
        """Rescale so ``Σ ω² = 1`` (pure rescaling never changes rankings)."""
        return Weights(self._squared / self._squared.sum())

    def masked(self, query: MultiVector) -> "Weights":
        """Zero out weights of modalities missing from *query*.

        Implements the paper's ``t ≠ m`` rule (§VII-B): absent modalities
        contribute ``ω_i = 0`` to the joint similarity.
        """
        present = np.asarray(query.present, dtype=np.float64)
        require(
            present.size == self._squared.size,
            f"query has {present.size} modality slots, weights have "
            f"{self._squared.size}",
        )
        masked = self._squared * present
        require(bool(masked.sum() > 0.0), "query has no usable modality")
        return Weights(masked)

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        vals = ", ".join(f"{v:.4f}" for v in self._squared)
        return f"Weights(squared=[{vals}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Weights):
            return NotImplemented
        return np.array_equal(self._squared, other._squared)

    def __hash__(self) -> int:
        return hash(self._squared.tobytes())
