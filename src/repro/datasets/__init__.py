"""Dataset generators mirroring the paper's nine evaluation corpora."""

from repro.datasets.base import (
    EncodedDataset,
    EncoderCombo,
    SemanticDataset,
    encode_dataset,
    split_queries,
)
from repro.datasets.celeba import make_celeba, make_celeba_plus
from repro.datasets.largescale import (
    DEFAULT_COMBOS,
    encode_largescale,
    exact_ground_truth,
    make_audiotext,
    make_imagetext,
    make_largescale,
    make_videotext,
)
from repro.datasets.mitstates import make_mitstates
from repro.datasets.mscoco import make_mscoco
from repro.datasets.shopping import make_shopping

__all__ = [
    "EncodedDataset",
    "EncoderCombo",
    "SemanticDataset",
    "encode_dataset",
    "split_queries",
    "make_celeba",
    "make_celeba_plus",
    "make_mitstates",
    "make_mscoco",
    "make_shopping",
    "make_largescale",
    "make_imagetext",
    "make_audiotext",
    "make_videotext",
    "encode_largescale",
    "exact_ground_truth",
    "DEFAULT_COMBOS",
]
