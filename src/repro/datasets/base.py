"""Dataset containers and the semantics → vectors encoding step.

Dataset generation is split in two stages so that one generated corpus can
be encoded under many encoder combinations (exactly how the paper
evaluates eight combos on one MIT-States corpus):

1. A **SemanticDataset** holds the *content* of every object and query as
   latent vectors in the shared concept space, plus planted ground truth.
2. :func:`encode_dataset` applies an :class:`EncoderCombo` to produce an
   **EncodedDataset** — the multi-vector corpus plus query vectors that
   the frameworks (MUST / MR / JE) consume.

Both target-slot options of Fig. 4(f) are materialised for every query:
Option 1 embeds the reference input with the unimodal target encoder
(when the reference is an object from the corpus, its exact corpus vector
is reused — a frozen encoder maps the same input to the same vector);
Option 2 asks a composition encoder to fuse the reference with the
auxiliary inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.multivector import MultiVector, MultiVectorSet
from repro.embedding import default_registry
from repro.embedding.concepts import LatentConceptSpace
from repro.utils.validation import require

__all__ = [
    "SemanticDataset",
    "EncoderCombo",
    "EncodedDataset",
    "encode_dataset",
    "split_queries",
]


@dataclass
class SemanticDataset:
    """Latent-space content of a multimodal corpus and its query workload."""

    name: str
    concept_space: LatentConceptSpace
    #: one ``(n, L)`` latent matrix per modality; index 0 is the target.
    object_latents: list[np.ndarray]
    #: per modality a human-readable kind: image / text / audio / video.
    modality_kinds: tuple[str, ...]
    #: latents of auxiliary query inputs, one ``(nq, L)`` matrix per
    #: auxiliary modality (modalities 1..m-1).
    query_aux_latents: list[np.ndarray]
    #: latent of the content each query *asks for* — reference modified by
    #: the auxiliary inputs.  Feeds composition encoders.
    query_composed_latents: np.ndarray
    #: planted ground-truth object ids, one array per query.
    ground_truth: list[np.ndarray]
    #: corpus ids of each query's reference object (target modality), or
    #: None when references are fresh inputs (semi-synthetic corpora).
    query_reference_ids: np.ndarray | None = None
    #: fresh reference latents, used only when ``query_reference_ids`` is
    #: None.
    query_reference_latents: np.ndarray | None = None
    #: human-readable labels for case studies (Fig. 5 / Fig. 11).
    object_labels: list[str] = field(default_factory=list)
    query_labels: list[str] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(len(self.object_latents) >= 1, "need at least one modality")
        require(
            len(self.modality_kinds) == len(self.object_latents),
            "one modality kind per modality",
        )
        require(
            len(self.query_aux_latents) == len(self.object_latents) - 1,
            "one auxiliary query latent matrix per auxiliary modality",
        )
        require(
            self.query_reference_ids is not None
            or self.query_reference_latents is not None,
            "queries need either reference ids or reference latents",
        )
        require(
            len(self.ground_truth) == self.num_queries,
            "one ground-truth array per query",
        )

    @property
    def n(self) -> int:
        return int(self.object_latents[0].shape[0])

    @property
    def num_modalities(self) -> int:
        return len(self.object_latents)

    @property
    def num_queries(self) -> int:
        return int(self.query_composed_latents.shape[0])

    def reference_latents(self) -> np.ndarray:
        """Latents of the target-modality reference of every query."""
        if self.query_reference_ids is not None:
            return self.object_latents[0][self.query_reference_ids]
        return self.query_reference_latents


@dataclass(frozen=True)
class EncoderCombo:
    """Choice of encoders: one for the target slot, one per auxiliary.

    ``target`` may name a unimodal encoder (Option 1 search) or a
    composition encoder such as ``clip`` (Option 2 search — the corpus
    target matrix then comes from the composition encoder's tower).
    """

    target: str
    auxiliaries: tuple[str, ...]

    @property
    def label(self) -> str:
        parts = [_pretty(self.target)] + [_pretty(a) for a in self.auxiliaries]
        return "+".join(parts)


_PRETTY = {
    "resnet17": "ResNet17",
    "resnet50": "ResNet50",
    "lstm": "LSTM",
    "transformer": "Transformer",
    "gru": "GRU",
    "encoding": "Encoding",
    "tirg": "TIRG",
    "clip": "CLIP",
    "mpc": "MPC",
}


def _pretty(name: str) -> str:
    return _PRETTY.get(name, name)


@dataclass
class EncodedDataset:
    """A semantic dataset materialised under one encoder combination."""

    name: str
    combo: EncoderCombo
    objects: MultiVectorSet
    #: Option 1 queries: target slot = unimodal embedding of the reference.
    queries_option1: list[MultiVector]
    #: Option 2 queries: target slot = composition vector (None when the
    #: combo's target encoder is unimodal).
    queries_option2: list[MultiVector] | None
    ground_truth: list[np.ndarray]
    target_modality: int = 0
    object_labels: list[str] = field(default_factory=list)
    query_labels: list[str] = field(default_factory=list)

    @property
    def queries(self) -> list[MultiVector]:
        """Default query views: Option 2 when available, else Option 1."""
        if self.queries_option2 is not None:
            return self.queries_option2
        return self.queries_option1

    @property
    def num_queries(self) -> int:
        return len(self.queries_option1)

    @property
    def num_modalities(self) -> int:
        return self.objects.num_modalities

    def queries_single_modality(self, modality: int) -> list[MultiVector]:
        """Queries restricted to one modality (paper Tab. X/XIX/XX).

        All other slots become ``None``; the searcher zero-weights them.
        """
        out = []
        for q in self.queries:
            vectors: list[np.ndarray | None] = [None] * self.num_modalities
            vectors[modality] = q.vectors[modality]
            out.append(MultiVector(tuple(vectors)))
        return out


def encode_dataset(
    sem: SemanticDataset, combo: EncoderCombo, seed: int = 0
) -> EncodedDataset:
    """Materialise *sem* as vectors under *combo* (deterministic in *seed*)."""
    require(
        len(combo.auxiliaries) == sem.num_modalities - 1,
        f"combo has {len(combo.auxiliaries)} auxiliary encoders but the "
        f"dataset has {sem.num_modalities - 1} auxiliary modalities",
    )
    space = sem.concept_space
    target_encoder = default_registry.create(combo.target, space, seed)
    aux_encoders = [
        default_registry.create(name, space, seed) for name in combo.auxiliaries
    ]
    is_composition = hasattr(target_encoder, "encode_composition")

    # ---- corpus --------------------------------------------------------
    matrices = [
        target_encoder.encode_latents(sem.object_latents[0], key=("corpus", 0))
    ]
    for i, encoder in enumerate(aux_encoders, start=1):
        matrices.append(
            encoder.encode_latents(sem.object_latents[i], key=("corpus", i))
        )
    objects = MultiVectorSet(matrices)

    # ---- query auxiliary slots ----------------------------------------
    aux_vectors = [
        encoder.encode_latents(sem.query_aux_latents[i - 1], key=("query", i))
        for i, encoder in enumerate(aux_encoders, start=1)
    ]

    # ---- query target slot, Option 1 -----------------------------------
    if sem.query_reference_ids is not None:
        # The reference *is* a corpus object: a frozen encoder reproduces
        # its corpus vector exactly.
        option1_target = matrices[0][sem.query_reference_ids]
    else:
        option1_target = target_encoder.encode_latents(
            sem.query_reference_latents, key=("query", 0)
        )

    def build_queries(target_block: np.ndarray) -> list[MultiVector]:
        return [
            MultiVector(
                (target_block[j],) + tuple(aux[j] for aux in aux_vectors)
            )
            for j in range(sem.num_queries)
        ]

    queries_option1 = build_queries(option1_target)

    # ---- query target slot, Option 2 (composition) ---------------------
    queries_option2 = None
    if is_composition:
        composed = target_encoder.encode_composition(
            sem.query_composed_latents,
            sem.reference_latents(),
            key="query-composition",
        )
        queries_option2 = build_queries(composed)

    return EncodedDataset(
        name=sem.name,
        combo=combo,
        objects=objects,
        queries_option1=queries_option1,
        queries_option2=queries_option2,
        ground_truth=[np.asarray(g, dtype=np.int64) for g in sem.ground_truth],
        object_labels=list(sem.object_labels),
        query_labels=list(sem.query_labels),
    )


def split_queries(
    num_queries: int, train_fraction: float = 0.5, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic train/test split of query indices.

    The weight-learning model trains on the first split and every accuracy
    table evaluates on the second, so learned weights are never tuned on
    the queries they are scored against.
    """
    require(0.0 < train_fraction < 1.0, "train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_queries)
    cut = max(1, int(round(num_queries * train_fraction)))
    cut = min(cut, num_queries - 1)
    return np.sort(order[:cut]), np.sort(order[cut:])
