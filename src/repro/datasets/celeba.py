"""CelebA-like corpus: identities × binary face attributes.

Mirrors the paper's CelebA workload (Fig. 3): every object is a face
image of an *identity* under a particular binary *attribute* configuration
("no glasses and hat", "smiling", …) plus a structured attribute string.
A query supplies a reference face of the identity plus text describing the
target attribute configuration; the ground truth is the face of the same
identity with exactly those attributes.

:func:`make_celeba_plus` extends each object with additional image views —
the paper's CelebA+ construction "simulated two additional modalities
using different encoders" — for the modality-count ablation (Tab. VIII).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SemanticDataset
from repro.embedding.concepts import LatentConceptSpace
from repro.utils.rng import derive_seed, spawn
from repro.utils.validation import require

__all__ = ["make_celeba", "make_celeba_plus", "ATTRIBUTE_WORDS"]

ATTRIBUTE_WORDS = [
    "glasses", "hat", "beard", "smiling", "bangs", "earrings",
    "mouth_open", "high_cheekbones", "arched_eyebrows", "pointy_nose",
    "bags_under_eyes", "wavy_hair",
]

_IDENTITY_WEIGHT = 1.0
_ATTR_IMAGE_WEIGHT = 0.30
_IMAGE_JITTER = 0.55
_TEXT_JITTER = 0.22
#: Shared query-intent drift (see mitstates.py): correlates the text and
#: composition errors of a query so multi-stage fusion cannot cancel it.
_QUERY_DRIFT_TEXT = 0.45
_QUERY_DRIFT_COMPOSED = 0.85


def _attribute_latent_table(
    space: LatentConceptSpace, attributes: list[str]
) -> np.ndarray:
    """Latents for every (attribute, value) pair, shape ``(A, 2, L)``."""
    table = np.empty((len(attributes), 2, space.latent_dim))
    for k, attr in enumerate(attributes):
        table[k, 0] = space.concept(f"attr:{attr}=off")
        table[k, 1] = space.concept(f"attr:{attr}=on")
    return table


def _attr_mixture(table: np.ndarray, bits: np.ndarray) -> np.ndarray:
    """Sum of value latents selected by *bits*, shape ``(n, L)``.

    ``bits`` is ``(n, A)`` with entries in {0, 1}.
    """
    n, num_attrs = bits.shape
    rows = np.arange(num_attrs)
    picked = table[rows[None, :], bits]  # (n, A, L)
    return picked.sum(axis=1) / np.sqrt(num_attrs)


def _build_variants(
    rng: np.random.Generator, num_identities: int, variants: int, num_attrs: int
) -> np.ndarray:
    """Per-identity distinct attribute configurations, ``(I, V, A)`` bits."""
    out = np.zeros((num_identities, variants, num_attrs), dtype=np.int64)
    for i in range(num_identities):
        seen: set[bytes] = set()
        base = rng.integers(0, 2, size=num_attrs)
        out[i, 0] = base
        seen.add(base.tobytes())
        for v in range(1, variants):
            candidate = base.copy()
            while candidate.tobytes() in seen:
                flips = rng.choice(
                    num_attrs, size=int(rng.integers(1, 4)), replace=False
                )
                candidate = base.copy()
                candidate[flips] ^= 1
            out[i, v] = candidate
            seen.add(candidate.tobytes())
    return out


def make_celeba(
    num_identities: int = 200,
    variants_per_identity: int = 4,
    num_attributes: int = 6,
    num_queries: int = 240,
    latent_dim: int = 64,
    seed: int = 11,
    num_image_views: int = 1,
    name: str = "CelebA",
) -> SemanticDataset:
    """Generate a CelebA-like :class:`SemanticDataset`.

    ``num_image_views`` > 1 produces the CelebA+ layout: extra image
    modalities that are independent views (re-jitters) of the same face.
    """
    require(variants_per_identity >= 2, "need ≥2 variants per identity")
    require(num_attributes >= 2, "need ≥2 attributes")
    require(
        num_attributes <= len(ATTRIBUTE_WORDS),
        f"at most {len(ATTRIBUTE_WORDS)} named attributes available",
    )
    space = LatentConceptSpace(latent_dim, derive_seed(seed, "celeba-space"))
    attributes = ATTRIBUTE_WORDS[:num_attributes]
    attr_table = _attribute_latent_table(space, attributes)
    # Identities share facial archetypes — lookalike faces are what keeps
    # identity matching from being trivial (paper CelebA tops out ≈0.64).
    identity_lat = space.correlated_concepts(
        [f"identity:{i}" for i in range(num_identities)],
        groups=max(4, num_identities // 16),
        unique_weight=0.40,
        key="identities",
    )

    rng = spawn(seed, "celeba-structure")
    variants = _build_variants(
        rng, num_identities, variants_per_identity, num_attributes
    )

    identity_idx = np.repeat(np.arange(num_identities), variants_per_identity)
    bits = variants.reshape(-1, num_attributes)
    n = identity_idx.size

    face_raw = (
        _IDENTITY_WEIGHT * identity_lat[identity_idx]
        + _ATTR_IMAGE_WEIGHT * _attr_mixture(attr_table, bits) * np.sqrt(num_attributes)
    )
    image_views = [
        space.jitter_batch(face_raw, _IMAGE_JITTER, f"obj-image-view{v}")
        for v in range(num_image_views)
    ]
    text_latents = space.jitter_batch(
        _attr_mixture(attr_table, bits), _TEXT_JITTER, "obj-text"
    )

    object_labels = [
        f"id{ident} [" + ",".join(
            attributes[k] for k in range(num_attributes) if bits[row, k]
        ) + "]"
        for row, ident in enumerate(identity_idx)
    ]

    # ---- queries -------------------------------------------------------
    qrng = spawn(seed, "celeba-queries")
    reference_ids = np.empty(num_queries, dtype=np.int64)
    gt_rows = np.empty(num_queries, dtype=np.int64)
    for qi in range(num_queries):
        ident = int(qrng.integers(num_identities))
        v_ref, v_gt = qrng.choice(variants_per_identity, size=2, replace=False)
        reference_ids[qi] = ident * variants_per_identity + int(v_ref)
        gt_rows[qi] = ident * variants_per_identity + int(v_gt)

    composed_raw = (
        _IDENTITY_WEIGHT * identity_lat[identity_idx[gt_rows]]
        + _ATTR_IMAGE_WEIGHT
        * _attr_mixture(attr_table, bits[gt_rows])
        * np.sqrt(num_attributes)
    )
    drift = spawn(seed, "celeba-query-drift").standard_normal(
        (num_queries, latent_dim)
    ) / np.sqrt(latent_dim)
    composed = space.jitter_batch(
        composed_raw + _QUERY_DRIFT_COMPOSED * drift, 0.0, None
    )
    aux_text = space.jitter_batch(
        _attr_mixture(attr_table, bits[gt_rows]) + _QUERY_DRIFT_TEXT * drift,
        _TEXT_JITTER,
        "query-text",
    )

    # Auxiliary image views of the query carry the *reference* face (the
    # user supplies the same photo to every image channel).
    aux_latents = [aux_text]
    for v in range(1, num_image_views):
        aux_latents.append(
            space.jitter_batch(
                face_raw[reference_ids], _IMAGE_JITTER, f"query-view{v}"
            )
        )

    ground_truth = [np.asarray([row], dtype=np.int64) for row in gt_rows]
    query_labels = [
        f"{object_labels[reference_ids[qi]]} -> "
        f"'change state to {object_labels[gt_rows[qi]].split('[', 1)[1][:-1]}'"
        for qi in range(num_queries)
    ]

    modality_kinds = ("image", "text") + ("image",) * (num_image_views - 1)
    return SemanticDataset(
        name=name,
        concept_space=space,
        object_latents=[image_views[0], text_latents] + image_views[1:],
        modality_kinds=modality_kinds,
        query_aux_latents=aux_latents,
        query_composed_latents=composed,
        ground_truth=ground_truth,
        query_reference_ids=reference_ids,
        object_labels=object_labels,
        query_labels=query_labels,
        extra={"attributes": attributes, "identity_of": identity_idx},
    )


def make_celeba_plus(
    num_modalities: int = 4,
    num_identities: int = 200,
    variants_per_identity: int = 4,
    num_attributes: int = 6,
    num_queries: int = 240,
    latent_dim: int = 64,
    seed: int = 11,
) -> SemanticDataset:
    """CelebA+ (paper Tab. VIII): 2–4 modalities via extra image views."""
    require(2 <= num_modalities <= 4, "CelebA+ supports 2–4 modalities")
    return make_celeba(
        num_identities=num_identities,
        variants_per_identity=variants_per_identity,
        num_attributes=num_attributes,
        num_queries=num_queries,
        latent_dim=latent_dim,
        seed=seed,
        num_image_views=num_modalities - 1,
        name=f"CelebA+ (m={num_modalities})",
    )
