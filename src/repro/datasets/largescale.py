"""Semi-synthetic large-scale corpora: {Image,Audio,Video}Text at any scale.

The paper builds ImageText1M / AudioText1M / VideoText1M / ImageText16M by
attaching a text modality to SIFT / MSONG / UQ-V / DEEP feature corpora.
Those corpora are unavailable offline, so we generate clustered feature
latents (real descriptor corpora are strongly clustered, which is what
makes proximity graphs effective) plus a tag-based text modality, at a
scale parameterised by ``n``.

Ground truth for these corpora is **exact joint-similarity top-k** under
the evaluation weights — the paper's Recall@10(10) protocol for Fig. 6 —
computed on demand via :func:`exact_ground_truth` rather than planted,
since there are no semantic labels.
"""

from __future__ import annotations

import numpy as np

from repro.core.multivector import MultiVector
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.datasets.base import (
    EncodedDataset,
    EncoderCombo,
    SemanticDataset,
    encode_dataset,
)
from repro.embedding.concepts import LatentConceptSpace
from repro.metrics.groundtruth import exact_top_k
from repro.utils.rng import derive_seed, spawn
from repro.utils.validation import require

__all__ = [
    "make_largescale",
    "make_imagetext",
    "make_audiotext",
    "make_videotext",
    "exact_ground_truth",
    "DEFAULT_COMBOS",
]

#: Encoder combos mirroring the original corpora's feature types.
DEFAULT_COMBOS = {
    "image": EncoderCombo(target="resnet50", auxiliaries=("lstm",)),
    "audio": EncoderCombo(target="audio-mfcc", auxiliaries=("lstm",)),
    "video": EncoderCombo(target="video-keyframe", auxiliaries=("lstm",)),
    "deep": EncoderCombo(target="deep-cnn", auxiliaries=("lstm",)),
}

_WITHIN_CLUSTER_NOISE = 0.55
_QUERY_NOISE = 0.35
_TAGS_PER_OBJECT = 3


def make_largescale(
    kind: str = "image",
    n: int = 10_000,
    num_queries: int = 100,
    num_clusters: int = 64,
    tag_vocabulary: int = 50,
    latent_dim: int = 48,
    seed: int = 23,
) -> SemanticDataset:
    """Generate a clustered feature corpus with a text modality.

    Queries are fresh inputs near a hidden base object (its id is recorded
    as a 1-element planted ground truth; benchmark-grade ground truth is
    recomputed exactly via :func:`exact_ground_truth`).
    """
    require(kind in DEFAULT_COMBOS, f"kind must be one of {sorted(DEFAULT_COMBOS)}")
    require(n >= num_clusters, "need at least one object per cluster")
    space = LatentConceptSpace(latent_dim, derive_seed(seed, "largescale-space", kind))
    rng = spawn(seed, "largescale", kind, n)

    root_dim = np.sqrt(latent_dim)
    centers = rng.standard_normal((num_clusters, latent_dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    assignment = rng.integers(num_clusters, size=n)
    # Noise magnitudes follow the norm convention: the second term has an
    # expected norm of _WITHIN_CLUSTER_NOISE relative to the unit centre.
    feature_raw = centers[assignment] + (
        _WITHIN_CLUSTER_NOISE * rng.standard_normal((n, latent_dim)) / root_dim
    )
    feature_latents = space.jitter_batch(feature_raw, 0.0, None)

    tag_lat = space.concepts([f"tag:{kind}:{t}" for t in range(tag_vocabulary)])
    tags = rng.integers(tag_vocabulary, size=(n, _TAGS_PER_OBJECT))
    text_raw = tag_lat[tags].sum(axis=1)
    text_latents = space.jitter_batch(text_raw, 0.05, "obj-text")

    base_ids = rng.integers(n, size=num_queries)
    ref_raw = feature_latents[base_ids] + (
        _QUERY_NOISE * rng.standard_normal((num_queries, latent_dim)) / root_dim
    )
    reference_latents = space.jitter_batch(ref_raw, 0.0, None)
    aux_raw = text_raw[base_ids] + (
        0.3 * rng.standard_normal((num_queries, latent_dim)) / root_dim
    )
    aux_latents = space.jitter_batch(aux_raw, 0.0, None)
    composed = reference_latents.copy()

    scale_tag = f"{n // 1000}K" if n < 1_000_000 else f"{n // 1_000_000}M"
    return SemanticDataset(
        name=f"{kind.capitalize()}Text{scale_tag}",
        concept_space=space,
        object_latents=[feature_latents, text_latents],
        modality_kinds=(kind, "text"),
        query_aux_latents=[aux_latents],
        query_composed_latents=composed,
        ground_truth=[np.asarray([b], dtype=np.int64) for b in base_ids],
        query_reference_latents=reference_latents,
        extra={"kind": kind, "clusters": num_clusters},
    )


def make_imagetext(n: int = 10_000, **kwargs) -> SemanticDataset:
    """ImageText corpus (the paper's ImageText1M/16M analogue)."""
    return make_largescale(kind="image", n=n, **kwargs)


def make_audiotext(n: int = 10_000, **kwargs) -> SemanticDataset:
    """AudioText corpus (the paper's AudioText1M analogue)."""
    return make_largescale(kind="audio", n=n, **kwargs)


def make_videotext(n: int = 10_000, **kwargs) -> SemanticDataset:
    """VideoText corpus (the paper's VideoText1M analogue)."""
    return make_largescale(kind="video", n=n, **kwargs)


def encode_largescale(sem: SemanticDataset, seed: int = 0) -> EncodedDataset:
    """Encode a large-scale corpus under its default combo."""
    combo = DEFAULT_COMBOS[sem.extra["kind"]]
    return encode_dataset(sem, combo, seed=seed)


def exact_ground_truth(
    encoded: EncodedDataset,
    weights: Weights,
    k: int,
    queries: list[MultiVector] | None = None,
) -> list[np.ndarray]:
    """Exact joint top-*k* ids per query — the Recall@k(k) reference set."""
    space = JointSpace(encoded.objects, weights)
    queries = queries if queries is not None else encoded.queries
    return [exact_top_k(space, q, k)[0] for q in queries]
