"""MIT-States-like corpus: (noun, state) images with state-edit queries.

Mirrors the paper's MIT-States workload (Tab. II): every object is an
image of a *noun* in a *state* ("fresh cheese", "melted clock") plus a
short text label.  A query supplies a reference image of the noun in some
state and a text instruction "change state to S"; the ground truth is
every corpus image of the same noun in state S (Fig. 5's running
example).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SemanticDataset
from repro.embedding.concepts import LatentConceptSpace
from repro.utils.rng import derive_seed, spawn
from repro.utils.validation import require

__all__ = ["make_mitstates", "NOUN_WORDS", "STATE_WORDS"]

NOUN_WORDS = [
    "cheese", "clock", "camera", "tomato", "bridge", "garden", "jacket",
    "window", "bottle", "statue", "carpet", "island", "castle", "ribbon",
    "basket", "candle", "mirror", "laptop", "pillow", "ladder", "engine",
    "helmet", "barrel", "lantern", "pencil", "teapot", "wallet", "anchor",
    "hammer", "saddle", "turbine", "violin", "curtain", "compass", "fossil",
    "goblet", "harness", "incense", "javelin", "kimono", "locket", "mural",
    "nugget", "obelisk", "pendant", "quiver", "rosette", "sundial", "trellis",
    "urn",
]

STATE_WORDS = [
    "fresh", "moldy", "melted", "frozen", "broken", "ancient", "painted",
    "rusty", "folded", "inflated", "burnt", "polished", "cracked", "wet",
    "dry", "bent", "curved", "dented", "engraved", "faded",
]

#: Relative strength of the noun vs. state component in an image latent.
_IMAGE_NOUN_WEIGHT = 0.72
_IMAGE_STATE_WEIGHT = 0.45
_IMAGE_JITTER = 0.80
#: Text labels are state-dominant (the query text mentions only a state).
_TEXT_STATE_WEIGHT = 1.0
_TEXT_NOUN_WEIGHT = 0.30
_TEXT_JITTER = 0.18
#: Shared query-intent drift: the user's imprecise phrasing perturbs the
#: auxiliary text *and* the fused composition identically, so their errors
#: correlate (combining them cannot cancel this component — the reason the
#: paper's multi-stage fusion still tops out well below perfect recall).
_QUERY_DRIFT_TEXT = 0.25
_QUERY_DRIFT_COMPOSED = 0.95


def _names(words: list[str], count: int, prefix: str) -> list[str]:
    if count <= len(words):
        return words[:count]
    return words + [f"{prefix}{i}" for i in range(count - len(words))]


def make_mitstates(
    num_nouns: int = 50,
    num_states: int = 12,
    instances_per_pair: int = 3,
    num_queries: int = 240,
    latent_dim: int = 64,
    seed: int = 7,
) -> SemanticDataset:
    """Generate an MIT-States-like :class:`SemanticDataset`.

    The corpus has ``num_nouns × num_states × instances_per_pair`` objects
    (default 960).  Every query has ``instances_per_pair`` ground-truth
    objects (``k' = instances_per_pair`` in Eq. 1 terms; accuracy tables
    use ``Recall@k(1)`` by evaluating against the single best-matching
    instance set).
    """
    require(num_nouns >= 2 and num_states >= 2, "need ≥2 nouns and states")
    require(instances_per_pair >= 1, "need at least one instance per pair")
    space = LatentConceptSpace(latent_dim, derive_seed(seed, "mitstates-space"))
    nouns = _names(NOUN_WORDS, num_nouns, "noun")
    states = _names(STATE_WORDS, num_states, "state")
    noun_lat = space.concepts([f"noun:{w}" for w in nouns])
    state_lat = space.concepts([f"state:{w}" for w in states])

    # ---- corpus --------------------------------------------------------
    noun_idx, state_idx = np.meshgrid(
        np.arange(num_nouns), np.arange(num_states), indexing="ij"
    )
    noun_idx = np.repeat(noun_idx.ravel(), instances_per_pair)
    state_idx = np.repeat(state_idx.ravel(), instances_per_pair)
    n = noun_idx.size

    image_raw = (
        _IMAGE_NOUN_WEIGHT * noun_lat[noun_idx]
        + _IMAGE_STATE_WEIGHT * state_lat[state_idx]
    )
    image_latents = space.jitter_batch(image_raw, _IMAGE_JITTER, "obj-image")
    text_raw = (
        _TEXT_STATE_WEIGHT * state_lat[state_idx]
        + _TEXT_NOUN_WEIGHT * noun_lat[noun_idx]
    )
    text_latents = space.jitter_batch(text_raw, _TEXT_JITTER, "obj-text")

    object_labels = [
        f"{states[s]} {nouns[nn]}" for nn, s in zip(noun_idx, state_idx)
    ]

    # Index objects by (noun, state) for reference / ground-truth lookup.
    by_pair: dict[tuple[int, int], list[int]] = {}
    for obj_id, (nn, s) in enumerate(zip(noun_idx, state_idx)):
        by_pair.setdefault((int(nn), int(s)), []).append(obj_id)

    # ---- queries -------------------------------------------------------
    rng = spawn(seed, "mitstates-queries")
    reference_ids = np.empty(num_queries, dtype=np.int64)
    composed_raw = np.empty((num_queries, latent_dim))
    aux_raw = np.empty((num_queries, latent_dim))
    ground_truth: list[np.ndarray] = []
    query_labels: list[str] = []
    for qi in range(num_queries):
        noun = int(rng.integers(num_nouns))
        s_ref, s_tgt = rng.choice(num_states, size=2, replace=False)
        s_ref, s_tgt = int(s_ref), int(s_tgt)
        reference_ids[qi] = int(rng.choice(by_pair[(noun, s_ref)]))
        ground_truth.append(np.asarray(by_pair[(noun, s_tgt)], dtype=np.int64))
        composed_raw[qi] = (
            _IMAGE_NOUN_WEIGHT * noun_lat[noun]
            + _IMAGE_STATE_WEIGHT * state_lat[s_tgt]
        )
        aux_raw[qi] = (
            _TEXT_STATE_WEIGHT * state_lat[s_tgt]
            + _TEXT_NOUN_WEIGHT * noun_lat[noun]
        )
        query_labels.append(
            f"{states[s_ref]} {nouns[noun]} + 'change state to {states[s_tgt]}'"
        )

    drift = spawn(seed, "mitstates-query-drift").standard_normal(
        (num_queries, latent_dim)
    ) / np.sqrt(latent_dim)
    composed = space.jitter_batch(
        composed_raw + _QUERY_DRIFT_COMPOSED * drift, 0.0, None
    )
    aux_text = space.jitter_batch(
        aux_raw + _QUERY_DRIFT_TEXT * drift, _TEXT_JITTER, "query-text"
    )

    return SemanticDataset(
        name="MIT-States",
        concept_space=space,
        object_latents=[image_latents, text_latents],
        modality_kinds=("image", "text"),
        query_aux_latents=[aux_text],
        query_composed_latents=composed,
        ground_truth=ground_truth,
        query_reference_ids=reference_ids,
        object_labels=object_labels,
        query_labels=query_labels,
        extra={"nouns": nouns, "states": states},
    )
