"""MS-COCO-like corpus: three-modality scene composition queries.

Mirrors the paper's MS-COCO workload (Tab. VI, the hardest dataset):
objects have **three** modalities — a target image, a second image view of
the same scene, and a caption.  A query supplies two reference images from
*different* scenes plus a text emphasis; the ground truth is the scene
whose category set composes the references (the MPC setting of [42]).

Recall is intrinsically low here (the paper reports Recall@10(1) ≈ 0.09
for the best method) because references only partially overlap the target
scene; the generator preserves that difficulty by giving each reference
only a strict subset of the ground-truth categories.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SemanticDataset
from repro.embedding.concepts import LatentConceptSpace
from repro.utils.rng import derive_seed, spawn
from repro.utils.validation import require

__all__ = ["make_mscoco", "COCO_CATEGORIES"]

COCO_CATEGORIES = [
    "person", "bicycle", "car", "dog", "cat", "horse", "boat", "bench",
    "umbrella", "kite", "surfboard", "bottle", "cup", "pizza", "chair",
    "couch", "laptop", "clock", "vase", "book", "train", "truck", "sheep",
    "zebra", "giraffe", "backpack", "skateboard", "banana", "broccoli",
    "oven",
]

_CATEGORY_WEIGHT = 0.6
_IMAGE_JITTER = 1.10
_TEXT_JITTER = 0.25
#: Shared query-intent drift (see mitstates.py).
_QUERY_DRIFT_TEXT = 0.90
_QUERY_DRIFT_COMPOSED = 1.60
_SCENE_SIZE = 3


def make_mscoco(
    num_categories: int = 24,
    num_scenes: int = 900,
    num_queries: int = 200,
    latent_dim: int = 64,
    seed: int = 17,
) -> SemanticDataset:
    """Generate an MS-COCO-like three-modality :class:`SemanticDataset`."""
    require(num_categories >= _SCENE_SIZE + 2, "too few categories")
    require(
        num_categories <= len(COCO_CATEGORIES),
        f"at most {len(COCO_CATEGORIES)} named categories available",
    )
    space = LatentConceptSpace(latent_dim, derive_seed(seed, "mscoco-space"))
    categories = COCO_CATEGORIES[:num_categories]
    # Scene categories share visual context archetypes (indoor / street /
    # nature ...), making scene images strongly confusable — MS-COCO is the
    # paper's hardest corpus (Tab. VI).
    cat_lat = space.correlated_concepts(
        [f"coco:{c}" for c in categories],
        groups=5,
        unique_weight=0.50,
        key="coco-categories",
    )

    rng = spawn(seed, "mscoco-structure")
    # Scene = unordered set of _SCENE_SIZE distinct categories.
    scene_cats = np.stack(
        [
            np.sort(rng.choice(num_categories, size=_SCENE_SIZE, replace=False))
            for _ in range(num_scenes)
        ]
    )

    scene_raw = _CATEGORY_WEIGHT * cat_lat[scene_cats].sum(axis=1)
    image1 = space.jitter_batch(scene_raw, _IMAGE_JITTER, "obj-image1")
    image2 = space.jitter_batch(scene_raw, _IMAGE_JITTER, "obj-image2")
    caption = space.jitter_batch(scene_raw, _TEXT_JITTER, "obj-caption")

    object_labels = [
        "scene{" + ",".join(categories[c] for c in row) + "}"
        for row in scene_cats
    ]

    # Index scenes by each category they contain, and by full set for GT.
    contains: dict[int, list[int]] = {c: [] for c in range(num_categories)}
    by_set: dict[tuple[int, ...], list[int]] = {}
    for sid, row in enumerate(scene_cats):
        for c in row:
            contains[int(c)].append(sid)
        by_set.setdefault(tuple(int(c) for c in row), []).append(sid)

    # ---- queries -------------------------------------------------------
    qrng = spawn(seed, "mscoco-queries")
    reference_ids = np.empty(num_queries, dtype=np.int64)
    aux_image_raw = np.empty((num_queries, latent_dim))
    aux_text_raw = np.empty((num_queries, latent_dim))
    composed_raw = np.empty((num_queries, latent_dim))
    ground_truth: list[np.ndarray] = []
    query_labels: list[str] = []
    for qi in range(num_queries):
        gt_scene = int(qrng.integers(num_scenes))
        a, b, c = (int(x) for x in scene_cats[gt_scene])
        gt_ids = by_set[(a, b, c)]

        def pick_other(category: int) -> int:
            pool = [s for s in contains[category] if s not in gt_ids]
            if not pool:
                pool = [s for s in range(num_scenes) if s not in gt_ids]
            return int(qrng.choice(pool))

        # Reference 1 shares category a, reference 2 shares category b;
        # the text emphasises the remaining category c.
        reference_ids[qi] = pick_other(a)
        ref2 = pick_other(b)
        aux_image_raw[qi] = _CATEGORY_WEIGHT * cat_lat[scene_cats[ref2]].sum(axis=0)
        aux_text_raw[qi] = cat_lat[c] + 0.3 * (cat_lat[a] + cat_lat[b])
        composed_raw[qi] = _CATEGORY_WEIGHT * (
            cat_lat[a] + cat_lat[b] + cat_lat[c]
        )
        ground_truth.append(np.asarray(gt_ids, dtype=np.int64))
        query_labels.append(
            f"{object_labels[reference_ids[qi]]} + {object_labels[ref2]} "
            f"+ 'with {categories[c]}'"
        )

    drift = spawn(seed, "mscoco-query-drift").standard_normal(
        (num_queries, latent_dim)
    ) / np.sqrt(latent_dim)
    composed = space.jitter_batch(
        composed_raw + _QUERY_DRIFT_COMPOSED * drift, 0.0, None
    )
    aux_image = space.jitter_batch(aux_image_raw, _IMAGE_JITTER, "query-image2")
    aux_text = space.jitter_batch(
        aux_text_raw + _QUERY_DRIFT_TEXT * drift, _TEXT_JITTER, "query-text"
    )

    return SemanticDataset(
        name="MS-COCO",
        concept_space=space,
        object_latents=[image1, image2, caption],
        modality_kinds=("image", "image", "text"),
        query_aux_latents=[aux_image, aux_text],
        query_composed_latents=composed,
        ground_truth=ground_truth,
        query_reference_ids=reference_ids,
        object_labels=object_labels,
        query_labels=query_labels,
        extra={"categories": categories, "scene_cats": scene_cats},
    )
