"""Shopping100k-like corpus: fashion items with attribute-replacement queries.

Every object is a product image of one *category* (t-shirt, bottoms, …)
with colour / fabric / pattern attributes, plus a structured attribute
description (encoded near-losslessly by the ordinal ``encoding`` encoder,
as in the paper).  A query supplies a reference product and a text
instruction like "replace gray color with white color and replace sweat
fabric with jersey fabric" (Fig. 20/21); the ground truth is every product
of the same category with the target attribute triple.

The attribute description deliberately omits the category — category is
only visible in the image — which reproduces the paper's Tab. XX finding
that the auxiliary modality alone reaches only ≈0.1 Recall@1 (it cannot
separate a white-jersey t-shirt from white-jersey bottoms).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SemanticDataset
from repro.embedding.concepts import LatentConceptSpace
from repro.utils.rng import derive_seed, spawn
from repro.utils.validation import require

__all__ = ["make_shopping", "CATEGORIES", "COLORS", "FABRICS", "PATTERNS"]

CATEGORIES = ["t-shirt", "bottoms", "dress", "jacket"]
COLORS = ["gray", "white", "black", "red", "blue", "green", "yellow", "pink"]
FABRICS = ["sweat", "jersey", "denim", "silk", "wool"]
PATTERNS = ["plain", "striped", "print", "dotted", "floral", "checked"]

_CATEGORY_WEIGHT = 0.85
_COLOR_WEIGHT = 0.45
_FABRIC_WEIGHT = 0.32
_PATTERN_WEIGHT = 0.45
_IMAGE_JITTER = 0.65
_TEXT_JITTER = 0.40
#: Shared query-intent drift (see mitstates.py).
_QUERY_DRIFT_TEXT = 0.65
_QUERY_DRIFT_COMPOSED = 0.35


def make_shopping(
    query_category: str = "t-shirt",
    num_colors: int = 8,
    num_fabrics: int = 5,
    num_patterns: int = 6,
    instances_per_combo: int = 2,
    num_queries: int = 240,
    latent_dim: int = 64,
    seed: int = 13,
) -> SemanticDataset:
    """Generate a Shopping-like :class:`SemanticDataset`.

    The corpus enumerates every (category, colour, fabric, pattern) combo
    ``instances_per_combo`` times across all of :data:`CATEGORIES`; the
    query workload is restricted to *query_category*, matching the paper's
    per-category evaluations (Tab. V: T-shirt, Tab. XXI: Bottoms).
    """
    require(query_category in CATEGORIES, f"unknown category {query_category!r}")
    require(num_colors >= 2 and num_fabrics >= 2 and num_patterns >= 2,
            "need at least two values per attribute")
    space = LatentConceptSpace(latent_dim, derive_seed(seed, "shopping-space"))
    colors = COLORS[:num_colors]
    fabrics = FABRICS[:num_fabrics]
    patterns = PATTERNS[:num_patterns]

    # All garment categories share a silhouette archetype and colours share
    # shade families: product photos are highly confusable, which is what
    # drives the paper's low Shopping recalls (Tab. V/XXI).
    cat_lat = space.correlated_concepts(
        [f"category:{c}" for c in CATEGORIES],
        groups=1,
        unique_weight=0.60,
        key="categories",
    )
    color_lat = space.correlated_concepts(
        [f"color:{c}" for c in colors], groups=3, unique_weight=0.75, key="colors"
    )
    fabric_lat = space.concepts([f"fabric:{f}" for f in fabrics])
    pattern_lat = space.concepts([f"pattern:{p}" for p in patterns])

    # ---- corpus: full cross product ------------------------------------
    grids = np.meshgrid(
        np.arange(len(CATEGORIES)),
        np.arange(num_colors),
        np.arange(num_fabrics),
        np.arange(num_patterns),
        indexing="ij",
    )
    cat_idx, col_idx, fab_idx, pat_idx = [
        np.repeat(g.ravel(), instances_per_combo) for g in grids
    ]
    n = cat_idx.size

    image_raw = (
        _CATEGORY_WEIGHT * cat_lat[cat_idx]
        + _COLOR_WEIGHT * color_lat[col_idx]
        + _FABRIC_WEIGHT * fabric_lat[fab_idx]
        + _PATTERN_WEIGHT * pattern_lat[pat_idx]
    )
    image_latents = space.jitter_batch(image_raw, _IMAGE_JITTER, "obj-image")
    # Structured description: attributes only, category omitted.
    text_raw = color_lat[col_idx] + fabric_lat[fab_idx] + pattern_lat[pat_idx]
    text_latents = space.jitter_batch(text_raw, _TEXT_JITTER, "obj-text")

    object_labels = [
        f"{CATEGORIES[c]} ({colors[co]}, {fabrics[f]}, {patterns[p]})"
        for c, co, f, p in zip(cat_idx, col_idx, fab_idx, pat_idx)
    ]

    by_tuple: dict[tuple[int, int, int, int], list[int]] = {}
    for obj_id, key in enumerate(zip(cat_idx, col_idx, fab_idx, pat_idx)):
        by_tuple.setdefault(tuple(int(x) for x in key), []).append(obj_id)

    # ---- queries (within query_category) -------------------------------
    rng = spawn(seed, "shopping-queries")
    cat = CATEGORIES.index(query_category)
    reference_ids = np.empty(num_queries, dtype=np.int64)
    composed_raw = np.empty((num_queries, latent_dim))
    aux_raw = np.empty((num_queries, latent_dim))
    ground_truth: list[np.ndarray] = []
    query_labels: list[str] = []
    attr_sizes = (num_colors, num_fabrics, num_patterns)
    for qi in range(num_queries):
        ref_attrs = [int(rng.integers(size)) for size in attr_sizes]
        tgt_attrs = list(ref_attrs)
        # Replace one or two attributes, as in the paper's query examples.
        num_edits = int(rng.integers(1, 3))
        edited = rng.choice(3, size=num_edits, replace=False)
        for a in edited:
            choices = [v for v in range(attr_sizes[a]) if v != ref_attrs[a]]
            tgt_attrs[a] = int(rng.choice(choices))
        ref_key = (cat, *ref_attrs)
        tgt_key = (cat, *tgt_attrs)
        reference_ids[qi] = int(rng.choice(by_tuple[ref_key]))
        ground_truth.append(np.asarray(by_tuple[tgt_key], dtype=np.int64))
        composed_raw[qi] = (
            _CATEGORY_WEIGHT * cat_lat[cat]
            + _COLOR_WEIGHT * color_lat[tgt_attrs[0]]
            + _FABRIC_WEIGHT * fabric_lat[tgt_attrs[1]]
            + _PATTERN_WEIGHT * pattern_lat[tgt_attrs[2]]
        )
        aux_raw[qi] = (
            color_lat[tgt_attrs[0]]
            + fabric_lat[tgt_attrs[1]]
            + pattern_lat[tgt_attrs[2]]
        )
        names = (colors, fabrics, patterns)
        edits = ", ".join(
            f"replace {names[a][ref_attrs[a]]} with {names[a][tgt_attrs[a]]}"
            for a in sorted(int(e) for e in edited)
        )
        query_labels.append(f"{object_labels[reference_ids[qi]]} + '{edits}'")

    drift = spawn(seed, "shopping-query-drift").standard_normal(
        (num_queries, latent_dim)
    ) / np.sqrt(latent_dim)
    composed = space.jitter_batch(
        composed_raw + _QUERY_DRIFT_COMPOSED * drift, 0.0, None
    )
    aux_text = space.jitter_batch(
        aux_raw + _QUERY_DRIFT_TEXT * drift, _TEXT_JITTER, "query-text"
    )

    return SemanticDataset(
        name=f"Shopping ({query_category})",
        concept_space=space,
        object_latents=[image_latents, text_latents],
        modality_kinds=("image", "text"),
        query_aux_latents=[aux_text],
        query_composed_latents=composed,
        ground_truth=ground_truth,
        query_reference_ids=reference_ids,
        object_labels=object_labels,
        query_labels=query_labels,
        extra={
            "categories": CATEGORIES,
            "colors": colors,
            "fabrics": fabrics,
            "patterns": patterns,
        },
    )
