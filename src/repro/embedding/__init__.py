"""Embedding substrate: latent concept space + pluggable synthetic encoders.

See DESIGN.md §2 for the substitution rationale: the paper's pretrained
encoders are simulated by calibrated random-projection encoders whose
error structure reproduces the accuracy orderings of Tables III–VI.
"""

from repro.embedding.base import EncoderRegistry
from repro.embedding.concepts import LatentConceptSpace
from repro.embedding.fusion import (
    FUSION_SPECS,
    SyntheticCompositionEncoder,
    make_composition_encoder,
)
from repro.embedding.synthetic import (
    ENCODER_SPECS,
    SyntheticEncoder,
    make_unimodal_encoder,
)

#: Default registry preloaded with the full paper encoder zoo.
default_registry = EncoderRegistry()
for _name in ENCODER_SPECS:
    default_registry.register(
        _name,
        lambda space, seed, _n=_name: make_unimodal_encoder(_n, space, seed),
    )
for _name in FUSION_SPECS:
    default_registry.register(
        _name,
        lambda space, seed, _n=_name: make_composition_encoder(_n, space, seed),
    )

__all__ = [
    "EncoderRegistry",
    "LatentConceptSpace",
    "SyntheticEncoder",
    "SyntheticCompositionEncoder",
    "ENCODER_SPECS",
    "FUSION_SPECS",
    "make_unimodal_encoder",
    "make_composition_encoder",
    "default_registry",
]
