"""Encoder protocols and the pluggable registry (paper §V).

MUST's embedding component is pluggable: "allowing seamless integration of
any newly-devised encoder into the system".  The framework only requires
two capabilities, captured here as protocols:

* a **unimodal encoder** maps latent content matrices to L2-normalised
  output vectors;
* a **composition (multimodal) encoder** additionally fuses a target datum
  with auxiliary data into a single vector *in the target encoder's
  space* (Option 2 of Fig. 4(f)).

Any object implementing these methods can be registered, including
wrappers around real embedding APIs (the paper's §X mentions OpenAI and
Hugging Face embeddings as future plug-ins).
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.utils.validation import require

__all__ = ["UnimodalEncoder", "CompositionEncoder", "EncoderRegistry"]


@runtime_checkable
class UnimodalEncoder(Protocol):
    """Maps semantic latents to normalised vectors of dimension ``dim``."""

    name: str
    dim: int

    def encode_latents(
        self, latents: np.ndarray, key: object = None
    ) -> np.ndarray:
        """Encode a ``(n, L)`` latent matrix into ``(n, dim)`` unit rows."""
        ...


@runtime_checkable
class CompositionEncoder(Protocol):
    """Fuses target + auxiliary semantics into the target vector space."""

    name: str
    dim: int

    def encode_latents(
        self, latents: np.ndarray, key: object = None
    ) -> np.ndarray:
        """Corpus-side tower: encode target-modality latents."""
        ...

    def encode_composition(
        self,
        composed_latents: np.ndarray,
        reference_latents: np.ndarray,
        key: object = None,
    ) -> np.ndarray:
        """Query-side fusion of intended semantics with the reference."""
        ...


class EncoderRegistry:
    """Name → factory mapping for pluggable encoders.

    Factories receive ``(concept_space, seed)`` and return an encoder, so
    the same registry entry can serve many datasets deterministically.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable] = {}

    def register(self, name: str, factory: Callable, overwrite: bool = False) -> None:
        require(
            overwrite or name not in self._factories,
            f"encoder {name!r} already registered",
        )
        self._factories[name] = factory

    def create(self, name: str, concept_space, seed: int = 0):
        if name not in self._factories:
            raise KeyError(
                f"unknown encoder {name!r}; registered: {sorted(self._factories)}"
            )
        return self._factories[name](concept_space, seed)

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories
