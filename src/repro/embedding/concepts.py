"""Latent concept space — the semantic ground truth behind all encoders.

The paper's encoders (ResNet, LSTM, CLIP, …) map raw images/text into
vectors whose geometry reflects semantics.  Offline we cannot run those
networks, so we *simulate the semantics directly*: every named concept
(an identity, a noun, a state, an attribute value…) owns a fixed random
unit vector in a shared latent space.  The "true content" of a modality
datum is a weighted mixture of its concepts' latents, optionally jittered
per instance (two photos of the same moldy cheese differ slightly).

Synthetic encoders (:mod:`repro.embedding.synthetic`) then project these
latents into encoder-specific output spaces and add encoder-specific
noise.  Search quality differences between encoders — the quantity every
accuracy table in the paper measures — arise exactly as in the real
system: from how faithfully each encoder's output geometry preserves the
latent semantics.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.utils.rng import spawn
from repro.utils.validation import require

__all__ = ["LatentConceptSpace"]


class LatentConceptSpace:
    """Registry of deterministic unit latents for named concepts."""

    def __init__(self, latent_dim: int = 64, seed: int = 0):
        require(latent_dim >= 2, "latent_dim must be at least 2")
        self.latent_dim = int(latent_dim)
        self.seed = int(seed)
        self._cache: dict[str, np.ndarray] = {}

    def concept(self, name: str) -> np.ndarray:
        """The unit latent vector of *name* (stable across calls)."""
        vec = self._cache.get(name)
        if vec is None:
            rng = spawn(self.seed, "concept", name)
            raw = rng.standard_normal(self.latent_dim)
            vec = (raw / np.linalg.norm(raw)).astype(np.float64)
            vec.flags.writeable = False
            self._cache[name] = vec
        return vec

    def concepts(self, names: Sequence[str]) -> np.ndarray:
        """Stacked latents for a list of names, shape ``(len(names), L)``."""
        return np.stack([self.concept(n) for n in names])

    def mix(
        self,
        parts: Mapping[str, float] | Sequence[tuple[str, float]],
        jitter: float = 0.0,
        jitter_key: object = None,
    ) -> np.ndarray:
        """Unit-normalised weighted mixture of concept latents.

        ``jitter`` adds a deterministic instance-specific perturbation
        (keyed by *jitter_key*) before normalisation, modelling intra-class
        visual variation.  ``jitter`` is the expected *norm* of the
        perturbation (per-coordinate noise is scaled by ``1/√L``), so it is
        directly comparable to the unit-norm concept components.
        """
        items = parts.items() if isinstance(parts, Mapping) else parts
        out = np.zeros(self.latent_dim, dtype=np.float64)
        for name, weight in items:
            out += float(weight) * self.concept(name)
        if jitter > 0.0:
            rng = spawn(self.seed, "jitter", jitter_key)
            out += (
                jitter
                * rng.standard_normal(self.latent_dim)
                / np.sqrt(self.latent_dim)
            )
        norm = np.linalg.norm(out)
        require(norm > 0.0, "mixture collapsed to the zero vector")
        return out / norm

    def correlated_concepts(
        self,
        names: Sequence[str],
        groups: int,
        unique_weight: float = 0.6,
        key: object = None,
    ) -> np.ndarray:
        """Latents for *names* with archetype (group) correlation.

        Real-world classes are not orthogonal: faces share facial
        archetypes, garment categories share a garment silhouette, scene
        categories share visual context.  Each name is assigned one of
        *groups* archetypes and its latent is
        ``normalize(archetype + unique_weight · unique)``; smaller
        ``unique_weight`` means more confusable classes.  Assignment and
        latents are deterministic in the space seed and *key*.
        """
        require(groups >= 1, "need at least one group")
        require(unique_weight > 0.0, "unique_weight must be positive")
        rng = spawn(self.seed, "concept-groups", key)
        assignment = rng.integers(groups, size=len(names))
        out = np.empty((len(names), self.latent_dim))
        for i, name in enumerate(names):
            archetype = self.concept(f"archetype:{key}:{assignment[i]}")
            unique = self.concept(name)
            mixed = archetype + unique_weight * unique
            out[i] = mixed / np.linalg.norm(mixed)
        return out

    def jitter_batch(
        self, latents: np.ndarray, jitter: float, key: object
    ) -> np.ndarray:
        """Vectorised instance jitter for a whole latent matrix.

        Rows are perturbed independently (one deterministic draw per row)
        and re-normalised.  This is the bulk path used by the dataset
        generators.  As in :meth:`mix`, ``jitter`` is the expected *norm*
        of each row's perturbation.
        """
        latents = np.asarray(latents, dtype=np.float64)
        if jitter <= 0.0:
            return latents / np.linalg.norm(latents, axis=1, keepdims=True)
        rng = spawn(self.seed, "jitter-batch", key)
        noisy = latents + (
            jitter * rng.standard_normal(latents.shape) / np.sqrt(self.latent_dim)
        )
        return noisy / np.linalg.norm(noisy, axis=1, keepdims=True)
