"""Composition (multimodal) encoders: TIRG-, CLIP-, and MPC-like fusion.

A composition encoder fuses a target-modality input with auxiliary inputs
into a single vector living in the target tower's space (Fig. 4(f),
Option 2).  Real fusion networks suffer two error sources the paper
discusses (§I, §IV):

* **fusion noise** — the modality gap: the composed vector is only an
  approximation of the true composed semantics;
* **semantic leak** — the composition is biased towards the *reference*
  content instead of the *modified* content (Fig. 3's face ``c``: JE
  returned a face resembling the reference despite the text edit).

Both are explicit, calibrated parameters here, so the JE baseline fails in
exactly the way the paper documents while CLIP-like fusion fails less than
TIRG-like fusion (Tab. III/IV) and MPC-like three-way fusion fails most
(Tab. VI).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.concepts import LatentConceptSpace
from repro.embedding.synthetic import SyntheticEncoder
from repro.utils.validation import require

__all__ = ["SyntheticCompositionEncoder", "FUSION_SPECS", "make_composition_encoder"]


class SyntheticCompositionEncoder:
    """Tower + fusion simulation of a multimodal encoder."""

    def __init__(
        self,
        name: str,
        tower: SyntheticEncoder,
        fusion_noise: float,
        semantic_leak: float,
    ):
        require(0.0 <= semantic_leak < 1.0, "semantic_leak must be in [0, 1)")
        require(fusion_noise >= 0.0, "fusion_noise must be non-negative")
        self.name = name
        self.tower = tower
        self.fusion_noise = float(fusion_noise)
        self.semantic_leak = float(semantic_leak)

    @property
    def dim(self) -> int:
        return self.tower.dim

    @property
    def concept_space(self) -> LatentConceptSpace:
        return self.tower.concept_space

    def encode_latents(self, latents: np.ndarray, key: object = None) -> np.ndarray:
        """Corpus side: plain tower encoding of target-modality content."""
        return self.tower.encode_latents(latents, key=key)

    def encode_composition(
        self,
        composed_latents: np.ndarray,
        reference_latents: np.ndarray,
        key: object = None,
    ) -> np.ndarray:
        """Query side: fuse intended semantics with the reference input.

        ``composed_latents`` is the latent of the content the query *asks
        for* (reference modified by the auxiliary inputs);
        ``reference_latents`` is the latent of the raw reference input.
        The output drifts towards the reference by ``semantic_leak`` and
        carries ``fusion_noise`` on top of the tower's encoder noise.
        """
        composed = np.atleast_2d(np.asarray(composed_latents, dtype=np.float64))
        reference = np.atleast_2d(np.asarray(reference_latents, dtype=np.float64))
        require(
            composed.shape == reference.shape,
            "composed and reference latent shapes must match",
        )
        mixed = (1.0 - self.semantic_leak) * composed + self.semantic_leak * reference
        norms = np.linalg.norm(mixed, axis=1, keepdims=True)
        mixed = mixed / np.where(norms == 0.0, 1.0, norms)
        return self.tower.encode_latents(
            mixed, key=("fusion", key), extra_noise=self.fusion_noise
        )


@dataclass(frozen=True)
class FusionSpec:
    """Calibration record for one named composition encoder."""

    tower_dim: int
    tower_noise: float
    fusion_noise: float
    semantic_leak: float


#: Calibrated fusion zoo.  CLIP composes best (paper: highest JE accuracy),
#: TIRG leaks more towards the reference, MPC's three-way fusion is the
#: weakest (Tab. VI: JE/MPC far below MR/MUST).
FUSION_SPECS: dict[str, FusionSpec] = {
    "tirg": FusionSpec(
        tower_dim=96, tower_noise=0.65, fusion_noise=0.70, semantic_leak=0.40
    ),
    "clip": FusionSpec(
        tower_dim=128, tower_noise=0.50, fusion_noise=0.60, semantic_leak=0.30
    ),
    "mpc": FusionSpec(
        tower_dim=96, tower_noise=0.65, fusion_noise=1.30, semantic_leak=0.55
    ),
}


def make_composition_encoder(
    name: str, concept_space: LatentConceptSpace, seed: int = 0
) -> SyntheticCompositionEncoder:
    """Instantiate a zoo composition encoder by its paper name."""
    if name not in FUSION_SPECS:
        raise KeyError(
            f"unknown composition encoder {name!r}; available: "
            f"{sorted(FUSION_SPECS)}"
        )
    spec = FUSION_SPECS[name]
    tower = SyntheticEncoder(
        name=f"{name}-tower",
        concept_space=concept_space,
        dim=spec.tower_dim,
        noise=spec.tower_noise,
        seed=seed,
    )
    return SyntheticCompositionEncoder(
        name=name,
        tower=tower,
        fusion_noise=spec.fusion_noise,
        semantic_leak=spec.semantic_leak,
    )
