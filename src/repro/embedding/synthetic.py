"""Synthetic unimodal encoders standing in for the paper's encoder zoo.

A :class:`SyntheticEncoder` is a fixed random projection of the latent
concept space into an encoder-specific output space, plus deterministic
Gaussian *encoder noise* and L2 normalisation.  The noise magnitude is the
encoder's quality knob: it directly produces the encoder loss that the
paper's SME metric (Eq. 4) measures, so better simulated encoders yield
lower SME and higher recall exactly as in Tables III–VI.

Calibrated noise levels (kept in :data:`ENCODER_SPECS`) preserve the
paper's quality orderings, e.g. ``resnet50`` < ``resnet17`` (less noise is
better), ``lstm`` < ``transformer`` on compositional text, and the ordinal
``encoding`` of structured attribute strings being near-lossless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.concepts import LatentConceptSpace
from repro.utils.rng import spawn
from repro.utils.validation import require

__all__ = ["SyntheticEncoder", "ENCODER_SPECS", "make_unimodal_encoder"]


class SyntheticEncoder:
    """Random-projection encoder with calibrated output noise."""

    def __init__(
        self,
        name: str,
        concept_space: LatentConceptSpace,
        dim: int,
        noise: float,
        seed: int = 0,
    ):
        require(dim >= 2, "encoder output dim must be at least 2")
        require(noise >= 0.0, "encoder noise must be non-negative")
        self.name = name
        self.dim = int(dim)
        self.noise = float(noise)
        self.concept_space = concept_space
        self.seed = int(seed)
        rng = spawn(seed, "encoder-projection", name)
        # Scaled Gaussian projection approximately preserves latent angles
        # (Johnson–Lindenstrauss), so semantic neighbourhoods survive.
        self._projection = rng.standard_normal(
            (concept_space.latent_dim, self.dim)
        ) / np.sqrt(self.dim)

    def encode_latents(
        self,
        latents: np.ndarray,
        key: object = None,
        extra_noise: float = 0.0,
    ) -> np.ndarray:
        """Encode a ``(n, L)`` latent matrix to normalised ``(n, dim)``.

        *key* seeds the per-call noise stream, making encodings
        deterministic: re-encoding the same content with the same key
        yields bit-identical vectors (as a frozen network would).
        ``extra_noise`` is used by composition encoders to model the
        additional fusion error on top of the tower's own loss.
        """
        latents = np.atleast_2d(np.asarray(latents, dtype=np.float64))
        out = latents @ self._projection
        sigma = float(np.hypot(self.noise, extra_noise))
        if sigma > 0.0:
            rng = spawn(self.seed, "encoder-noise", self.name, key)
            out = out + sigma * rng.standard_normal(out.shape) / np.sqrt(self.dim)
        norms = np.linalg.norm(out, axis=1, keepdims=True)
        norms = np.where(norms == 0.0, 1.0, norms)
        return (out / norms).astype(np.float32)

    def encode_one(self, latent: np.ndarray, key: object = None) -> np.ndarray:
        """Single-vector convenience wrapper around :meth:`encode_latents`."""
        return self.encode_latents(latent[None, :], key=key)[0]


@dataclass(frozen=True)
class EncoderSpec:
    """Calibration record for one named encoder."""

    dim: int
    noise: float
    modality_kind: str  # documentation only: image / text / audio / video


#: Paper encoder zoo with calibrated quality (lower noise = better encoder).
#: The orderings mirror the paper's accuracy tables: resnet50 beats
#: resnet17, lstm beats transformer on state-edit text, ordinal encoding of
#: structured attributes is near-exact, gru sits between lstm and
#: transformer.
ENCODER_SPECS: dict[str, EncoderSpec] = {
    "resnet17": EncoderSpec(dim=64, noise=0.95, modality_kind="image"),
    "resnet50": EncoderSpec(dim=128, noise=0.60, modality_kind="image"),
    "lstm": EncoderSpec(dim=48, noise=0.48, modality_kind="text"),
    "transformer": EncoderSpec(dim=48, noise=1.20, modality_kind="text"),
    "gru": EncoderSpec(dim=48, noise=0.85, modality_kind="text"),
    "encoding": EncoderSpec(dim=32, noise=0.12, modality_kind="text"),
    "audio-mfcc": EncoderSpec(dim=96, noise=0.45, modality_kind="audio"),
    "video-keyframe": EncoderSpec(dim=96, noise=0.55, modality_kind="video"),
    "deep-cnn": EncoderSpec(dim=96, noise=0.45, modality_kind="image"),
}


def make_unimodal_encoder(
    name: str, concept_space: LatentConceptSpace, seed: int = 0
) -> SyntheticEncoder:
    """Instantiate a zoo encoder by its paper name."""
    if name not in ENCODER_SPECS:
        raise KeyError(
            f"unknown unimodal encoder {name!r}; available: "
            f"{sorted(ENCODER_SPECS)}"
        )
    spec = ENCODER_SPECS[name]
    return SyntheticEncoder(
        name=name,
        concept_space=concept_space,
        dim=spec.dim,
        noise=spec.noise,
        seed=seed,
    )
