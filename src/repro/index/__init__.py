"""Proximity-graph indexing and joint search (paper §VII).

* :class:`FusedIndexBuilder` — the paper's component-based pipeline
  (Algorithm 1), producing the re-assembled "Ours" index.
* :func:`joint_search` — the merging-free joint search (Algorithm 2) with
  the Lemma-4 multi-vector computation optimisation.
* :mod:`repro.index.graphs` — KGraph / NSG / NSSG / HNSW / Vamana / HCNNG
  for the Fig. 10 ablation.
* :class:`FlatIndex` — exact brute force (the MUST-- reference),
  deletion-aware and GEMM-batched.
* :class:`Scorer` / :func:`batch_score_all` — the unified scoring engine
  every search path (graph engines, flat scan, baselines) routes through.
* :class:`BatchExecutor` — batched / thread-parallel query execution with
  per-query child seeds and aggregated per-batch stats.
* :class:`SegmentedIndex` — the §IX dynamic-update subsystem: streaming
  inserts into a mutable delta segment, sealed immutable segments, and
  automatic compaction under a :class:`SegmentPolicy`.
"""

from repro.index.base import GraphIndex
from repro.index.executor import BatchExecutor, BatchResult
from repro.index.flat import FlatIndex
from repro.index.graphs import (
    HCNNGBuilder,
    HNSWBuilder,
    KGraphBuilder,
    NSGBuilder,
    NSSGBuilder,
    VamanaBuilder,
)
from repro.index.nndescent import graph_quality, nndescent, random_knn
from repro.index.pipeline import FusedIndexBuilder
from repro.index.scoring import MatrixScorer, Scorer, batch_score_all
from repro.index.search import greedy_search_graph, joint_search
from repro.index.segments import Segment, SegmentedIndex, SegmentPolicy

BUILDERS = {
    "ours": FusedIndexBuilder,
    "kgraph": KGraphBuilder,
    "nsg": NSGBuilder,
    "nssg": NSSGBuilder,
    "hnsw": HNSWBuilder,
    "vamana": VamanaBuilder,
    "hcnng": HCNNGBuilder,
}

__all__ = [
    "GraphIndex",
    "FlatIndex",
    "SegmentedIndex",
    "SegmentPolicy",
    "Segment",
    "BatchExecutor",
    "BatchResult",
    "Scorer",
    "MatrixScorer",
    "batch_score_all",
    "FusedIndexBuilder",
    "KGraphBuilder",
    "NSGBuilder",
    "NSSGBuilder",
    "HNSWBuilder",
    "VamanaBuilder",
    "HCNNGBuilder",
    "BUILDERS",
    "graph_quality",
    "nndescent",
    "random_knn",
    "joint_search",
    "greedy_search_graph",
]
