"""Graph index container shared by every proximity-graph algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.multivector import MultiVectorSet
from repro.core.space import JointSpace
from repro.store import make_store
from repro.utils.io import load_arrays, pack_adjacency, save_arrays, unpack_adjacency
from repro.utils.validation import require

__all__ = ["GraphIndex", "reseat_on_store"]


def reseat_on_store(
    index: "GraphIndex", compression: str, store_options: dict | None = None
) -> "GraphIndex":
    """Swap a built graph's serving representation for a compressed store.

    The routing graph is untouched; the space is rebound to a
    :func:`~repro.store.make_store` encoding of the current vectors'
    exact tier, under the same weights.  ``compression="none"`` is a
    no-op.  The single seam every layer (framework build, segment
    seal/compact, benchmarks) uses to compress a finished index.
    """
    if compression == "none":
        return index
    vectors = index.space.vectors
    store = make_store(
        compression,
        [vectors.exact_modality(i) for i in range(vectors.num_modalities)],
        **(store_options or {}),
    )
    # The attribute table, sparse plane, and metric declaration ride
    # along: compression changes the dense vector representation, never
    # which objects a filter admits or how lexical rows score.
    index.space = JointSpace(
        MultiVectorSet.from_store(
            store,
            attributes=vectors.attributes,
            sparse=vectors.sparse,
            metrics=vectors.declared_metrics,
        ),
        index.space.weights,
    )
    return index


@dataclass
class GraphIndex:
    """A directed proximity graph over a joint similarity space.

    ``neighbors[v]`` lists the out-neighbours of vertex ``v``; the searcher
    (Algorithm 2) greedily routes from ``seed_vertex``.  The same container
    serves the fused MUST index and every single-modality index the MR
    baseline builds.
    """

    space: JointSpace
    neighbors: list[np.ndarray]
    seed_vertex: int
    name: str = "graph"
    build_seconds: float = 0.0
    meta: dict = field(default_factory=dict)
    #: data-status bitset (paper §IX): True marks a soft-deleted vertex.
    #: Deleted vertices keep routing traffic (they may be essential for
    #: connectivity) but are excluded from results until reconstruction.
    deleted: np.ndarray | None = None

    def __post_init__(self) -> None:
        require(
            len(self.neighbors) == self.space.n,
            f"adjacency covers {len(self.neighbors)} vertices, space has "
            f"{self.space.n}",
        )
        require(
            0 <= self.seed_vertex < self.space.n,
            "seed vertex out of range",
        )
        self.neighbors = [
            np.asarray(adj, dtype=np.int32) for adj in self.neighbors
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.space.n

    @property
    def num_edges(self) -> int:
        return int(sum(len(adj) for adj in self.neighbors))

    def degree_stats(self) -> dict[str, float]:
        """Min / mean / max out-degree — the paper's γ bounds the max."""
        degrees = np.asarray([len(adj) for adj in self.neighbors])
        return {
            "min": float(degrees.min()),
            "mean": float(degrees.mean()),
            "max": float(degrees.max()),
        }

    def size_in_bytes(self) -> int:
        """Index size (adjacency only, as in the paper's Fig. 7(b)).

        The vector payload is shared by every method, so index-size
        comparisons count the graph structure: 4 bytes per edge plus the
        offsets array.
        """
        return self.num_edges * 4 + (self.n + 1) * 8

    def validate(self) -> None:
        """Structural sanity: ids in range, no self-loops, seed alive.

        A soft-deleted seed still routes traffic, but an index meant to
        *serve* (a sealed segment, a freshly compacted graph) must keep
        an active entry point — deleting it is legal mid-stream and is
        repaired by the next compaction, so this check belongs at
        seal/compact transitions rather than inside :meth:`mark_deleted`.
        """
        for v, adj in enumerate(self.neighbors):
            if adj.size == 0:
                continue
            require(bool((adj >= 0).all() and (adj < self.n).all()),
                    f"vertex {v} has out-of-range neighbour ids")
            require(bool((adj != v).all()), f"vertex {v} has a self-loop")
        require(
            self.deleted is None or not bool(self.deleted[self.seed_vertex]),
            f"seed vertex {self.seed_vertex} is soft-deleted",
        )

    # ------------------------------------------------------------------
    # Dynamic updates (paper §IX)
    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        if self.deleted is None:
            return self.n
        return int(self.n - self.deleted.sum())

    def mark_deleted(self, ids: np.ndarray) -> None:
        """Soft-delete objects via the data-status bitset.

        The vertices stay in the graph — removing them could disconnect
        regions — and are filtered out of search results; call a builder
        on the active subset (:meth:`active_ids`) to reconstruct.
        """
        ids = np.asarray(ids, dtype=np.int64)
        require(
            bool((ids >= 0).all() and (ids < self.n).all()),
            "deleted ids out of range",
        )
        if self.deleted is None:
            self.deleted = np.zeros(self.n, dtype=bool)
        self.deleted[ids] = True
        require(self.num_active > 0, "cannot delete every object")

    def active_ids(self) -> np.ndarray:
        """Ids of all non-deleted objects (for reconstruction)."""
        if self.deleted is None:
            return np.arange(self.n, dtype=np.int64)
        return np.flatnonzero(~self.deleted).astype(np.int64)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Serialise the graph structure (not the vectors) to ``.npz``."""
        flat, offsets = pack_adjacency(self.neighbors)
        arrays = {"flat": flat, "offsets": offsets}
        if self.deleted is not None:
            arrays["deleted"] = self.deleted
        save_arrays(
            path,
            metadata={
                "name": self.name,
                "seed_vertex": int(self.seed_vertex),
                "build_seconds": float(self.build_seconds),
                "meta": {
                    k: v
                    for k, v in self.meta.items()
                    if isinstance(v, (str, int, float, bool))
                    or (
                        isinstance(v, (list, tuple))
                        and all(isinstance(x, (str, int, float, bool)) for x in v)
                    )
                    or (
                        isinstance(v, dict)
                        and all(
                            isinstance(x, (str, int, float, bool))
                            for x in v.values()
                        )
                    )
                },
            },
            **arrays,
        )

    @classmethod
    def from_arrays(
        cls, metadata: dict, arrays: dict[str, np.ndarray], space: JointSpace
    ) -> "GraphIndex":
        """Rebuild a graph from already-loaded archive contents.

        Lets callers that need to inspect the metadata first (e.g. to
        restore stored weights before constructing *space*) avoid a
        second read of the archive — :meth:`load` is this plus the I/O.
        """
        neighbors = unpack_adjacency(arrays["flat"], arrays["offsets"])
        deleted = arrays.get("deleted")
        return cls(
            space=space,
            neighbors=neighbors,
            seed_vertex=int(metadata["seed_vertex"]),
            name=str(metadata["name"]),
            build_seconds=float(metadata["build_seconds"]),
            meta=dict(metadata.get("meta", {})),
            deleted=None if deleted is None else deleted.astype(bool),
        )

    @classmethod
    def load(cls, path: str | Path, space: JointSpace) -> "GraphIndex":
        """Load a graph saved by :meth:`save`, rebinding it to *space*."""
        metadata, arrays = load_arrays(path)
        return cls.from_arrays(metadata, arrays, space)
