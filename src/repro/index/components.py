"""Fine-grained index-construction components (paper §VII-A, ①–⑤).

The pipeline decomposes proximity-graph construction into five pluggable
stages; re-assembling stages from different published algorithms is the
paper's component-based construction idea (Fig. 10 shows the re-assembled
"Ours" variant beating each original).  Each component here is a small
strategy object so alternative graphs (:mod:`repro.index.graphs`) can mix
and match them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.space import JointSpace
from repro.index.nndescent import nndescent, random_knn
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = [
    "two_hop_candidates",
    "search_based_candidates",
    "mrng_select",
    "rng_alpha_select",
    "angle_select",
    "top_gamma_select",
    "prune_one",
    "centroid_seed",
    "ensure_connectivity",
]


# ----------------------------------------------------------------------
# ② Candidate acquisition
# ----------------------------------------------------------------------
def two_hop_candidates(
    space: JointSpace,
    knn: np.ndarray,
    max_candidates: int = 64,
    block_size: int = 128,
) -> tuple[np.ndarray, np.ndarray]:
    """Candidates = own neighbours ∪ their neighbours (Algorithm 1, l.9-10).

    Returns ``(cand, sims)`` with shape ``(n, max_candidates)`` each,
    candidates sorted by descending joint similarity.  Rows are padded
    with ``-1`` when a vertex has fewer distinct candidates.  Capping at
    ``max_candidates`` keeps neighbour selection tractable while keeping
    the closest (= the only ones selection can pick) candidates.
    """
    from repro.index.nndescent import block_candidate_sims

    n, k = knn.shape
    concat = space.concatenated
    cand_out = np.full((n, max_candidates), -1, dtype=np.int32)
    sim_out = np.full((n, max_candidates), -np.inf, dtype=np.float32)
    for start in range(0, n, block_size):
        block = np.arange(start, min(start + block_size, n))
        cand_s, sims_s = block_candidate_sims(concat, knn, block)
        width = min(max_candidates, cand_s.shape[1])
        top = np.argpartition(-sims_s, width - 1, axis=1)[:, :width]
        top_sims = np.take_along_axis(sims_s, top, axis=1)
        top_cand = np.take_along_axis(cand_s, top, axis=1)
        rank = np.argsort(-top_sims, axis=1, kind="stable")
        sim_out[block, :width] = np.take_along_axis(top_sims, rank, axis=1)
        cand_out[block, :width] = np.take_along_axis(top_cand, rank, axis=1)
    cand_out[~np.isfinite(sim_out)] = -1
    return cand_out, sim_out


def search_based_candidates(
    space: JointSpace,
    knn: np.ndarray,
    entry: int,
    max_candidates: int = 64,
    beam: int = 64,
) -> tuple[np.ndarray, np.ndarray]:
    """NSG-style candidates: vertices visited while greedily searching for
    each vertex from a fixed entry point on the current KNN graph.

    Slower than :func:`two_hop_candidates` but yields candidates spread
    along the search path, which is what NSG's selection expects.
    """
    from repro.index.search import greedy_search_graph

    n = knn.shape[0]
    concat = space.concatenated
    cand_out = np.full((n, max_candidates), -1, dtype=np.int32)
    sim_out = np.full((n, max_candidates), -np.inf, dtype=np.float32)
    neighbors = [knn[v] for v in range(n)]
    for v in range(n):
        visited_ids, visited_sims = greedy_search_graph(
            concat, neighbors, entry, concat[v], beam
        )
        keep = visited_ids != v
        visited_ids, visited_sims = visited_ids[keep], visited_sims[keep]
        width = min(max_candidates, visited_ids.size)
        order = np.argsort(-visited_sims, kind="stable")[:width]
        cand_out[v, :width] = visited_ids[order]
        sim_out[v, :width] = visited_sims[order]
    return cand_out, sim_out


# ----------------------------------------------------------------------
# ③ Neighbour selection
# ----------------------------------------------------------------------
def mrng_select(
    space: JointSpace,
    cand: np.ndarray,
    sims: np.ndarray,
    gamma: int,
) -> list[np.ndarray]:
    """MRNG selection (Algorithm 1, l.11-17; Lemma 2 diversification).

    For each vertex the closest candidate is taken unconditionally; a
    further candidate ``v`` is kept only if it is closer to the vertex
    than to every already-selected neighbour (``IP(ô,v̂) > IP(û,v̂)`` for
    all selected ``u``), which spreads neighbours at pairwise angles of
    at least 60° (Lemma 2).
    """
    return _prune_select(space, cand, sims, gamma, alpha=1.0)


def rng_alpha_select(
    space: JointSpace,
    cand: np.ndarray,
    sims: np.ndarray,
    gamma: int,
    alpha: float = 1.2,
) -> list[np.ndarray]:
    """Vamana's α-relaxed RNG pruning (DiskANN).

    ``alpha > 1`` keeps more long-range edges than strict MRNG: a
    candidate is rejected only when some selected neighbour is *α times
    closer* to it (in squared-distance terms) than the vertex is.
    """
    return _prune_select(space, cand, sims, gamma, alpha=alpha)


def _greedy_by_domination(dominated: np.ndarray, gamma: int) -> list[int]:
    """Greedy pick of candidate rows none of whose chosen peers dominate it.

    ``dominated[j, u]`` is True when candidate ``u``, if already selected,
    blocks candidate ``j``.  Rows are assumed similarity-sorted (closest
    first); the first row is always taken.  Bitmask encoding turns the
    inner "any selected dominates j?" check into one Python int AND,
    which is what makes γ-selection tractable in pure Python.
    """
    c = dominated.shape[0]
    packed = np.packbits(dominated, axis=1)  # big-endian bits within bytes
    total_bits = packed.shape[1] * 8
    blockers = [int.from_bytes(row.tobytes(), "big") for row in packed]
    # Bit for candidate j sits at position total_bits − 1 − j.
    selected = [0]
    selected_mask = 1 << (total_bits - 1)
    for j in range(1, c):
        if len(selected) >= gamma:
            break
        if not (blockers[j] & selected_mask):
            selected.append(j)
            selected_mask |= 1 << (total_bits - 1 - j)
    return selected


def prune_one(
    concat: np.ndarray,
    total: float,
    ids: np.ndarray,
    sims: np.ndarray,
    gamma: int,
    alpha: float = 1.0,
) -> np.ndarray:
    """α-RNG pruning of one vertex's candidate list (similarity-sorted).

    Shared by the pipeline's MRNG stage (α=1), Vamana's α-pruning, and
    HNSW's neighbour-selection heuristic.  ``ids``/``sims`` must be in
    descending-similarity order.
    """
    if ids.size == 0:
        return np.empty(0, dtype=np.int32)
    vecs = concat[ids]
    cc = (vecs @ vecs.T).astype(np.float64)  # candidate↔candidate IP
    # Squared distances via d² = 2S − 2·IP (all concatenated vectors
    # share the norm √S), so the α-pruning rule is expressible in IP.
    d_v = 2.0 * total - 2.0 * sims.astype(np.float64)  # vertex↔candidate
    d_cc = 2.0 * total - 2.0 * cc  # candidate ↔ candidate
    # u blocks j when u is α× closer to j than the vertex is
    # (α=1 is exactly MRNG / Algorithm 1 line 16).
    dominated = (alpha * alpha) * d_cc <= d_v[:, None]
    np.fill_diagonal(dominated, False)
    selected = _greedy_by_domination(dominated, gamma)
    return ids[np.asarray(selected)].astype(np.int32)


def _prune_select(
    space: JointSpace,
    cand: np.ndarray,
    sims: np.ndarray,
    gamma: int,
    alpha: float,
) -> list[np.ndarray]:
    require(gamma >= 1, "gamma must be at least 1")
    concat = space.concatenated
    total = space.weights.total  # ‖x̂‖² for every fully-present object
    out: list[np.ndarray] = []
    for v in range(cand.shape[0]):
        row = cand[v]
        valid = row >= 0
        ids = row[valid]
        out.append(prune_one(concat, total, ids, sims[v][valid], gamma, alpha))
    return out


def angle_select(
    space: JointSpace,
    cand: np.ndarray,
    sims: np.ndarray,
    gamma: int,
    min_angle_deg: float = 60.0,
) -> list[np.ndarray]:
    """NSSG-style selection: enforce a minimum *angle* between the edges
    ``(o→u)`` and ``(o→v)`` of any two selected neighbours.
    """
    concat = space.concatenated
    cos_threshold = float(np.cos(np.deg2rad(min_angle_deg)))
    out: list[np.ndarray] = []
    for v in range(cand.shape[0]):
        row = cand[v]
        ids = row[row >= 0]
        if ids.size == 0:
            out.append(np.empty(0, dtype=np.int32))
            continue
        edges = concat[ids] - concat[v]
        norms = np.linalg.norm(edges, axis=1)
        norms[norms == 0.0] = 1.0
        edges = edges / norms[:, None]
        dominated = (edges @ edges.T) >= cos_threshold
        np.fill_diagonal(dominated, False)
        selected = _greedy_by_domination(dominated, gamma)
        out.append(ids[np.asarray(selected)].astype(np.int32))
    return out


def top_gamma_select(
    cand: np.ndarray, sims: np.ndarray, gamma: int
) -> list[np.ndarray]:
    """No diversification: simply the γ most similar candidates (KGraph)."""
    out: list[np.ndarray] = []
    for v in range(cand.shape[0]):
        row = cand[v]
        ids = row[row >= 0]
        out.append(ids[:gamma].astype(np.int32))
    return out


# ----------------------------------------------------------------------
# ④ Seed preprocessing / ⑤ Connectivity
# ----------------------------------------------------------------------
def centroid_seed(space: JointSpace) -> int:
    """The vertex nearest the centroid of all concatenated vectors."""
    return space.centroid_id()


def ensure_connectivity(
    space: JointSpace,
    neighbors: list[np.ndarray],
    seed_vertex: int,
) -> list[np.ndarray]:
    """⑤ BFS from the seed; bridge any unreachable region (Alg. 1, l.19).

    When BFS stalls, the nearest *visited* vertex to some unvisited vertex
    receives an extra edge to it, and BFS resumes — guaranteeing every
    vertex is reachable from the seed, which Lemma 3's greedy routing
    needs to be able to reach any answer.
    """
    n = space.n
    concat = space.concatenated
    neighbors = [adj.copy() for adj in neighbors]
    visited = np.zeros(n, dtype=bool)

    def bfs(start: int) -> None:
        queue = deque([start])
        visited[start] = True
        while queue:
            v = queue.popleft()
            for u in neighbors[v]:
                if not visited[u]:
                    visited[u] = True
                    queue.append(int(u))

    bfs(seed_vertex)
    while not visited.all():
        orphan = int(np.flatnonzero(~visited)[0])
        reached = np.flatnonzero(visited)
        sims = concat[reached] @ concat[orphan]
        bridge = int(reached[np.argmax(sims)])
        neighbors[bridge] = np.append(neighbors[bridge], np.int32(orphan))
        bfs(orphan)
    return neighbors
