"""Batched and parallel query execution over one index.

:class:`BatchExecutor` is the throughput layer every batch entry point
(:meth:`MUST.batch_search`, the baselines' batch paths, the QPS
harness) shares.  Two execution strategies, both returning per-query
:class:`~repro.core.results.SearchResult` objects in input order plus a
batch-aggregated :class:`~repro.core.results.SearchStats`:

* **Flat wave** (:meth:`run_flat`) — all fast-path queries in the batch
  are stacked and scored against the whole corpus with a single GEMM
  (:func:`~repro.index.scoring.batch_score_all`) instead of one GEMV
  scan per query.
* **Graph pool** (:meth:`run_graph`) — graph search is control-flow
  heavy, so queries run concurrently on a thread pool.  Each task is a
  stateless per-query searcher (its own scorer, heaps, and stats), the
  index and corpus are shared read-only, and the heavy scoring kernels
  release the GIL inside BLAS — the preconditions that make the pool
  both safe and useful.  In practice the beam loop is too Python-heavy
  for the pool to win (measured 0.88–0.95× on graph batches), which is
  why the default plan now routes graph batches to the wave engine.
* **Graph wave** (:meth:`run_graph_wave`) — the lockstep batched beam
  search of :func:`~repro.index.graph_wave.graph_wave_search`: every
  wave scores all queries' frontiers in one stacked call, the batch
  default selected by ``SearchOptions(engine="auto")``.

Every strategy records the plan it actually executed in
:attr:`BatchResult.plan`, so benchmarks can assert which path ran
instead of trusting the configuration.

Determinism: each query draws its init vertices from its own
:class:`numpy.random.SeedSequence` child
(:func:`~repro.utils.rng.spawn_seed_sequences`), so a batch is exactly
reproducible from ``rng`` **and** bit-identical whether it runs on one
thread or many — scheduling only changes completion order, never a
query's arithmetic.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.multivector import MultiVector
from repro.core.query import Query, SearchOptions
from repro.core.results import SearchResult, SearchStats
from repro.core.weights import Weights
from repro.index.base import GraphIndex
from repro.utils.parallel import resolve_n_jobs, thread_map
from repro.utils.rng import spawn_seed_sequences

__all__ = ["BatchResult", "BatchExecutor"]

logger = logging.getLogger(__name__)

#: a batch entry: raw multi-vector or typed query (per-query
#: weights/filter/k ride inside and are unpacked by the search layers).
QueryLike = MultiVector | Query


@dataclass
class BatchResult:
    """One batch's answers: a sequence of per-query results + total work.

    Behaves like the plain ``list[SearchResult]`` the sequential loop
    used to return (len / iteration / indexing), with the aggregated
    batch counters on :attr:`stats`.  :attr:`plan` names the execution
    strategy that actually ran (e.g. ``"graph/wave"``,
    ``"graph/pool(n_jobs=4)"``, ``"exact/gemm"``) so callers and
    benchmarks can assert the chosen path instead of inferring it.
    """

    results: list[SearchResult]
    stats: SearchStats = field(default_factory=SearchStats)
    plan: str = ""

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i):
        return self.results[i]


class BatchExecutor:
    """Runs many queries over one index, batched and optionally parallel.

    ``n_jobs`` follows the scikit-learn convention (``1`` sequential,
    ``-1`` all cores); ``rng`` seeds the whole batch — per-query child
    seeds are derived from it.
    """

    def __init__(self, n_jobs: int = 1, rng: int | None = 0):
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.rng = rng

    @classmethod
    def from_options(cls, options: SearchOptions) -> "BatchExecutor":
        """Executor configured by a typed plan (``n_jobs`` + ``rng``)."""
        return cls(n_jobs=options.n_jobs, rng=options.rng)

    # ------------------------------------------------------------------
    # Graph path
    # ------------------------------------------------------------------
    def run_graph(
        self,
        index: GraphIndex,
        queries: list[QueryLike],
        k: int,
        l: int,
        weights: Weights | None = None,
        early_termination: bool = False,
        engine: str = "heap",
        **search_kwargs,
    ) -> BatchResult:
        """Thread-pooled :func:`~repro.index.search.joint_search` batch."""
        from repro.index.search import joint_search

        queries = list(queries)
        seeds = spawn_seed_sequences(self.rng, len(queries))
        # Touch the lazy concatenated matrix once so pool workers never
        # race to materialise it (compressed stores have none — their
        # per-query kernels are thread-local by construction).
        if not index.space.is_compressed:
            index.space.concatenated
        # Shared per-wave cache: queries reusing one Filter instance
        # compile it once, not once per query (safe across pool threads).
        memo: dict = {}

        def one(task: tuple[QueryLike, np.random.SeedSequence]) -> SearchResult:
            query, seed = task
            return joint_search(
                index,
                query,
                k=k,
                l=l,
                weights=weights,
                early_termination=early_termination,
                engine=engine,
                rng=np.random.default_rng(seed),
                filter_memo=memo,
                **search_kwargs,
            )

        results = thread_map(one, zip(queries, seeds), n_jobs=self.n_jobs)
        plan = f"graph/pool(n_jobs={self.n_jobs})"
        logger.debug("batch plan: %s (%d queries)", plan, len(queries))
        return BatchResult(
            results, SearchStats.aggregate(r.stats for r in results),
            plan=plan,
        )

    def run_graph_wave(
        self,
        index: GraphIndex,
        queries: list[QueryLike],
        k: int,
        l: int,
        weights: Weights | None = None,
        early_termination: bool = False,
        refine: int | None = None,
        check_monotone: bool = False,
    ) -> BatchResult:
        """Lockstep batched graph search — one stacked scoring call per
        wave (:func:`~repro.index.graph_wave.graph_wave_search`).

        Per-query child seeds are spawned from ``rng`` exactly as in
        :meth:`run_graph`, and the engine is single-threaded vectorised
        code, so results are independent of ``n_jobs`` by construction.
        The batch stats aggregate the per-query counters and fold in
        the wave-level ``waves``/``frontier_sizes`` trace.
        """
        from repro.index.graph_wave import graph_wave_search

        queries = list(queries)
        results, wave_stats = graph_wave_search(
            index,
            queries,
            k=k,
            l=l,
            weights=weights,
            early_termination=early_termination,
            rng=self.rng,
            refine=refine,
            check_monotone=check_monotone,
            filter_memo={},
        )
        stats = SearchStats.aggregate(r.stats for r in results)
        stats.merge(wave_stats)
        plan = "graph/wave"
        logger.debug(
            "batch plan: %s (%d queries, %d waves)",
            plan, len(queries), wave_stats.waves,
        )
        return BatchResult(results, stats, plan=plan)

    # ------------------------------------------------------------------
    # Segmented path
    # ------------------------------------------------------------------
    def run_segmented(
        self,
        segmented,
        queries: list[QueryLike],
        k: int,
        l: int = 100,
        weights: Weights | None = None,
        early_termination: bool = False,
        engine: str = "heap",
        exact: bool = False,
        refine: int | None = None,
        sparse_engine: str = "auto",
        **search_kwargs,
    ) -> BatchResult:
        """Batch over a :class:`~repro.index.segments.SegmentedIndex`
        (or any :class:`~repro.index.segments.SegmentView`, e.g. a
        frozen serving snapshot — both expose the same search surface).

        The graph path pools cross-segment searches exactly like
        :meth:`run_graph` — each query gets its own SeedSequence child,
        from which the segmented index spawns per-segment grandchildren,
        so results stay bit-identical for any ``n_jobs``.  The exact path
        runs one GEMM wave per segment and merges per query.  ``refine``
        enables the two-stage full-precision rerank on either path.
        """
        queries = list(queries)
        if exact:
            results = segmented.exact_batch(
                queries, k, weights=weights, refine=refine,
                sparse_engine=sparse_engine,
            )
            return BatchResult(
                results, SearchStats.aggregate(r.stats for r in results),
                plan="exact/segment-gemm",
            )
        if engine == "wave":
            segmented.prepare_search()
            results, wave_stats = segmented.graph_wave(
                queries,
                k=k,
                l=l,
                weights=weights,
                early_termination=early_termination,
                rng=self.rng,
                refine=refine,
                sparse_engine=sparse_engine,
                **search_kwargs,
            )
            stats = SearchStats.aggregate(r.stats for r in results)
            stats.merge(wave_stats)
            plan = "graph/wave"
            logger.debug(
                "batch plan: %s (%d queries, %d segment waves)",
                plan, len(queries), wave_stats.waves,
            )
            return BatchResult(results, stats, plan=plan)
        seeds = spawn_seed_sequences(self.rng, len(queries))
        # Materialise the delta graph + per-segment concat matrices before
        # the pool starts, so workers never race to build them.
        segmented.prepare_search()
        # Per-wave filter cache, keyed by (filter, segment table) so one
        # dict serves every segment (rides to joint_search via kwargs).
        memo: dict = {}

        def one(task: tuple[QueryLike, np.random.SeedSequence]) -> SearchResult:
            query, seed = task
            return segmented.search(
                query,
                k=k,
                l=l,
                weights=weights,
                early_termination=early_termination,
                engine=engine,
                rng=seed,
                refine=refine,
                sparse_engine=sparse_engine,
                filter_memo=memo,
                **search_kwargs,
            )

        results = thread_map(one, zip(queries, seeds), n_jobs=self.n_jobs)
        plan = f"graph/pool(n_jobs={self.n_jobs})"
        logger.debug("batch plan: %s (%d queries)", plan, len(queries))
        return BatchResult(
            results, SearchStats.aggregate(r.stats for r in results),
            plan=plan,
        )

    def run_exact_wave(
        self,
        view,
        queries: list[QueryLike],
        k: int,
        weights: Weights | None = None,
        refine: int | None = None,
        margin: float = 1e-4,
        sparse_engine: str = "auto",
    ) -> BatchResult:
        """Coalesced exact batch over a segment view, bit-identical to
        the per-query exact path.

        The serving layer's exact wave
        (:meth:`~repro.index.segments.SegmentView.exact_wave`): a
        float32 GEMM prefilter per segment plus a float64
        layout-independent rerank within ``margin`` of each cut-off —
        batched-GEMM throughput with single-query bit parity, unlike
        :meth:`run_segmented` with ``exact=True`` whose stacked GEMM
        carries the ~1e-7 similarity caveat.
        """
        results = view.exact_wave(
            list(queries), k, weights=weights, refine=refine, margin=margin,
            sparse_engine=sparse_engine,
        )
        return BatchResult(
            results, SearchStats.aggregate(r.stats for r in results),
            plan="exact/wave",
        )

    # ------------------------------------------------------------------
    # Flat (exact) path
    # ------------------------------------------------------------------
    def run_flat(
        self,
        flat,
        queries: list[QueryLike],
        k: int,
        weights: Weights | None = None,
        refine: int | None = None,
        sparse_engine: str = "auto",
    ) -> BatchResult:
        """Single-GEMM exact batch over a :class:`FlatIndex`."""
        results = flat.batch_search(
            list(queries), k, weights=weights, refine=refine,
            sparse_engine=sparse_engine,
        )
        return BatchResult(
            results, SearchStats.aggregate(r.stats for r in results),
            plan="exact/gemm",
        )
