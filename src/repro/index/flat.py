"""Brute-force (exact) search — the paper's MUST-- reference point.

Scans every object's joint similarity; exact but linear in ``n``
(Tab. VII shows its response time growing linearly while the fused index
stays near-flat).

The scan itself lives in the shared scoring engine
(:class:`~repro.index.scoring.Scorer` for one query,
:func:`~repro.index.scoring.batch_score_all` for a batch — one GEMM for
the whole wave).  The index is deletion-aware: pass the §IX data-status
bitset as ``deleted`` and soft-deleted objects are excluded from exact
results, matching the graph searcher's behaviour.

Queries may be raw :class:`~repro.core.multivector.MultiVector`\\ s or
typed :class:`~repro.core.query.Query` objects; a query's ``filter``
compiles to a candidate mask over this space's attribute table, which is
intersected with the deletion bitset before ranking — so a filtered
exact search is bit-identical to an unfiltered search over the
post-filtered corpus (the scan scores every row; masked rows simply
cannot be answers).
"""

from __future__ import annotations

import numpy as np

from repro.core.multivector import MultiVector
from repro.core.query import Query, as_query, unpack_query
from repro.core.results import SearchResult
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.scoring import Scorer, batch_score_all, rerank_exact
from repro.sparse.hybrid import add_sparse, hybrid_rerank
from repro.utils.topk import top_k_sorted
from repro.utils.validation import require

__all__ = ["FlatIndex"]


class FlatIndex:
    """Exact joint-similarity scan over a :class:`JointSpace`.

    ``deleted`` is an optional boolean bitset over the corpus; True rows
    never appear in results.  Pass the array of a live
    :class:`~repro.index.base.GraphIndex` to share its view — but note
    the graph allocates its bitset lazily on the first ``mark_deleted``,
    so a ``None`` captured here stays ``None``; construct the
    :class:`FlatIndex` after the bitset exists (or per search, as
    :meth:`MUST._flat` does) to track later deletions.

    ``ids`` optionally remaps results into an external id space: result
    entry ``j`` reports ``ids[local_j]`` instead of the local row number.
    The segmented index uses this to report stable external ids from
    per-segment scans.

    ``deterministic`` routes the single-query scan through the
    layout-independent kernel (:meth:`JointSpace.query_ids_stable`), so
    a row's similarity does not depend on the corpus row count — the
    property that makes per-segment exact scans bit-identical to one
    whole-corpus scan.  Off by default: the BLAS scan is faster and is
    the historical MUST-- behaviour.
    """

    name = "flat"

    def __init__(
        self,
        space: JointSpace,
        deleted: np.ndarray | None = None,
        ids: np.ndarray | None = None,
        deterministic: bool = False,
    ):
        self.space = space
        self.deleted = deleted
        self.ids = None if ids is None else np.asarray(ids, dtype=np.int64)
        self.deterministic = bool(deterministic)

    @property
    def n(self) -> int:
        return self.space.n

    def _rank(
        self, sims: np.ndarray, k: int, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Top-*k* local ids of one scan, inadmissible rows masked out.

        With a filter mask the selection runs over the *compacted*
        admissible rows rather than a ``-inf``-masked full array:
        identical results (the compaction is order-preserving, so tie
        order maps straight back), but argpartition keeps its O(n)
        behaviour instead of degrading on duplicate-heavy ``-inf`` runs.
        """
        if self.deleted is not None:
            sims = np.where(self.deleted, -np.inf, sims)
        if mask is not None:
            admissible = np.flatnonzero(mask)
            local = top_k_sorted(sims[admissible], k)
            ids = admissible[local]
        else:
            ids = top_k_sorted(sims, k)
        # Fewer than k admissible objects leave -inf (deleted) entries
        # in the selection; drop them rather than return inadmissible
        # rows.
        return ids[np.isfinite(sims[ids])]

    def _result(self, local: np.ndarray, sims: np.ndarray, stats) -> SearchResult:
        out_ids = local if self.ids is None else self.ids[local]
        return SearchResult(ids=out_ids, similarities=sims[local], stats=stats)

    def _refined(
        self,
        typed: Query,
        sims: np.ndarray,
        k: int,
        refine: int,
        weights: Weights | None,
        stats,
        mask: np.ndarray | None = None,
        sparse_engine: str = "auto",
    ) -> SearchResult:
        """Two-stage rerank: top ``refine·k`` of the scan, re-scored at
        full precision against the store's exact tier, cut to *k*.  On a
        hybrid query the rerank adds the sparse term at the shortlist
        rows (the first-stage ``sims`` already contain it, so the
        shortlist is picked under the combined metric)."""
        shortlist = self._rank(sims, refine * k, mask)
        if typed.sparse is not None:
            local, exact = hybrid_rerank(
                self.space, typed, shortlist, k, weights=weights,
                stats=stats, engine=sparse_engine,
            )
        else:
            local, exact = rerank_exact(
                self.space, typed.vector, shortlist, k, weights=weights,
                stats=stats,
            )
        out_ids = local if self.ids is None else self.ids[local]
        return SearchResult(ids=out_ids, similarities=exact, stats=stats)

    def search(
        self,
        query: MultiVector | Query,
        k: int = 10,
        weights: Weights | None = None,
        refine: int | None = None,
        sparse_engine: str = "auto",
    ) -> SearchResult:
        """Exact top-*k* by full scan.

        On a compressed space the scan scores the hot codes; pass
        ``refine=r`` to re-score the top ``r·k`` survivors at full
        precision (two-stage rerank) before cutting to *k*.  A typed
        :class:`Query` supplies per-query ``weights``/``filter``/``k``
        and an optional ``sparse=`` lexical component, whose scores are
        mixed into the scan as ``ω_s²·lex`` (``sparse_engine`` picks the
        lexical scorer; both engines produce the same bits).
        """
        require(refine is None or refine >= 1, "refine must be >= 1")
        typed = as_query(query)
        query, k, weights, mask = unpack_query(
            typed, k, weights, self.space.vectors.attributes
        )
        scorer = Scorer(self.space, query, weights=weights,
                        deterministic=self.deterministic)
        sims = scorer.score_all()
        if typed.sparse is not None:
            sims = add_sparse(sims, self.space, typed, engine=sparse_engine)
        if refine is not None:
            return self._refined(
                typed, sims, k, refine, weights, scorer.stats, mask,
                sparse_engine=sparse_engine,
            )
        local = self._rank(sims, k, mask)
        return self._result(local, sims, scorer.stats)

    def batch_search(
        self,
        queries: list[MultiVector | Query],
        k: int = 10,
        weights: Weights | None = None,
        refine: int | None = None,
        sparse_engine: str = "auto",
    ) -> list[SearchResult]:
        """Exact top-*k* for a whole batch — one GEMM for the wave.

        Ranks agree with ``[search(q, k) for q in queries]`` on
        non-degenerate data, but the similarities travel a different
        numerical route (rescaled float32 concat GEMM vs the sequential
        scan's per-modality float64 accumulation) and can diverge by
        ~1e-7; objects whose joint similarities are closer than that may
        swap ranks between the two paths.  See :func:`batch_score_all`.
        ``refine`` applies the same two-stage rerank per query.  Typed
        queries keep their per-query weights/filters/k inside the shared
        GEMM wave (each concat column bakes its weights in; masks apply
        after scoring).
        """
        require(refine is None or refine >= 1, "refine must be >= 1")
        attributes = self.space.vectors.attributes
        memo: dict = {}  # shared filters compile once per wave
        typed_queries = [as_query(q) for q in queries]
        unpacked = [
            unpack_query(q, k, weights, attributes, memo=memo)
            for q in typed_queries
        ]
        vectors = [u[0] for u in unpacked]
        all_sims, all_stats = batch_score_all(
            self.space, vectors, weights=[u[2] for u in unpacked]
        )
        out = []
        for typed, (query, k_i, w_i, mask), sims, stats in zip(
            typed_queries, unpacked, all_sims, all_stats
        ):
            if typed.sparse is not None:
                sims = add_sparse(
                    sims, self.space, typed, engine=sparse_engine
                )
            if refine is not None:
                out.append(
                    self._refined(
                        typed, sims, k_i, refine, w_i, stats, mask,
                        sparse_engine=sparse_engine,
                    )
                )
                continue
            local = self._rank(sims, k_i, mask)
            out.append(self._result(local, sims, stats))
        return out
