"""Brute-force (exact) search — the paper's MUST-- reference point.

Scans every object's joint similarity; exact but linear in ``n``
(Tab. VII shows its response time growing linearly while the fused index
stays near-flat).
"""

from __future__ import annotations

import numpy as np

from repro.core.multivector import MultiVector
from repro.core.results import SearchResult, SearchStats
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.utils.topk import top_k_sorted

__all__ = ["FlatIndex"]


class FlatIndex:
    """Exact joint-similarity scan over a :class:`JointSpace`."""

    name = "flat"

    def __init__(self, space: JointSpace):
        self.space = space

    @property
    def n(self) -> int:
        return self.space.n

    def search(
        self,
        query: MultiVector,
        k: int,
        weights: Weights | None = None,
    ) -> SearchResult:
        """Exact top-*k* by full scan."""
        sims = self.space.query_all(query, weights=weights)
        ids = top_k_sorted(sims, k)
        active = sum(
            1 for i, q in enumerate(query.vectors)
            if q is not None
        )
        stats = SearchStats(
            joint_evals=self.n,
            modality_evals=self.n * active,
            visited_vertices=self.n,
        )
        return SearchResult(ids=ids, similarities=sims[ids], stats=stats)
