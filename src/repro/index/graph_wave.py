"""Wave-structured batched graph traversal: lockstep beam search.

The per-query engines in :mod:`repro.index.search` route one query at a
time: every hop is a Python loop iteration that gathers one adjacency
list and scores it with one GEMV.  A batch of ``b`` queries therefore
pays ``b × hops`` interpreter round-trips, which is why the thread-pool
executor shows *negative* speedup on graph batches (the beam loop is
GIL-bound and BLAS calls are too small to overlap).

This module restructures Algorithm 2 the way ``exact_wave`` restructured
the exact scan: all queries advance their beam frontiers **in lockstep**.
Each wave

1. picks, per active query, its best few unexpanded candidates (the
   vectorised equivalent of ``expansions_per_wave`` heap pops — batching
   expansions amortises the per-wave interpreter overhead),
2. gathers every query's unvisited neighbours into one stacked candidate
   matrix (CSR adjacency + one fancy-index),
3. scores the whole stack at once — fast-path queries share a single
   batched row-wise reduction against the ω-scaled concatenation, with
   each query's weights baked into its own concat column exactly as the
   exact wave does; compressed/early-termination queries fall back to
   their per-query :class:`~repro.index.scoring.Scorer`, whose PQ/int8
   kernels are built once per query and reused across every wave,
4. scatters the scores back into per-query result pools, visited
   bitsets, and routing pools.

Queries finish independently: a query whose best unexpanded candidate
can no longer enter its result set leaves the wave, while stragglers
keep iterating.  Per-query :class:`~repro.core.query.Query` filters,
``k`` overrides, and the §IX deletion bitset apply at result-admission
exactly as in :func:`~repro.index.search.joint_search` — inadmissible
vertices still route.

Determinism contract: every per-row reduction is independent of the
other rows, each query draws its init from its own seed, and each
query's pools are truncated to the width its *own* ``l`` implies — so a
query's answer never depends on its wave-mates or on ``n_jobs``.
Results are not bit-identical to the per-query heap engine (expansion
*order* differs across queries), which is why the per-query path is
kept as the recall oracle in the parity tests.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.multivector import MultiVector
from repro.core.query import FilterMemo, Query, unpack_query
from repro.core.results import SearchResult, SearchStats
from repro.core.weights import Weights
from repro.index.base import GraphIndex
from repro.index.scoring import Scorer, rerank_exact
from repro.index.search import _init_result_set
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import require

__all__ = ["graph_wave_search"]

#: CSR adjacency cache keyed by ``id(index.neighbors)``.  Graphs are
#: immutable after build (deletes go through the bitset, compaction
#: builds a fresh index) and snapshots share the neighbour list via
#: ``dataclasses.replace``, so identity of the list is a sound key; the
#: stored strong reference keeps the id from being recycled.  Bounded so
#: long-lived processes cycling many indexes cannot leak.
_ADJ_CACHE: dict[int, tuple[np.ndarray, np.ndarray, object]] = {}
_ADJ_CACHE_LIMIT = 16


def _csr_adjacency(index: GraphIndex) -> tuple[np.ndarray, np.ndarray]:
    """``(flat, offsets)`` CSR view of ``index.neighbors``, cached."""
    neighbors = index.neighbors
    entry = _ADJ_CACHE.get(id(neighbors))
    if entry is not None and entry[2] is neighbors:
        return entry[0], entry[1]
    counts = np.fromiter(
        (len(adj) for adj in neighbors), dtype=np.int64, count=len(neighbors)
    )
    offsets = np.zeros(len(neighbors) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if offsets[-1]:
        flat = np.concatenate(neighbors).astype(np.int64, copy=False)
    else:
        flat = np.zeros(0, dtype=np.int64)
    if len(_ADJ_CACHE) >= _ADJ_CACHE_LIMIT:
        # Evict exactly one entry, oldest first (dict preserves insertion
        # order).  A full clear() here would wipe the entry about to be
        # returned, so a long-lived service cycling >16 snapshots would
        # rebuild the *hot* CSR on every wave; single FIFO eviction keeps
        # the bound without ever touching the entry being installed.
        for stale in _ADJ_CACHE:
            if stale != id(neighbors):
                del _ADJ_CACHE[stale]
                break
    _ADJ_CACHE[id(neighbors)] = (flat, offsets, neighbors)
    return flat, offsets


def _pad_by_owner(
    owner: np.ndarray,
    ids: np.ndarray,
    *sim_columns: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, list[np.ndarray]]:
    """Scatter owner-sorted flat candidates into per-row padded matrices.

    Returns ``(rows, id_matrix, sim_matrices)`` where row ``r`` of each
    matrix holds the candidates owned by query ``rows[r]``, padded with
    ``-inf`` similarities (id padding is irrelevant once the sim is
    ``-inf``).
    """
    rows, grp_start, grp_counts = np.unique(
        owner, return_index=True, return_counts=True
    )
    width = int(grp_counts.max())
    pos = np.arange(owner.size, dtype=np.int64) - np.repeat(grp_start, grp_counts)
    ridx = np.repeat(np.arange(rows.size, dtype=np.int64), grp_counts)
    id_mat = np.zeros((rows.size, width), dtype=np.int64)
    id_mat[ridx, pos] = ids
    sim_mats: list[np.ndarray] = []
    for col in sim_columns:
        mat = np.full((rows.size, width), -np.inf, dtype=np.float64)
        mat[ridx, pos] = col
        sim_mats.append(mat)
    return rows, id_mat, sim_mats


def graph_wave_search(
    index: GraphIndex,
    queries: Sequence[MultiVector | Query],
    k: int,
    l: int,
    weights: Weights | None = None,
    early_termination: bool = False,
    rng: Any = 0,
    rngs: Sequence[Any] | None = None,
    refine: int | None = None,
    check_monotone: bool = False,
    filter_memo: FilterMemo | None = None,
    ks: Sequence[int] | None = None,
    ls: Sequence[int] | None = None,
    expansions_per_wave: int = 8,
) -> tuple[list[SearchResult], SearchStats]:
    """Lockstep batched Algorithm 2 over one fused graph.

    Semantics match :func:`~repro.index.search.joint_search` per query —
    same init draw (seed vertex + ``l−1`` random vertices from the
    query's own rng), same result-set cap ``min(l, reportable)``, same
    can-the-best-candidate-still-enter termination rule, same
    route-but-never-report treatment of filtered/deleted vertices, same
    ``refine=`` exact rerank — but expansion order interleaves across
    the batch, so ids/sims agree with the per-query engine only up to
    tie-breaks and init randomness (recall parity is pinned in tests).

    ``rngs`` supplies one rng per query (the serving path, where each
    request carries its own seed); otherwise per-query children are
    spawned from ``rng`` exactly like
    :class:`~repro.index.executor.BatchExecutor`.  ``ks``/``ls`` are
    per-query overrides used by the segmented layer, which sizes each
    segment probe individually.

    ``expansions_per_wave`` widens each wave: every active query
    expands up to that many of its best unexpanded candidates per wave
    instead of one.  The traversal stays per-row (selection reads only
    the row's own pool, so composition independence is untouched) but
    the interpreter-level wave overhead is amortised over ``m``
    expansions — the knob that makes the lockstep engine beat the
    per-query loop even at small batch sizes.  Admission uses the wave-
    entry threshold, which can only admit *more* than the per-expansion
    heap rule, so recall never drops below the ``m=1`` traversal.

    Returns ``(results, wave_stats)``: per-query
    :class:`~repro.core.results.SearchResult` (stats carry the usual
    per-query counters) plus one batch-level
    :class:`~repro.core.results.SearchStats` holding only ``waves`` and
    ``frontier_sizes`` — the observable amortisation.
    """
    b = len(queries)
    wave_stats = SearchStats()
    if b == 0:
        return [], wave_stats
    require(k >= 1, "k must be positive")
    require(l >= k, f"result set size l={l} must be at least k={k}")
    require(refine is None or refine >= 1, "refine must be >= 1")
    require(expansions_per_wave >= 1, "expansions_per_wave must be >= 1")
    if rngs is not None:
        require(len(rngs) == b, "rngs must supply one rng per query")
    if ks is not None or ls is not None:
        require(
            ks is not None and ls is not None and len(ks) == b and len(ls) == b,
            "ks and ls overrides must both cover every query",
        )

    space = index.space
    n = index.n
    attributes = space.vectors.attributes
    memo: FilterMemo = {} if filter_memo is None else filter_memo

    vectors: list[MultiVector] = []
    per_weights: list[Weights | None] = []
    excluded_by: list[np.ndarray | None] = []
    excl_cache: dict[int | None, np.ndarray | None] = {}
    k_arr = np.zeros(b, dtype=np.int64)
    k_inner_arr = np.zeros(b, dtype=np.int64)
    cap_arr = np.zeros(b, dtype=np.int64)
    width_arr = np.zeros(b, dtype=np.int64)
    l_inner_arr = np.zeros(b, dtype=np.int64)
    alive = np.zeros(b, dtype=bool)

    for i, q in enumerate(queries):
        vec, k_q, w_q, mask = unpack_query(q, k, weights, attributes, memo=memo)
        if ks is not None and ls is not None:
            k_q, l_q = int(ks[i]), int(ls[i])
        else:
            l_q = max(l, k_q)
        require(k_q >= 1, "k must be positive")
        require(l_q >= k_q, f"result set size l={l_q} must be at least k={k_q}")
        vectors.append(vec)
        per_weights.append(w_q)
        key = None if mask is None else id(mask)
        if key in excl_cache:
            excluded: np.ndarray | None = excl_cache[key]
        elif mask is None:
            excluded = index.deleted
            excl_cache[key] = excluded
        else:
            excluded = ~mask if index.deleted is None else (~mask | index.deleted)
            excl_cache[key] = excluded
        excluded_by.append(excluded)
        if mask is None:
            reportable = index.num_active
        else:
            reportable = int(n - excluded.sum()) if excluded is not None else n
        k_inner = k_q * refine if refine is not None else k_q
        l_inner = max(l_q, k_inner)
        k_arr[i] = k_q
        k_inner_arr[i] = k_inner
        l_inner_arr[i] = l_inner
        width_arr[i] = min(l_inner, n)
        cap_arr[i] = min(l_inner, reportable)
        alive[i] = reportable > 0

    seeds: Sequence[Any]
    if rngs is None:
        seeds = spawn_seed_sequences(rng, b)
    else:
        seeds = list(rngs)

    stats_list = [SearchStats() for _ in range(b)]
    scorers = [
        Scorer(
            space,
            vectors[i],
            weights=per_weights[i],
            early_termination=early_termination,
            stats=stats_list[i],
        )
        for i in range(b)
    ]
    fast = np.asarray([s.has_fast_path for s in scorers], dtype=bool)
    active_mods = np.asarray([s.num_active_modalities for s in scorers], dtype=np.int64)
    joint_acc = np.zeros(b, dtype=np.int64)
    concat_mat: np.ndarray | None = None
    qmat: np.ndarray | None = None
    if fast.any():
        concat_mat = space.concatenated
        qmat = np.zeros((b, concat_mat.shape[1]), dtype=np.float32)
        for i in range(b):
            qvec = scorers[i].concat_query_vector
            if qvec is not None:
                qmat[i] = qvec

    def score_stack(
        owner: np.ndarray, cand: np.ndarray, thr: np.ndarray
    ) -> np.ndarray:
        """Score one stacked frontier; below-threshold rows come back -inf.

        One batched row-wise reduction covers every fast-path query's
        candidates (per-query weights already baked into its concat
        column); the rest go through their bound scorer on contiguous
        owner slices, so compressed kernels and Lemma-4 pruning apply
        per query with their one-time setup amortised across waves.
        """
        sims = np.empty(cand.size, dtype=np.float64)
        fmask = fast[owner]
        if fmask.any():
            assert concat_mat is not None and qmat is not None
            own = owner[fmask]
            sims[fmask] = np.einsum(
                "ij,ij->i", concat_mat[cand[fmask]], qmat[own]
            ).astype(np.float64)
            counts = np.bincount(own, minlength=b)
            np.add(joint_acc, counts, out=joint_acc)
        if not fmask.all():
            nf = np.flatnonzero(~fmask)
            nf_owner = owner[nf]
            grp, grp_start, grp_counts = np.unique(
                nf_owner, return_index=True, return_counts=True
            )
            for gi, gs, gc in zip(grp, grp_start, grp_counts):
                sl = nf[gs : gs + gc]
                svals, keep = scorers[int(gi)].score_frontier(
                    cand[sl], float(thr[int(gi)])
                )
                sims[sl] = np.where(keep, svals, -np.inf)
        return np.where(sims > thr[owner], sims, -np.inf)

    # Pools: per-row descending candidate/result sets, padded with -inf.
    # Every row is truncated to its own width/cap after each merge, so a
    # query's state is exactly what a batch-of-one would hold —
    # composition independence.
    width = int(width_arr.max()) if alive.any() else 1
    route_ids = np.zeros((b, width), dtype=np.int64)
    route_sims = np.full((b, width), -np.inf, dtype=np.float64)
    route_dead = np.ones((b, width), dtype=bool)
    res_ids = np.zeros((b, width), dtype=np.int64)
    res_sims = np.full((b, width), -np.inf, dtype=np.float64)
    seen = np.zeros((b, n), dtype=bool)
    hops = np.zeros(b, dtype=np.int64)
    last_total = np.full(b, -np.inf, dtype=np.float64)
    rows_all = np.arange(b, dtype=np.int64)
    cols = np.arange(width, dtype=np.int64)

    # Group queries by the identity of their excluded-vertex bitset
    # (shared filters compile to one mask, unfiltered queries share the
    # deletion bitset) so admission is one vectorised lookup per group.
    uniq_excluded: list[np.ndarray] = []
    excl_group = np.full(b, -1, dtype=np.int64)
    _group_of: dict[int, int] = {}
    for i, excl in enumerate(excluded_by):
        if excl is None:
            continue
        gid = _group_of.setdefault(id(excl), len(uniq_excluded))
        if gid == len(uniq_excluded):
            uniq_excluded.append(excl)
        excl_group[i] = gid

    def admissible(owner: np.ndarray, cand: np.ndarray) -> np.ndarray:
        out = np.ones(cand.size, dtype=bool)
        groups = excl_group[owner]
        for gid, excl in enumerate(uniq_excluded):
            sel = groups == gid
            if sel.any():
                out[sel] = ~excl[cand[sel]]
        return out

    def merge(
        rows: np.ndarray,
        f_ids: np.ndarray,
        f_route_sims: np.ndarray,
        f_res_sims: np.ndarray,
    ) -> None:
        """Fold padded fresh candidates into both pools for *rows*."""
        cat_ids = np.concatenate([route_ids[rows], f_ids], axis=1)
        cat_sims = np.concatenate([route_sims[rows], f_route_sims], axis=1)
        cat_dead = np.concatenate(
            [route_dead[rows], ~np.isfinite(f_route_sims)], axis=1
        )
        order = np.argsort(-cat_sims, axis=1, kind="stable")[:, :width]
        new_sims = np.take_along_axis(cat_sims, order, axis=1)
        over = cols[None, :] >= width_arr[rows][:, None]
        route_ids[rows] = np.take_along_axis(cat_ids, order, axis=1)
        route_sims[rows] = np.where(over, -np.inf, new_sims)
        route_dead[rows] = np.take_along_axis(cat_dead, order, axis=1) | over

        cat_ids = np.concatenate([res_ids[rows], f_ids], axis=1)
        cat_sims = np.concatenate([res_sims[rows], f_res_sims], axis=1)
        order = np.argsort(-cat_sims, axis=1, kind="stable")[:, :width]
        new_sims = np.take_along_axis(cat_sims, order, axis=1)
        over = cols[None, :] >= cap_arr[rows][:, None]
        res_ids[rows] = np.take_along_axis(cat_ids, order, axis=1)
        res_sims[rows] = np.where(over, -np.inf, new_sims)

        if check_monotone:
            block = res_sims[rows]
            finite = np.isfinite(block)
            csum = np.cumsum(np.where(finite, block, 0.0), axis=1)
            take = np.minimum(finite.sum(axis=1), cap_arr[rows])
            idx = np.maximum(take - 1, 0)
            total = np.where(take > 0, csum[np.arange(rows.size), idx], 0.0)
            prev = last_total[rows]
            started = np.isfinite(prev)
            # Lemma 3: f(η) is monotonically non-decreasing.
            ok = bool(np.all(total[started] >= prev[started] - 1e-9))
            assert ok, "Lemma 3 violated in wave merge"
            last_total[rows] = total

    # ------------------------------------------------------------------
    # Init: per-query seed + random draws, scored as one stacked wave.
    # ------------------------------------------------------------------
    init_owner_parts: list[np.ndarray] = []
    init_id_parts: list[np.ndarray] = []
    for i in range(b):
        if not alive[i]:
            continue
        r_init = _init_result_set(index, int(l_inner_arr[i]), seeds[i])
        seen[i, r_init] = True
        init_id_parts.append(r_init)
        init_owner_parts.append(np.full(r_init.size, i, dtype=np.int64))
    if init_id_parts:
        owner0 = np.concatenate(init_owner_parts)
        cand0 = np.concatenate(init_id_parts)
        sims0 = score_stack(owner0, cand0, np.full(b, -np.inf))
        adm0 = admissible(owner0, cand0)
        rows0, idm, (routem, resm) = _pad_by_owner(
            owner0, cand0, sims0, np.where(adm0, sims0, -np.inf)
        )
        merge(rows0, idm, routem, resm)

    # ------------------------------------------------------------------
    # Waves: one expansion per active query per wave.
    # ------------------------------------------------------------------
    flat_adj, offsets = _csr_adjacency(index)
    m_exp = int(expansions_per_wave)
    while True:
        thr = res_sims[rows_all, np.maximum(cap_arr - 1, 0)]
        # Heap-engine termination rule, vectorised: a routed candidate
        # strictly below the current result floor can never enter R.
        route_dead |= route_sims < thr[:, None]
        masked = np.where(route_dead, -np.inf, route_sims)
        # Up to m best unexpanded candidates per row — each row reads
        # only its own pool, so wave-mates stay invisible to it.
        top_cols = np.argsort(-masked, axis=1, kind="stable")[:, :m_exp]
        top_sims = np.take_along_axis(masked, top_cols, axis=1)
        valid = np.isfinite(top_sims)
        valid &= alive[:, None]
        if not valid.any():
            break
        rsel, csel = np.nonzero(valid)
        cols_sel = top_cols[rsel, csel]
        expand = route_ids[rsel, cols_sel]
        route_dead[rsel, cols_sel] = True
        hops += valid.sum(axis=1)
        wave_stats.waves += 1

        counts = offsets[expand + 1] - offsets[expand]
        total_adj = int(counts.sum())
        if total_adj == 0:
            wave_stats.frontier_sizes.append(0)
            continue
        shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
        gather = np.arange(total_adj, dtype=np.int64) + np.repeat(
            offsets[expand] - shift, counts
        )
        cand = flat_adj[gather]
        owner = np.repeat(rsel, counts)
        fresh = ~seen[owner, cand]
        cand, owner = cand[fresh], owner[fresh]
        if cand.size and m_exp > 1:
            # Two expanded vertices of one row may share a neighbour;
            # keep each (row, candidate) pair once.  np.unique sorts the
            # keys row-major, preserving the contiguous-owner layout
            # score_stack's slow path slices on.
            key = owner * n + cand
            _, first = np.unique(key, return_index=True)
            owner, cand = owner[first], cand[first]
        wave_stats.frontier_sizes.append(int(cand.size))
        if cand.size == 0:
            continue
        seen[owner, cand] = True
        sims = score_stack(owner, cand, thr)
        adm = admissible(owner, cand)
        rows, idm, (routem, resm) = _pad_by_owner(
            owner, cand, sims, np.where(adm, sims, -np.inf)
        )
        merge(rows, idm, routem, resm)

    # ------------------------------------------------------------------
    # Finalise per query: top-k by (-sim, id), optional exact rerank.
    # ------------------------------------------------------------------
    for i in range(b):
        stats = stats_list[i]
        stats.hops += int(hops[i])
        stats.visited_vertices += int(hops[i])
        stats.joint_evals += int(joint_acc[i])
        stats.modality_evals += int(joint_acc[i] * active_mods[i])
    results: list[SearchResult] = []
    for i in range(b):
        finite = np.isfinite(res_sims[i])
        ids_f = res_ids[i][finite]
        sims_f = res_sims[i][finite]
        order = np.lexsort((ids_f, -sims_f))[: int(k_inner_arr[i])]
        ids_o, sims_o = ids_f[order], sims_f[order]
        if refine is not None:
            ids_o, sims_o = rerank_exact(
                space,
                vectors[i],
                ids_o,
                int(k_arr[i]),
                weights=per_weights[i],
                stats=stats_list[i],
            )
        results.append(
            SearchResult(ids=ids_o, similarities=sims_o, stats=stats_list[i])
        )
    return results, wave_stats
