"""Alternative proximity-graph builders for the Fig. 10 ablation."""

from repro.index.graphs.hcnng import HCNNGBuilder
from repro.index.graphs.hnsw import HNSWBuilder
from repro.index.graphs.kgraph import KGraphBuilder
from repro.index.graphs.nsg import NSGBuilder
from repro.index.graphs.nssg import NSSGBuilder
from repro.index.graphs.vamana import VamanaBuilder

__all__ = [
    "HCNNGBuilder",
    "HNSWBuilder",
    "KGraphBuilder",
    "NSGBuilder",
    "NSSGBuilder",
    "VamanaBuilder",
]
