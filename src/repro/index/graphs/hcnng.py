"""HCNNG [Muñoz et al., Pattern Recognition'19].

Hierarchical-clustering-based graph: repeated random binary partitions of
the corpus down to small leaves, an exact minimum-spanning tree inside
every leaf, and the union of all tree edges as the graph.  Randomised
partitions give each tree a different view; their union is navigable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.space import JointSpace
from repro.index.base import GraphIndex
from repro.index.components import centroid_seed, ensure_connectivity
from repro.utils.rng import make_rng

__all__ = ["HCNNGBuilder"]


def _leaf_mst_edges(
    concat: np.ndarray, ids: np.ndarray
) -> list[tuple[int, int]]:
    """Prim's MST over a leaf (maximising similarity = minimising distance)."""
    m = ids.size
    if m < 2:
        return []
    sims = concat[ids] @ concat[ids].T
    in_tree = np.zeros(m, dtype=bool)
    in_tree[0] = True
    best_sim = sims[0].copy()
    best_from = np.zeros(m, dtype=np.int64)
    edges: list[tuple[int, int]] = []
    for _ in range(m - 1):
        best_sim[in_tree] = -np.inf
        j = int(np.argmax(best_sim))
        edges.append((int(ids[best_from[j]]), int(ids[j])))
        in_tree[j] = True
        better = sims[j] > best_sim
        best_from[better] = j
        best_sim[better] = sims[j][better]
    return edges


@dataclass
class HCNNGBuilder:
    """Multiple random-partition MST unions."""

    num_trees: int = 12
    leaf_size: int = 48
    max_degree: int = 40
    seed: int = 0
    name: str = "hcnng"

    def build(self, space: JointSpace) -> GraphIndex:
        start = time.perf_counter()
        n = space.n
        concat = space.concatenated
        rng = make_rng(self.seed)
        adjacency: list[set[int]] = [set() for _ in range(n)]

        for _ in range(self.num_trees):
            stack = [np.arange(n)]
            while stack:
                ids = stack.pop()
                if ids.size <= self.leaf_size:
                    for a, b in _leaf_mst_edges(concat, ids):
                        adjacency[a].add(b)
                        adjacency[b].add(a)
                    continue
                # Random two-pivot split (random hyperplane equivalent).
                pivots = rng.choice(ids, size=2, replace=False)
                sims = concat[ids] @ concat[pivots].T
                left = sims[:, 0] >= sims[:, 1]
                if left.all() or not left.any():
                    half = ids.size // 2
                    perm = rng.permutation(ids)
                    stack.append(perm[:half])
                    stack.append(perm[half:])
                else:
                    stack.append(ids[left])
                    stack.append(ids[~left])

        neighbors: list[np.ndarray] = []
        for v in range(n):
            adj = np.fromiter(adjacency[v], dtype=np.int64, count=len(adjacency[v]))
            if adj.size > self.max_degree:
                sims = concat[adj] @ concat[v]
                adj = adj[np.argsort(-sims, kind="stable")[: self.max_degree]]
            neighbors.append(adj.astype(np.int32))

        seed_vertex = centroid_seed(space)
        neighbors = ensure_connectivity(space, neighbors, seed_vertex)
        return GraphIndex(
            space=space,
            neighbors=neighbors,
            seed_vertex=seed_vertex,
            name=self.name,
            build_seconds=time.perf_counter() - start,
            meta={"num_trees": self.num_trees, "leaf_size": self.leaf_size},
        )
