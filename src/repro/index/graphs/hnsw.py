"""HNSW [Malkov & Yashunin, TPAMI'20]: hierarchical navigable small world.

Incremental insertion with geometric level assignment, per-layer beam
search, and the neighbour-selection heuristic (RNG-style pruning).  The
exported :class:`~repro.index.base.GraphIndex` is the **base layer with
the hierarchy's entry point as seed** — routing from a good entry on the
base layer is the behaviour the upper layers exist to provide, and it
lets the shared :func:`~repro.index.search.joint_search` drive every
graph uniformly (documented simplification).

HNSW supports *incremental* inserts, which is why §IX names it (with
Vamana) as the index family that handles dynamic updates: an
:meth:`HNSWBuilder.insert`-built graph grows one point at a time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.space import JointSpace
from repro.index.base import GraphIndex
from repro.index.components import centroid_seed, prune_one
from repro.index.search import greedy_search_graph
from repro.utils.rng import make_rng

__all__ = ["HNSWBuilder", "HNSWGraph"]


@dataclass
class HNSWGraph:
    """Mutable multi-layer adjacency built by :class:`HNSWBuilder`."""

    layers: list[dict[int, list[int]]] = field(default_factory=list)
    levels: dict[int, int] = field(default_factory=dict)
    entry_point: int = -1

    @property
    def top_level(self) -> int:
        return len(self.layers) - 1


class HNSWBuilder:
    """Incremental HNSW construction over a joint space."""

    def __init__(
        self,
        m: int = 16,
        ef_construction: int = 64,
        seed: int = 0,
        name: str = "hnsw",
    ):
        self.m = int(m)
        self.m0 = 2 * int(m)  # base layer allows double degree
        self.ef_construction = int(ef_construction)
        self.seed = int(seed)
        self.name = name
        self._level_scale = 1.0 / np.log(self.m)

    # ------------------------------------------------------------------
    def build(self, space: JointSpace) -> GraphIndex:
        start = time.perf_counter()
        rng = make_rng(self.seed)
        graph = HNSWGraph()
        for v in range(space.n):
            self.insert(space, graph, v, rng)
        index = self.materialize(space, graph)
        index.build_seconds = time.perf_counter() - start
        return index

    def materialize(self, space: JointSpace, graph: HNSWGraph) -> GraphIndex:
        """Export *graph*'s base layer as a searchable :class:`GraphIndex`.

        Valid at any point during incremental insertion as long as the
        first ``space.n`` vertices have been inserted — the segmented
        delta uses this to serve queries between inserts, and the
        structural property tests validate the export after every
        insert step.
        """
        neighbors = [
            np.asarray(graph.layers[0].get(v, []), dtype=np.int32)
            for v in range(space.n)
        ]
        return GraphIndex(
            space=space,
            neighbors=neighbors,
            seed_vertex=graph.entry_point,
            name=self.name,
            meta={
                "m": self.m,
                "ef_construction": self.ef_construction,
                "levels": graph.top_level + 1,
            },
        )

    # ------------------------------------------------------------------
    def insert(
        self,
        space: JointSpace,
        graph: HNSWGraph,
        v: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        """Insert vertex *v* into *graph* (the §IX dynamic-update path)."""
        rng = make_rng(rng)
        concat = space.concatenated
        total = space.weights.total
        level = int(-np.log(max(rng.random(), 1e-12)) * self._level_scale)
        while graph.top_level < level:
            graph.layers.append({})
        graph.levels[v] = level

        if graph.entry_point < 0:
            graph.entry_point = v
            for lc in range(level + 1):
                graph.layers[lc][v] = []
            return

        # Greedy descend through layers above the insertion level.
        cur = graph.entry_point
        for lc in range(graph.top_level, level, -1):
            ids, _ = greedy_search_graph(
                concat, _LayerView(graph.layers[lc]), cur, concat[v], beam=1
            )
            cur = int(ids[0])

        # Beam search + heuristic selection on each layer ≤ level.
        for lc in range(min(level, graph.top_level), -1, -1):
            layer = graph.layers[lc]
            layer.setdefault(v, [])
            ids, sims = greedy_search_graph(
                concat, _LayerView(layer), cur, concat[v],
                beam=self.ef_construction,
            )
            keep = ids != v
            ids, sims = ids[keep], sims[keep]
            cap = self.m0 if lc == 0 else self.m
            chosen = prune_one(concat, total, ids, sims, cap)
            layer[v] = [int(u) for u in chosen]
            for u in chosen:
                adj = layer.setdefault(int(u), [])
                adj.append(v)
                if len(adj) > cap:
                    adj_ids = np.asarray(adj, dtype=np.int64)
                    adj_sims = concat[adj_ids] @ concat[int(u)]
                    order = np.argsort(-adj_sims, kind="stable")
                    layer[int(u)] = [
                        int(x)
                        for x in prune_one(
                            concat, total,
                            adj_ids[order], adj_sims[order], cap,
                        )
                    ]
            if ids.size:
                cur = int(ids[0])

        if level > graph.levels.get(graph.entry_point, 0):
            graph.entry_point = v


class _LayerView:
    """Adapter exposing a layer dict as ``neighbors[v]`` sequence access."""

    def __init__(self, layer: dict[int, list[int]]):
        self._layer = layer

    def __getitem__(self, v: int) -> np.ndarray:
        return np.asarray(self._layer.get(int(v), []), dtype=np.int64)
