"""KGraph [Dong et al., WWW'11]: pure NNDescent KNN graph.

No diversification, no connectivity repair — the rawest proximity graph
in the paper's ablation (Fig. 10).  Its dense symmetric-ish neighbour
lists make construction cheap but search less efficient per hop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.space import JointSpace
from repro.index.base import GraphIndex
from repro.index.components import centroid_seed
from repro.index.nndescent import nndescent

__all__ = ["KGraphBuilder"]


@dataclass
class KGraphBuilder:
    """NNDescent-only builder (component ① as the whole index)."""

    k: int = 30
    iterations: int = 3
    seed: int = 0
    name: str = "kgraph"

    def build(self, space: JointSpace) -> GraphIndex:
        start = time.perf_counter()
        knn = nndescent(
            space,
            k=min(self.k, space.n - 1),
            iterations=self.iterations,
            seed=self.seed,
        )
        neighbors = [knn[v] for v in range(space.n)]
        seed_vertex = centroid_seed(space)
        return GraphIndex(
            space=space,
            neighbors=neighbors,
            seed_vertex=seed_vertex,
            name=self.name,
            build_seconds=time.perf_counter() - start,
            meta={"k": self.k, "iterations": self.iterations},
        )
