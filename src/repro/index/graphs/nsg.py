"""NSG [Fu et al., PVLDB'19]: navigating spreading-out graph.

NNDescent initialisation, *search-based* candidate acquisition (the
vertices visited while greedily routing towards each point from the
navigating node), MRNG edge selection, and spanning-tree connectivity —
the composition the original paper describes, expressed through our
pipeline components.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.space import JointSpace
from repro.index.base import GraphIndex
from repro.index.components import (
    centroid_seed,
    ensure_connectivity,
    mrng_select,
    search_based_candidates,
)
from repro.index.nndescent import nndescent

__all__ = ["NSGBuilder"]


@dataclass
class NSGBuilder:
    """Search-based-candidate + MRNG builder."""

    gamma: int = 30
    init_k: int = 20
    iterations: int = 3
    max_candidates: int = 64
    beam: int = 48
    seed: int = 0
    name: str = "nsg"

    def build(self, space: JointSpace) -> GraphIndex:
        start = time.perf_counter()
        knn = nndescent(
            space,
            k=min(self.init_k, space.n - 1),
            iterations=self.iterations,
            seed=self.seed,
        )
        navigating = centroid_seed(space)
        cand, sims = search_based_candidates(
            space,
            knn,
            entry=navigating,
            max_candidates=self.max_candidates,
            beam=self.beam,
        )
        neighbors = mrng_select(space, cand, sims, self.gamma)
        neighbors = ensure_connectivity(space, neighbors, navigating)
        return GraphIndex(
            space=space,
            neighbors=neighbors,
            seed_vertex=navigating,
            name=self.name,
            build_seconds=time.perf_counter() - start,
            meta={"gamma": self.gamma, "beam": self.beam},
        )
