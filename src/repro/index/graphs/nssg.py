"""NSSG [Fu et al., TPAMI'21]: satellite system graph.

Two-hop candidate acquisition with *angle-based* selection: selected
edges must subtend at least ``min_angle_deg`` at the vertex, spreading
"satellites" around each point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.space import JointSpace
from repro.index.base import GraphIndex
from repro.index.components import (
    angle_select,
    centroid_seed,
    ensure_connectivity,
    two_hop_candidates,
)
from repro.index.nndescent import nndescent

__all__ = ["NSSGBuilder"]


@dataclass
class NSSGBuilder:
    """Two-hop + angle-selection builder."""

    gamma: int = 30
    init_k: int = 20
    iterations: int = 3
    max_candidates: int = 96
    min_angle_deg: float = 60.0
    seed: int = 0
    name: str = "nssg"

    def build(self, space: JointSpace) -> GraphIndex:
        start = time.perf_counter()
        knn = nndescent(
            space,
            k=min(self.init_k, space.n - 1),
            iterations=self.iterations,
            seed=self.seed,
        )
        cand, sims = two_hop_candidates(
            space, knn, max_candidates=self.max_candidates
        )
        neighbors = angle_select(
            space, cand, sims, self.gamma, min_angle_deg=self.min_angle_deg
        )
        seed_vertex = centroid_seed(space)
        neighbors = ensure_connectivity(space, neighbors, seed_vertex)
        return GraphIndex(
            space=space,
            neighbors=neighbors,
            seed_vertex=seed_vertex,
            name=self.name,
            build_seconds=time.perf_counter() - start,
            meta={"gamma": self.gamma, "min_angle_deg": self.min_angle_deg},
        )
