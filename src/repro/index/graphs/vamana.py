"""Vamana [Subramanya et al., NeurIPS'19] — the DiskANN graph.

Random regular initialisation, then passes over all points: greedy search
from the medoid collects candidates, α-relaxed RNG pruning selects
neighbours, and reverse edges are inserted with the same pruning.  Like
HNSW it admits incremental insertion (§IX).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.space import JointSpace
from repro.index.base import GraphIndex
from repro.index.components import centroid_seed, ensure_connectivity, prune_one
from repro.index.nndescent import random_knn
from repro.index.search import greedy_search_graph
from repro.utils.rng import make_rng

__all__ = ["VamanaBuilder"]


@dataclass
class VamanaBuilder:
    """Two-pass α-pruned graph construction."""

    r: int = 30
    alpha: float = 1.2
    beam: int = 48
    passes: int = 2
    seed: int = 0
    name: str = "vamana"

    def build(self, space: JointSpace) -> GraphIndex:
        start = time.perf_counter()
        n = space.n
        concat = space.concatenated
        total = space.weights.total
        rng = make_rng(self.seed)
        r = min(self.r, n - 1)
        knn = random_knn(n, r, rng)
        neighbors: list[np.ndarray] = [knn[v] for v in range(n)]
        medoid = centroid_seed(space)

        for pass_idx in range(self.passes):
            # First pass uses α=1 (plain RNG), final pass the relaxed α —
            # the schedule the DiskANN paper prescribes.
            alpha = 1.0 if pass_idx < self.passes - 1 else self.alpha
            for v in rng.permutation(n):
                v = int(v)
                visited, visited_sims = greedy_search_graph(
                    concat, neighbors, medoid, concat[v], beam=self.beam
                )
                own = neighbors[v]
                cand = np.concatenate([visited, own.astype(np.int64)])
                sims = np.concatenate(
                    [visited_sims, concat[own] @ concat[v]]
                )
                keep = cand != v
                cand, sims = cand[keep], sims[keep]
                cand, uniq_idx = np.unique(cand, return_index=True)
                sims = sims[uniq_idx]
                order = np.argsort(-sims, kind="stable")
                chosen = prune_one(
                    concat, total, cand[order], sims[order], r, alpha
                )
                neighbors[v] = chosen
                for u in chosen:
                    u = int(u)
                    if v in neighbors[u]:
                        continue
                    adj = np.append(neighbors[u], np.int32(v))
                    if adj.size > r:
                        adj_sims = concat[adj] @ concat[u]
                        order = np.argsort(-adj_sims, kind="stable")
                        adj = prune_one(
                            concat, total, adj[order].astype(np.int64),
                            adj_sims[order], r, alpha,
                        )
                    neighbors[u] = adj.astype(np.int32)

        neighbors = ensure_connectivity(space, neighbors, medoid)
        return GraphIndex(
            space=space,
            neighbors=neighbors,
            seed_vertex=medoid,
            name=self.name,
            build_seconds=time.perf_counter() - start,
            meta={"r": self.r, "alpha": self.alpha, "passes": self.passes},
        )
