"""NNDescent — component ① of the fused-index pipeline (Algorithm 1, l.2-8).

Builds an approximate K-nearest-neighbour graph under the *joint*
similarity by iteratively replacing each vertex's worst neighbour with
better candidates found among neighbours-of-neighbours (the classic
"neighbours of neighbours are likely neighbours" principle of KGraph
[Dong et al., WWW'11]).

The implementation is fully vectorised: each iteration processes vertex
blocks with one fused gather + einsum, so building a 10k-vertex graph
takes seconds in pure numpy.  The paper's Tab. XI shows three iterations
reach ≥0.99 graph quality; :func:`graph_quality` reproduces that metric.
"""

from __future__ import annotations

import numpy as np

from repro.core.space import JointSpace
from repro.utils.parallel import resolve_n_jobs, thread_map
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = [
    "random_knn",
    "nndescent",
    "graph_quality",
    "reverse_neighbors",
    "block_candidate_sims",
]


def random_knn(
    n: int, k: int, rng: np.random.Generator | int | None = 0
) -> np.ndarray:
    """Random initial neighbour lists, self-loop free, shape ``(n, k)``."""
    require(k < n, f"k={k} must be smaller than n={n}")
    rng = make_rng(rng)
    # Draw in [1, n) and shift by the row id so a vertex never picks itself.
    offsets = rng.integers(1, n, size=(n, k))
    return ((np.arange(n)[:, None] + offsets) % n).astype(np.int32)


def reverse_neighbors(neighbors: np.ndarray, cap: int) -> np.ndarray:
    """Up to *cap* in-neighbours per vertex, padded with the vertex id.

    NNDescent's local join considers both directions of every edge; the
    padding entries are self-references, which the candidate kernel masks
    out anyway.
    """
    n, k = neighbors.shape
    flat = neighbors.ravel()
    order = np.argsort(flat, kind="stable")
    sources = np.repeat(np.arange(n), k)[order]
    targets = flat[order]
    rev = np.tile(np.arange(n, dtype=np.int32)[:, None], (1, cap))
    starts = np.searchsorted(targets, np.arange(n))
    seg_pos = np.arange(targets.size) - starts[targets]
    keep = seg_pos < cap
    rev[targets[keep], seg_pos[keep]] = sources[keep]
    return rev


def block_candidate_sims(
    concat: np.ndarray,
    neighbors: np.ndarray,
    block: np.ndarray,
    reverse: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Similarities of each block vertex to its 2-hop candidate set.

    Returns ``(cand, sims)``; self-references and duplicate candidates
    within a row carry ``-inf``.  When *reverse* is given, in-neighbours
    and their out-neighbours join the candidate set (the full NNDescent
    local join — noticeably better convergence on unclustered data).
    The kernel avoids materialising a 3-D gather (the naive
    ``concat[cand]`` copy dominates runtime): candidates are deduplicated
    across the whole block and one BLAS matmul against the deduplicated
    rows computes every similarity.
    """
    nb = neighbors[block]  # (b, k)
    parts = [nb, neighbors[nb].reshape(len(block), -1)]
    if reverse is not None:
        rnb = reverse[block]
        parts.extend([rnb, neighbors[rnb].reshape(len(block), -1)])
    cand = np.concatenate(parts, axis=1)
    uniq, inverse = np.unique(cand, return_inverse=True)
    sub = concat[block] @ concat[uniq].T  # (b, |uniq|) — single BLAS call
    sims = sub[np.arange(len(block))[:, None], inverse.reshape(cand.shape)]
    # Knock out self-references and duplicates (keep the first occurrence).
    sims[cand == block[:, None]] = -np.inf
    order = np.argsort(cand, axis=1, kind="stable")
    cand_sorted = np.take_along_axis(cand, order, axis=1)
    sims_sorted = np.take_along_axis(sims, order, axis=1)
    dup = cand_sorted[:, 1:] == cand_sorted[:, :-1]
    sims_sorted[:, 1:][dup] = -np.inf
    return cand_sorted, sims_sorted


def _refine_block(
    concat: np.ndarray,
    neighbors: np.ndarray,
    block: np.ndarray,
    k: int,
    reverse: np.ndarray | None,
) -> np.ndarray:
    """One NNDescent update for the vertices in *block*."""
    cand_sorted, sims_sorted = block_candidate_sims(
        concat, neighbors, block, reverse=reverse
    )
    top = np.argpartition(-sims_sorted, k - 1, axis=1)[:, :k]
    return np.take_along_axis(cand_sorted, top, axis=1)


def nndescent(
    space: JointSpace,
    k: int,
    iterations: int = 3,
    seed: int = 0,
    block_size: int = 128,
    init: np.ndarray | None = None,
    use_reverse: bool = True,
    n_jobs: int = 1,
) -> np.ndarray:
    """Approximate joint-similarity KNN graph, shape ``(n, k)`` int32.

    ``init`` lets callers resume refinement from an existing graph
    (used by the γ/ε ablations to share work across parameter points).
    ``use_reverse`` enables the full bidirectional local join.

    ``n_jobs > 1`` refines the blocks of each iteration on a thread pool.
    The sequential sweep is Gauss–Seidel (later blocks see earlier
    blocks' fresh neighbours); the parallel sweep refines every block
    against the iteration-start snapshot (Jacobi), so its output is
    deterministic and independent of the worker count — but it is a
    *different* (equally valid) approximate KNN graph than ``n_jobs=1``
    produces, typically converging within one extra iteration.
    """
    n = space.n
    require(k < n, f"k={k} must be smaller than n={n}")
    concat = space.concatenated
    neighbors = (
        init.astype(np.int32).copy()
        if init is not None
        else random_knn(n, k, make_rng(seed))
    )
    require(neighbors.shape == (n, k), "init graph has wrong shape")
    workers = resolve_n_jobs(n_jobs)
    blocks = [
        np.arange(start, min(start + block_size, n))
        for start in range(0, n, block_size)
    ]
    for _ in range(max(0, iterations)):
        reverse = reverse_neighbors(neighbors, k) if use_reverse else None
        if workers == 1:
            for block in blocks:
                neighbors[block] = _refine_block(
                    concat, neighbors, block, k, reverse
                )
        else:
            snapshot = neighbors.copy()
            updates = thread_map(
                lambda block: _refine_block(
                    concat, snapshot, block, k, reverse
                ),
                blocks,
                n_jobs=workers,
            )
            for block, update in zip(blocks, updates):
                neighbors[block] = update
    return neighbors.astype(np.int32)


def graph_quality(
    space: JointSpace,
    neighbors: np.ndarray,
    sample: int = 200,
    seed: int = 0,
) -> float:
    """Mean overlap between graph neighbours and exact top-k (Tab. XI).

    Defined in the paper as "the mean ratio of γ neighbours of a vertex
    over the top-γ nearest neighbours based on joint similarity";
    estimated on a random vertex sample for tractability.
    """
    n, k = neighbors.shape
    rng = make_rng(seed)
    picks = rng.choice(n, size=min(sample, n), replace=False)
    concat = space.concatenated
    sims = concat[picks] @ concat.T  # (s, n)
    sims[np.arange(len(picks)), picks] = -np.inf
    exact = np.argpartition(-sims, k - 1, axis=1)[:, :k]
    overlaps = [
        np.intersect1d(exact[i], neighbors[picks[i]]).size / k
        for i in range(len(picks))
    ]
    return float(np.mean(overlaps))
