"""Component-based fused-index construction (paper §VII-A, Algorithm 1).

:class:`FusedIndexBuilder` assembles the five components —
① NNDescent initialisation, ② candidate acquisition, ③ neighbour
selection, ④ seed preprocessing, ⑤ connectivity — into the paper's
re-assembled "Ours" index.  Every stage is parameterised so the graph
ablation (Fig. 10) can swap strategies without new code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.space import JointSpace
from repro.index.base import GraphIndex
from repro.index.components import (
    angle_select,
    centroid_seed,
    ensure_connectivity,
    mrng_select,
    rng_alpha_select,
    search_based_candidates,
    top_gamma_select,
    two_hop_candidates,
)
from repro.index.nndescent import nndescent
from repro.utils.validation import require

__all__ = ["FusedIndexBuilder"]

_SELECTIONS = ("mrng", "angle", "alpha", "top")
_CANDIDATES = ("two-hop", "search")


@dataclass
class FusedIndexBuilder:
    """Builds the fused proximity-graph index of Algorithm 1.

    Parameters mirror the paper: ``gamma`` is the maximum out-degree
    (Appendix H recommends 30), ``epsilon`` the NNDescent iteration count
    (3 reaches ≥0.99 graph quality, Tab. XI).
    """

    gamma: int = 30
    epsilon: int = 3
    init_k: int | None = None
    max_candidates: int = 64
    selection: str = "mrng"
    candidate_source: str = "two-hop"
    alpha: float = 1.2
    min_angle_deg: float = 60.0
    seed: int = 0
    connect: bool = True
    name: str = "ours"
    extra_meta: dict = field(default_factory=dict)
    #: Thread-pool width for the NNDescent stage (see
    #: :func:`repro.index.nndescent.nndescent`); 1 keeps the sequential
    #: Gauss–Seidel sweep and its exact historical output.
    n_jobs: int = 1

    def __post_init__(self) -> None:
        require(self.gamma >= 1, "gamma must be positive")
        require(self.epsilon >= 0, "epsilon must be non-negative")
        require(self.selection in _SELECTIONS,
                f"selection must be one of {_SELECTIONS}")
        require(self.candidate_source in _CANDIDATES,
                f"candidate_source must be one of {_CANDIDATES}")

    def build(self, space: JointSpace) -> GraphIndex:
        """Run the five-component pipeline over *space*."""
        start = time.perf_counter()
        if space.n <= 2:
            return self._trivial(space, start)
        init_k = self.init_k if self.init_k is not None else self.gamma
        init_k = min(init_k, space.n - 1)

        # ① Initialisation — NNDescent KNN graph under joint similarity.
        knn = nndescent(
            space, k=init_k, iterations=self.epsilon, seed=self.seed,
            n_jobs=self.n_jobs,
        )

        # ④ Seed preprocessing (needed early by search-based candidates).
        seed_vertex = centroid_seed(space)

        # ② Candidate acquisition.
        if self.candidate_source == "two-hop":
            cand, sims = two_hop_candidates(
                space, knn, max_candidates=self.max_candidates
            )
        else:
            cand, sims = search_based_candidates(
                space, knn, entry=seed_vertex,
                max_candidates=self.max_candidates,
            )

        # ③ Neighbour selection.
        if self.selection == "mrng":
            neighbors = mrng_select(space, cand, sims, self.gamma)
        elif self.selection == "alpha":
            neighbors = rng_alpha_select(
                space, cand, sims, self.gamma, alpha=self.alpha
            )
        elif self.selection == "angle":
            neighbors = angle_select(
                space, cand, sims, self.gamma, min_angle_deg=self.min_angle_deg
            )
        else:
            neighbors = top_gamma_select(cand, sims, self.gamma)

        # ⑤ Connectivity.
        if self.connect:
            neighbors = ensure_connectivity(space, neighbors, seed_vertex)

        elapsed = time.perf_counter() - start
        meta = self._meta()
        return GraphIndex(
            space=space,
            neighbors=neighbors,
            seed_vertex=seed_vertex,
            name=self.name,
            build_seconds=elapsed,
            meta=meta,
        )

    def _meta(self) -> dict:
        return {
            "gamma": self.gamma,
            "epsilon": self.epsilon,
            "selection": self.selection,
            "candidate_source": self.candidate_source,
            **self.extra_meta,
        }

    def _trivial(self, space: JointSpace, start: float) -> GraphIndex:
        """Degenerate corpora (n ≤ 2): the pipeline's components assume
        at least one non-self neighbour per vertex, so emit the complete
        graph directly.  Compaction can shrink a segment this far."""
        n = space.n
        neighbors = [
            np.asarray([u for u in range(n) if u != v], dtype=np.int32)
            for v in range(n)
        ]
        return GraphIndex(
            space=space,
            neighbors=neighbors,
            seed_vertex=0,
            name=self.name,
            build_seconds=time.perf_counter() - start,
            meta=self._meta(),
        )
