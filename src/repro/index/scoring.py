"""Unified similarity-scoring engine for the whole search stack.

Every search path in the library — the two graph-search engines, the
exact :class:`~repro.index.flat.FlatIndex` scan, the construction-time
beam search, and the baselines — used to re-implement the same three
scoring branches.  This module is now their single home:

* **Concat fast path** — when :meth:`JointSpace.concat_query` can build a
  rescaled query vector, scoring a frontier is one gather + one GEMV
  against the ω-scaled concatenated matrix (Lemma 1).
* **Per-modality fallback** — when the fast path is impossible (the query
  needs a modality whose index weight is zero), similarities accumulate
  modality by modality via :meth:`JointSpace.query_ids`.
* **Asymmetric store kernels** — on a compressed
  :class:`~repro.store.VectorStore` the concat path is unavailable by
  design (materialising it would undo the compression); the scorer holds
  one per-modality kernel per query, so PQ lookup tables and
  scalar-quant rescales are built once and reused across every frontier
  wave.  :func:`rerank_exact` is the second stage of the ``refine=``
  pipeline: full-precision re-scoring of the compressed search's top
  survivors against the store's cold exact tier.
* **Lemma-4 pruned evaluation** — with ``early_termination`` the
  incremental multi-vector computation drops an object the moment its
  partial-IP upper bound falls to the pruning threshold
  (:meth:`JointSpace.query_ids_early_stop`); lossless by Lemma 4.
* **Stats accounting** — every branch feeds the same
  :class:`~repro.core.results.SearchStats` counters, so work comparisons
  stay consistent across engines and indexes.

:class:`Scorer` binds one (space, query, weights, early-termination)
configuration; it is cheap to construct and **stateless between calls**
apart from the stats counters, which is what makes one-scorer-per-query
execution safe under the thread-pool of
:class:`~repro.index.executor.BatchExecutor`.

:func:`batch_score_all` is the batched (many queries × whole corpus)
variant: all fast-path queries are stacked into one matrix and scored
with a single GEMM, the throughput core of the executor's exact path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.multivector import MultiVector
from repro.core.results import SearchStats
from repro.core.space import JointSpace
from repro.core.weights import Weights


def _per_query_weights(
    weights: Weights | Sequence[Weights | None] | None, count: int
) -> list[Weights | None]:
    """Normalise a batch's ``weights`` argument to one entry per query.

    A single :class:`Weights` (or None) applies to the whole batch — the
    historical contract; a sequence supplies per-query overrides, the
    typed-:class:`~repro.core.query.Query` path.  Per-element arithmetic
    is identical either way, so a batch with ``[w] * b`` is bit-identical
    to one with ``weights=w``.
    """
    if weights is None or isinstance(weights, Weights):
        return [weights] * count
    per_query = list(weights)
    if len(per_query) != count:
        raise ValueError(
            f"per-query weights cover {len(per_query)} queries, batch has "
            f"{count}"
        )
    return per_query

__all__ = ["MatrixScorer", "Scorer", "batch_score_all", "rerank_exact"]


class MatrixScorer:
    """Raw-matrix scorer for construction-time search (no weights, no stats).

    Index builders route over plain concatenated vectors where the query
    *is* a corpus row; there is nothing to rescale and no work counters
    to keep.  This thin wrapper still centralises the actual arithmetic
    so the gather + GEMV idiom lives in exactly one module.
    """

    __slots__ = ("matrix", "query_vec")

    def __init__(self, matrix: np.ndarray, query_vec: np.ndarray):
        self.matrix = matrix
        self.query_vec = query_vec

    def score_one(self, i: int) -> float:
        return float(self.matrix[i] @ self.query_vec)

    def score_ids(self, ids: np.ndarray) -> np.ndarray:
        return self.matrix[ids] @ self.query_vec


class Scorer:
    """Joint-similarity scorer for one query under one weight override.

    Owns the branch selection the searchers used to duplicate:

    ========================  ============================================
    configuration             scoring route
    ========================  ============================================
    default                   concat fast path (gather + GEMV, Lemma 1)
    zeroed index weight       per-modality fallback (``query_ids``)
    ``early_termination``     Lemma-4 pruned scan (``query_ids_early_stop``)
    ========================  ============================================

    All routes update :attr:`stats` with identical accounting, so results
    produced through the scorer are bit-identical to the historical
    per-call-site implementations.
    """

    def __init__(
        self,
        space: JointSpace,
        query: MultiVector,
        weights: Weights | None = None,
        early_termination: bool = False,
        stats: SearchStats | None = None,
        deterministic: bool = False,
    ):
        self.space = space
        self.query = query
        self.weights = weights
        self.early_termination = bool(early_termination)
        #: Route full scans through :meth:`JointSpace.query_ids_stable`
        #: so a row's similarity never depends on the corpus row count —
        #: the property the segmented exact path needs for bit-identical
        #: results across segment layouts (BLAS GEMV is not row-stable).
        self.deterministic = bool(deterministic)
        self.stats = stats if stats is not None else SearchStats()
        # The pruned path scores modality-by-modality on purpose, so the
        # concatenated fast path is only prepared when it is off.
        self._qcat = (
            None if early_termination else space.concat_query(query, weights)
        )
        self._concat = space.concatenated if self._qcat is not None else None
        self._active = sum(1 for q in query.vectors if q is not None)
        # Compressed store, no concat path: hold the per-modality
        # asymmetric kernels for the whole search, so per-query
        # preprocessing (PQ ADC tables, scalar-quant rescale) is paid
        # once, not per frontier wave.  The Lemma-4 path reuses them via
        # the ``kernels=`` hook; the deterministic scan never touches
        # them (it scores through the float64 row-stable route).
        self._kernels = (
            space.query_kernels(query, weights)
            if space.is_compressed and not self.deterministic
            else None
        )

    @property
    def has_fast_path(self) -> bool:
        """True when frontier scoring is a single GEMV."""
        return self._qcat is not None

    @property
    def num_active_modalities(self) -> int:
        """Modalities the query actually carries (``t`` in the paper)."""
        return self._active

    @property
    def concat_query_vector(self) -> np.ndarray | None:
        """Rescaled concat-space query (Lemma 1), or None off the fast
        path — lets the wave engine stack many queries' fast paths into
        one batched reduction without reaching into scorer internals."""
        return self._qcat

    # ------------------------------------------------------------------
    # Scoring routes
    # ------------------------------------------------------------------
    def score_ids(self, ids: np.ndarray) -> np.ndarray:
        """Joint similarities of the objects in *ids* (no pruning).

        Exact on dense stores; the store's asymmetric approximation on
        compressed ones (identical values to :meth:`JointSpace.query_ids`
        on the same store).
        """
        if self._qcat is not None:
            sims = (self._concat[ids] @ self._qcat).astype(np.float64)
            self.stats.joint_evals += int(ids.size)
            self.stats.modality_evals += int(ids.size) * self._active
            return sims
        if self._kernels is not None:
            out = np.zeros(ids.shape[0], dtype=np.float64)
            for _, w2_i, kernel in self._kernels:
                out += w2_i * kernel.ids(ids).astype(np.float64)
            self.stats.joint_evals += int(ids.size)
            self.stats.modality_evals += int(ids.size) * len(self._kernels)
            return out
        return self.space.query_ids(
            self.query, ids, weights=self.weights, stats=self.stats
        )

    def score_frontier(
        self, ids: np.ndarray, threshold: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Score one frontier wave against a pruning *threshold*.

        Returns ``(sims, keep)`` where ``keep[j]`` is True when ``ids[j]``
        beats the threshold with an **exact** similarity — under Lemma-4
        pruning a dropped object carries only its upper bound, which is
        already ≤ the threshold, so the mask is identical in all routes.
        """
        if self.early_termination:
            sims, exact = self.space.query_ids_early_stop(
                self.query, ids, threshold, weights=self.weights,
                stats=self.stats,
                kernels=(
                    {i: kern for i, _, kern in self._kernels}
                    if self._kernels is not None
                    else None
                ),
            )
            return sims, exact & (sims > threshold)
        sims = self.score_ids(ids)
        return sims, sims > threshold

    def score_all(self) -> np.ndarray:
        """Full-corpus joint similarities (the exact-search scan)."""
        n = self.space.n
        if self.deterministic:
            sims = self.space.query_ids_stable(self.query, weights=self.weights)
        elif self._kernels is not None:
            sims = np.zeros(n, dtype=np.float64)
            for _, w2_i, kernel in self._kernels:
                sims += w2_i * kernel.all().astype(np.float64)
        else:
            sims = self.space.query_all(self.query, weights=self.weights)
        self.stats.joint_evals += n
        self.stats.modality_evals += n * self._active
        self.stats.visited_vertices += n
        return sims


def batch_score_all(
    space: JointSpace,
    queries: list[MultiVector],
    weights: Weights | Sequence[Weights | None] | None = None,
) -> tuple[list[np.ndarray], list[SearchStats]]:
    """Score many queries against the whole corpus in one GEMM.

    The batched exact path of :class:`~repro.index.executor.BatchExecutor`:
    every query with a concat fast path contributes one column to a
    stacked query matrix, and a single ``(n, D) @ (D, b)`` GEMM replaces
    ``b`` separate scans.  Queries without a fast path (zeroed index
    weight) fall back to the per-query :meth:`Scorer.score_all`.

    ``weights`` is either one override for the whole batch or a sequence
    of per-query overrides (the typed-``Query`` path) — each query's
    rescaled concat column already bakes its own weights in, so mixed
    batches still share the one GEMM.

    Returns per-query ``(sims, stats)`` aligned with *queries*.  Note the
    numerics: the stacked path scores through the rescaled float32
    concatenation (Lemma 1), while the sequential :meth:`Scorer.score_all`
    accumulates per modality in float64 — similarities can diverge by
    ~1e-7 on unit-norm data, which only matters for objects whose joint
    similarities are closer than that (ranks are unaffected on
    non-degenerate data).
    """
    n = len(queries)
    sims_out: list[np.ndarray | None] = [None] * n
    stats_out: list[SearchStats] = [SearchStats() for _ in range(n)]
    per_query = _per_query_weights(weights, n)

    if space.is_compressed:
        return _batch_score_compressed(space, queries, per_query, stats_out)

    stacked: list[np.ndarray] = []
    fast_rows: list[int] = []
    for row, query in enumerate(queries):
        qcat = space.concat_query(query, per_query[row])
        if qcat is None:
            scorer = Scorer(space, query, weights=per_query[row],
                            stats=stats_out[row])
            sims_out[row] = scorer.score_all()
        else:
            stacked.append(qcat)
            fast_rows.append(row)

    if fast_rows:
        block = space.concatenated @ np.stack(stacked, axis=1)  # (n_obj, b)
        block = block.astype(np.float64)
        for col, row in enumerate(fast_rows):
            sims_out[row] = block[:, col]
            active = sum(
                1 for q in queries[row].vectors if q is not None
            )
            stats = stats_out[row]
            stats.joint_evals += space.n
            stats.modality_evals += space.n * active
            stats.visited_vertices += space.n
    return sims_out, stats_out


def _batch_score_compressed(
    space: JointSpace,
    queries: list[MultiVector],
    weights: list[Weights | None],
    stats_out: list[SearchStats],
) -> tuple[list[np.ndarray], list[SearchStats]]:
    """Batched asymmetric scan: one store GEMM/ADC wave per modality.

    The compressed counterpart of the stacked-concat GEMM: for each
    modality, every query carrying it contributes one column to a stacked
    query matrix scored by :meth:`~repro.store.VectorStore.batch_scores`
    (dense-ish backends run one GEMM; PQ gathers one LUT block).  The
    per-query float64 weighting happens outside the float32 wave — same
    ~1e-7 numerics caveat as the dense batch path.
    """
    n_obj = space.n
    store = space.store
    sims_out: list[np.ndarray] = [
        np.zeros(n_obj, dtype=np.float64) for _ in queries
    ]
    w2_rows = [
        space.effective_squared_weights(q, w)
        for q, w in zip(queries, weights)
    ]
    for i in range(space.num_modalities):
        cols = [
            row
            for row, q in enumerate(queries)
            if q.vectors[i] is not None and w2_rows[row][i] > 0.0
        ]
        if not cols:
            continue
        stacked = np.stack(
            [queries[row].vectors[i].astype(np.float32) for row in cols]
        )
        block = store.batch_scores(i, stacked)  # (n_obj, b_i)
        for col, row in enumerate(cols):
            sims_out[row] += w2_rows[row][i] * block[:, col].astype(np.float64)
    for row, query in enumerate(queries):
        stats = stats_out[row]
        active = sum(1 for q in query.vectors if q is not None)
        stats.joint_evals += n_obj
        stats.modality_evals += n_obj * active
        stats.visited_vertices += n_obj
    return sims_out, stats_out


def rerank_exact(
    space: JointSpace,
    query: MultiVector,
    ids: np.ndarray,
    k: int,
    weights: Weights | None = None,
    stats: SearchStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stage two of the ``refine=`` pipeline: full-precision top-*k*.

    Re-scores the candidate *ids* (local row numbers) against the
    store's cold exact tier and returns the best *k* ordered by
    ``(-similarity, id)``.  With a dense store this is an exact
    re-evaluation (same values, fresh float64 accumulation); with a
    compressed store it removes the quantisation error from the final
    ranking — recall can only improve over returning the approximate
    order, since the candidate set is unchanged.
    """
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return ids, np.zeros(0, dtype=np.float64)
    sims = space.query_ids_exact(query, ids, weights=weights, stats=stats)
    order = np.lexsort((ids, -sims))[:k]
    return ids[order], sims[order]
