"""Joint search over a fused proximity graph (paper §VII-B, Algorithm 2).

Greedy best-first routing with a result set ``R`` of size ``l``: starting
from the seed vertex plus ``l−1`` random vertices, repeatedly expand the
unvisited vertex of ``R`` closest to the query, score its neighbours, and
keep the best ``l``.  Lemma 3 guarantees the total similarity of ``R`` is
non-decreasing; the optional ``check_monotone`` flag asserts it.

Two engines implement the same routing:

* ``engine="paper"`` — a literal transcription of Algorithm 2 (expands
  every member of ``R``; useful as a reference and in tests).
* ``engine="heap"`` (default) — the standard two-heap formulation used by
  production graph indexes (HNSW/NSG): identical greedy order, but stops
  once the best unexpanded candidate cannot enter the result set.  Same
  accuracy knob ``l``, lower constant overhead.

With ``early_termination=True`` neighbour scoring goes through the
incremental multi-vector computation (Lemma 4): per-modality distances
accumulate and a neighbour is dropped the moment its partial-IP upper
bound cannot beat the current worst of ``R`` — identical results, fewer
modality evaluations (Fig. 10(c)).

All similarity arithmetic (concat fast path, per-modality fallback,
Lemma-4 pruning, stats accounting) lives in the shared
:class:`~repro.index.scoring.Scorer`; the engines here only own the
routing.  Batches of queries should go through
:class:`~repro.index.executor.BatchExecutor` rather than a caller-side
loop.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.multivector import MultiVector
from repro.core.query import Query, unpack_query
from repro.core.results import SearchResult, SearchStats
from repro.core.weights import Weights
from repro.index.base import GraphIndex
from repro.index.scoring import MatrixScorer, Scorer, rerank_exact
from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = ["joint_search", "greedy_search_graph"]


def joint_search(
    index: GraphIndex,
    query: MultiVector | Query,
    k: int,
    l: int,
    weights: Weights | None = None,
    early_termination: bool = False,
    engine: str = "heap",
    rng: np.random.Generator | int | None = 0,
    check_monotone: bool = False,
    refine: int | None = None,
    filter_memo: dict | None = None,
) -> SearchResult:
    """Approximate top-*k* joint search (Algorithm 2).

    ``weights`` overrides the index weights at query time (user-defined
    weights, Fig. 4(g) Option 2); ``l`` trades accuracy for latency.
    ``early_termination`` enables the Lemma-4 multi-vector optimisation;
    it never changes the returned ids.  Note: in this pure-Python port
    the *wall-clock* win of the optimisation is muted by interpreter
    overhead, so it is off by default and its effect is reported in
    saved modality evaluations (see benchmarks/bench_fig10c).

    A typed :class:`Query` supplies per-query weights, a per-query ``k``
    override, and an attribute ``filter``.  The compiled filter mask is
    handled like the §IX deletion bitset — the standard filtered-ANN
    construction: inadmissible vertices still *route* (dropping them
    could disconnect the graph around the answer set) but can never
    occupy a result slot, so the search converges onto the admissible
    region instead of terminating on unreachable candidates.

    ``refine=r`` enables the two-stage rerank pipeline (for compressed
    vector stores): the routing phase collects the top ``r·k``
    candidates by hot-tier (possibly quantised) similarity, then
    re-scores exactly those survivors at full precision against the
    store's exact tier and returns the best *k*.  ``l`` is raised to at
    least ``r·k`` so the result set can hold the candidates.

    ``filter_memo`` is the batch executor's per-wave filter-compilation
    cache (:func:`~repro.core.query.compile_filter`): queries sharing
    one ``Filter`` instance compile it once per corpus slice instead of
    once per call.
    """
    query, k_eff, weights, mask = unpack_query(
        query, k, weights, index.space.vectors.attributes, memo=filter_memo
    )
    if k_eff != k:
        # A per-query Query.k override widens the result set as needed —
        # the wave-level l was sized for the wave-level k, and the
        # segmented path gives the override the same treatment.
        l = max(l, k_eff)
    k = k_eff
    require(k >= 1, "k must be positive")
    require(l >= k, f"result set size l={l} must be at least k={k}")
    require(engine in ("heap", "paper"), "engine must be 'heap' or 'paper'")
    require(refine is None or refine >= 1, "refine must be >= 1")
    if mask is None:
        excluded = index.deleted
        reportable = index.num_active
    else:
        excluded = (
            ~mask if index.deleted is None else (~mask | index.deleted)
        )
        reportable = int(index.n - excluded.sum())
        if reportable == 0:
            return SearchResult(
                ids=np.zeros(0, dtype=np.int64),
                similarities=np.zeros(0, dtype=np.float64),
                stats=SearchStats(),
            )
    k_inner, l_inner = k, l
    if refine is not None:
        k_inner = k * refine
        l_inner = max(l, k_inner)
    search_fn = _heap_search if engine == "heap" else _paper_search
    result = search_fn(
        index, query, k_inner, l_inner, weights, early_termination, rng,
        check_monotone, excluded, reportable,
    )
    if refine is None:
        return result
    ids, sims = rerank_exact(
        index.space, query, result.ids, k, weights=weights,
        stats=result.stats,
    )
    return SearchResult(ids=ids, similarities=sims, stats=result.stats)


def _init_result_set(
    index: GraphIndex, l: int, rng: np.random.Generator | int | None
) -> np.ndarray:
    """Seed vertex plus ``l−1`` distinct random vertices (Alg. 2, l.1-3)."""
    n = index.space.n
    init_size = min(l, n)
    if init_size == n:
        return np.arange(n, dtype=np.int64)
    rng = make_rng(rng)
    extra = rng.choice(n - 1, size=init_size - 1, replace=False)
    # Shift around the seed so it is never drawn twice.
    extra = (extra + index.seed_vertex + 1) % n
    return np.concatenate([[index.seed_vertex], extra]).astype(np.int64)


def _heap_search(
    index: GraphIndex,
    query: MultiVector,
    k: int,
    l: int,
    weights: Weights | None,
    early_termination: bool,
    rng,
    check_monotone: bool,
    excluded: np.ndarray | None,
    reportable: int,
) -> SearchResult:
    space = index.space
    n = space.n
    scorer = Scorer(space, query, weights=weights,
                    early_termination=early_termination)
    stats = scorer.stats

    r_ids = _init_result_set(index, l, rng)
    seen = np.zeros(n, dtype=bool)
    seen[r_ids] = True
    init_sims = scorer.score_ids(r_ids)

    # Excluded vertices — soft-deleted (§IX bitset) or outside the
    # query's filter mask — route but never enter results.
    deleted = excluded
    cap = min(l, reportable)

    # results: min-heap of (sim, id) capped at |R|; candidates: max-heap.
    results = [
        (float(s), int(v))
        for s, v in zip(init_sims, r_ids)
        if deleted is None or not deleted[v]
    ]
    heapq.heapify(results)
    candidates = [(-float(s), int(v)) for s, v in zip(init_sims, r_ids)]
    heapq.heapify(candidates)
    neighbors = index.neighbors
    total = float(sum(s for s, _ in results))

    def threshold_now() -> float:
        return results[0][0] if len(results) >= cap else -np.inf

    while candidates:
        neg_sim, v = heapq.heappop(candidates)
        if -neg_sim < threshold_now():
            break  # best unexpanded candidate cannot improve R
        stats.hops += 1
        stats.visited_vertices += 1
        adj = neighbors[v]
        fresh = adj[~seen[adj]]
        if fresh.size == 0:
            continue
        seen[fresh] = True
        threshold = threshold_now()
        sims, keep = scorer.score_frontier(fresh, threshold)
        win = np.flatnonzero(keep)
        for j in win:
            sim = float(sims[j])
            u = int(fresh[j])
            if sim <= threshold_now():
                continue
            heapq.heappush(candidates, (-sim, u))
            if deleted is not None and deleted[u]:
                continue  # routes, but cannot be an answer
            if len(results) < cap:
                heapq.heappush(results, (sim, u))
                total += sim
                continue
            dropped = heapq.heappushpop(results, (sim, u))
            if check_monotone:
                new_total = total + sim - dropped[0]
                # Lemma 3: f(η) is monotonically non-decreasing.
                assert new_total >= total - 1e-9, (
                    f"Lemma 3 violated: {new_total} < {total}"
                )
                total = new_total

    ranked = sorted(results, key=lambda t: (-t[0], t[1]))[:k]
    return SearchResult(
        ids=np.asarray([v for _, v in ranked], dtype=np.int64),
        similarities=np.asarray([s for s, _ in ranked]),
        stats=stats,
    )


def _paper_search(
    index: GraphIndex,
    query: MultiVector,
    k: int,
    l: int,
    weights: Weights | None,
    early_termination: bool,
    rng,
    check_monotone: bool,
    excluded: np.ndarray | None,
    reportable: int,
) -> SearchResult:
    space = index.space
    n = space.n
    scorer = Scorer(space, query, weights=weights,
                    early_termination=early_termination)
    stats = scorer.stats

    r_ids = _init_result_set(index, l, rng)
    init_size = r_ids.size
    seen = np.zeros(n, dtype=bool)
    expanded = np.zeros(n, dtype=bool)
    seen[r_ids] = True
    r_sims = scorer.score_ids(r_ids)

    last_total = -np.inf
    while True:
        pending = ~expanded[r_ids]
        if not pending.any():
            break
        # Unvisited vertex of R nearest to the query (l.5).
        local = np.flatnonzero(pending)
        v = int(r_ids[local[np.argmax(r_sims[local])]])
        expanded[v] = True
        stats.hops += 1
        stats.visited_vertices += 1

        adj = index.neighbors[v]
        fresh = adj[~seen[adj]]
        if fresh.size:
            seen[fresh] = True
            threshold = float(r_sims.min()) if r_ids.size >= init_size else -np.inf
            sims, keep = scorer.score_frontier(fresh, threshold)
            if keep.any():
                r_ids = np.concatenate([r_ids, fresh[keep]])
                r_sims = np.concatenate([r_sims, sims[keep]])
                if r_ids.size > init_size:
                    top = np.argpartition(-r_sims, init_size - 1)[:init_size]
                    r_ids, r_sims = r_ids[top], r_sims[top]

        if check_monotone:
            total = float(r_sims.sum())
            # Lemma 3: f(η) is monotonically non-decreasing.
            assert total >= last_total - 1e-9, (
                f"Lemma 3 violated: {total} < {last_total}"
            )
            last_total = total

    if excluded is not None:
        # §IX bitset + filter mask: excluded vertices participated in
        # routing via R but are stripped from the answer (the heap engine
        # additionally keeps them from occupying result slots).
        keep = ~excluded[r_ids]
        r_ids, r_sims = r_ids[keep], r_sims[keep]
    order = np.lexsort((r_ids, -r_sims))[:k]
    return SearchResult(ids=r_ids[order], similarities=r_sims[order], stats=stats)


def greedy_search_graph(
    concat: np.ndarray,
    neighbors: list[np.ndarray] | np.ndarray,
    entry: int,
    query_vec: np.ndarray,
    beam: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Construction-time beam search on raw concatenated vectors.

    Used internally while *building* indexes (NSG candidate acquisition,
    HNSW insertion, Vamana passes): returns every expanded vertex and its
    similarity, best first.  Query-time search should use
    :func:`joint_search` instead, which adds weights/pruning/stats.
    """
    n = concat.shape[0]
    scorer = MatrixScorer(concat, query_vec)
    seen = np.zeros(n, dtype=bool)
    seen[entry] = True
    entry_sim = scorer.score_one(entry)
    results = [(entry_sim, entry)]
    candidates = [(-entry_sim, entry)]
    expanded_ids: list[int] = [entry]
    expanded_sims: list[float] = [entry_sim]
    while candidates:
        neg_sim, v = heapq.heappop(candidates)
        if len(results) >= beam and -neg_sim < results[0][0]:
            break
        adj = np.asarray(neighbors[v])
        fresh = adj[~seen[adj]]
        if fresh.size == 0:
            continue
        seen[fresh] = True
        sims = scorer.score_ids(fresh)
        threshold = results[0][0] if len(results) >= beam else -np.inf
        for j in np.flatnonzero(sims > threshold):
            sim = float(sims[j])
            u = int(fresh[j])
            heapq.heappush(candidates, (-sim, u))
            expanded_ids.append(u)
            expanded_sims.append(sim)
            if len(results) < beam:
                heapq.heappush(results, (sim, u))
            else:
                heapq.heappushpop(results, (sim, u))
    order = np.argsort(-np.asarray(expanded_sims), kind="stable")
    ids = np.asarray(expanded_ids, dtype=np.int64)[order]
    sims = np.asarray(expanded_sims)[order]
    return ids, sims
