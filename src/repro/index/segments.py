"""Segmented dynamic-update subsystem: streaming inserts + auto-compaction.

The paper's §IX sketches dynamic updates as a data-status bitset plus
periodic reconstruction.  This module turns that sketch into an LSM-style
segmented index, the architecture streaming vector stores use:

* a list of **sealed** immutable :class:`~repro.index.base.GraphIndex`
  segments, each a self-contained graph over its own vector slice;
* one **mutable delta segment** fed by incremental HNSW insertion
  (:meth:`~repro.index.graphs.hnsw.HNSWBuilder.insert` — §IX names HNSW
  and Vamana as the index families that admit it);
* a global id map: every object carries a **stable external id**,
  allocated monotonically and never reused, so ids survive sealing,
  compaction, and persistence round-trips;
* per-segment §IX deletion bitsets — tombstones keep routing searches
  inside their segment but never surface in results;
* a **seal/compaction policy** (:class:`SegmentPolicy`): the delta seals
  into an immutable graph at a size threshold, and the whole index is
  rebuilt over the surviving objects — the §IX "periodic reconstruction"
  made automatic — when the tombstone fraction or the segment count
  crosses configurable ratios;
* a **compressed serving tier**: with ``compression=`` every sealed
  segment's vectors live in a :mod:`repro.store` backend (float16 /
  int8-SQ / PQ) encoded at seal/compact time, while the delta stays
  dense float32 for incremental insertion; manifests persist store kind
  + codebooks per segment (``format_version`` 2) and compaction rebuilds
  from the exact cold tier so quantisation error never accumulates.

All cross-segment searching lives in :class:`SegmentView`, a fixed
list of segments: :class:`SegmentedIndex` delegates its search entry
points to a live view, and :meth:`SegmentedIndex.snapshot` returns a
**frozen** view (copied bitsets, detached containers) whose answers
later inserts/deletes/compactions can never change — the snapshot
primitive the serving layer (:mod:`repro.service`) batches against.
:meth:`SegmentView.exact_wave` is the serving layer's coalesced exact
batch: a float32 GEMM prefilter per segment plus a float64 rerank
through the layout-independent kernel, bit-identical to per-query
:meth:`SegmentView.exact_search`.

Cross-segment search asks every segment for its top-``l`` candidates
through the unified scorer stack (:func:`~repro.index.search.joint_search`
per sealed/delta graph, :class:`~repro.index.flat.FlatIndex` for exact
scans) and merges by ``(similarity, external id)``.  The exact
single-query path scores through the layout-independent kernel
(:meth:`~repro.core.space.JointSpace.query_ids_stable`), so its results
are **bit-identical regardless of how the corpus is split into
segments**; the exact batch path keeps the per-segment GEMM waves (same
~1e-7 numerics caveat as :meth:`FlatIndex.batch_search`).  Graph-path
determinism mirrors the executor: per-segment init draws come from
:class:`numpy.random.SeedSequence` children, so batches are
bit-identical for any thread count.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.attributes import AttributeTable
from repro.core.multivector import MultiVector, MultiVectorSet
from repro.core.query import Query, as_query, compile_filter
from repro.core.results import SearchResult, SearchStats
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.base import GraphIndex, reseat_on_store
from repro.index.flat import FlatIndex
from repro.index.graphs.hnsw import HNSWBuilder, HNSWGraph
from repro.index.pipeline import FusedIndexBuilder
from repro.index.scoring import batch_score_all, rerank_exact
from repro.index.search import joint_search
from repro.sparse.hybrid import hybrid_union_rescore
from repro.sparse.store import SparseStats, SparseStore, sum_stats
from repro.store import (
    STORE_KINDS,
    ColdPlane,
    MmapPlane,
    spill_cold,
    store_from_arrays,
)
from repro.utils.io import load_arrays, pack_adjacency, save_arrays
from repro.utils.rng import spawn, spawn_seed_sequences
from repro.utils.validation import require

__all__ = [
    "SegmentPolicy",
    "Segment",
    "SegmentView",
    "SegmentedIndex",
    "MANIFEST_NAME",
    "FORMAT_VERSION",
]

MANIFEST_NAME = "manifest.json"
#: current manifest format; v1 archives (pre-store, implicitly dense
#: float32) and v2 archives (store-aware, all-resident) are still
#: readable.  v3 adds per-segment storage mode: segments whose cold
#: tier lives in sidecar ``.npy`` files carry ``"storage": "mmap"`` and
#: a ``"cold_files"`` list; everything else loads exactly as v2.
#: v4 adds sparse lexical plane descriptors: segments with a sparse
#: plane carry its CSR arrays under the ``sparse__`` prefix in their
#: archives.  Indexes without a sparse plane keep *writing* v2 (or v3
#: when memory-mapped), so their archives stay bit-identical to
#: previous releases and remain loadable by older library versions.
_FORMAT_V1 = "must-segments-v1"
_FORMAT = "must-segments-v2"
_FORMAT_V3 = "must-segments-v3"
_FORMAT_V4 = "must-segments-v4"
FORMAT_VERSION = 4


@dataclass
class SegmentPolicy:
    """Seal/compaction knobs — §IX "periodic reconstruction" made automatic.

    ``seal_size``: the delta segment is sealed into an immutable graph
    once it holds this many objects.  ``max_segments``: a merge
    compaction runs when the sealed-segment count exceeds this.
    ``max_deleted_fraction``: a compaction runs when tombstones exceed
    this share of the whole corpus (ignored below ``min_compact_size``
    objects, where rebuilding costs more than the tombstones do).
    """

    seal_size: int = 128
    max_segments: int = 4
    max_deleted_fraction: float = 0.3
    min_compact_size: int = 64

    def __post_init__(self) -> None:
        require(self.seal_size >= 1, "seal_size must be positive")
        require(self.max_segments >= 1, "max_segments must be positive")
        require(0.0 < self.max_deleted_fraction <= 1.0,
                "max_deleted_fraction must be in (0, 1]")
        require(self.min_compact_size >= 0,
                "min_compact_size must be non-negative")

    def to_dict(self) -> dict:
        return {
            "seal_size": self.seal_size,
            "max_segments": self.max_segments,
            "max_deleted_fraction": self.max_deleted_fraction,
            "min_compact_size": self.min_compact_size,
        }


@dataclass
class Segment:
    """One searchable slice: a graph over its own vectors + the id map."""

    index: GraphIndex
    ext_ids: np.ndarray
    kind: str = "sealed"

    def __post_init__(self) -> None:
        self.ext_ids = np.asarray(self.ext_ids, dtype=np.int64)
        require(self.ext_ids.size == self.index.n,
                "one external id per segment row required")

    @property
    def n(self) -> int:
        return self.index.n

    @property
    def num_active(self) -> int:
        return self.index.num_active

    @property
    def space(self) -> JointSpace:
        return self.index.space


class _DeltaSegment:
    """The mutable head of the LSM hierarchy.

    Vectors accumulate in per-modality matrices; every appended object is
    inserted into a persistent :class:`HNSWGraph` whose base layer is
    materialised on demand for searching.  Each vertex draws its HNSW
    level from a child seed derived from its *external id*, so the delta
    graph is a deterministic function of the inserted set and order —
    independent of unrelated earlier traffic.
    """

    def __init__(self, weights: Weights):
        self.weights = weights
        self.mats: list[np.ndarray] | None = None
        self.attrs: AttributeTable | None = None
        self.sparse: SparseStore | None = None
        self.ext_ids = np.zeros(0, dtype=np.int64)
        self.deleted = np.zeros(0, dtype=bool)
        self.graph = HNSWGraph()
        self._space: JointSpace | None = None
        self._materialized: GraphIndex | None = None

    @property
    def n(self) -> int:
        return int(self.ext_ids.size)

    @property
    def num_active(self) -> int:
        return int(self.n - self.deleted.sum())

    @property
    def space(self) -> JointSpace:
        require(self._space is not None, "delta segment is empty")
        return self._space

    def append(
        self,
        objects: MultiVectorSet,
        ext_ids: np.ndarray,
        hnsw: HNSWBuilder,
        seed: int,
    ) -> None:
        start = self.n
        if self.mats is None:
            self.mats = [m.copy() for m in objects.matrices]
            self.attrs = objects.attributes
            self.sparse = objects.sparse
        else:
            require(
                objects.dims == tuple(m.shape[1] for m in self.mats),
                "inserted objects must match the corpus modality dims",
            )
            self.mats = [
                np.concatenate([old, new])
                for old, new in zip(self.mats, objects.matrices)
            ]
            if self.attrs is not None:
                # Field consistency is enforced upstream in
                # SegmentedIndex.insert; concat re-checks it.
                self.attrs = AttributeTable.concat(
                    [self.attrs, objects.attributes]
                )
            if self.sparse is not None or objects.sparse is not None:
                # Presence parity is enforced upstream in
                # SegmentedIndex.insert; concat re-checks vocab/metric.
                require(
                    self.sparse is not None and objects.sparse is not None,
                    "inserted objects must carry a sparse plane exactly "
                    "when the corpus does",
                )
                self.sparse = SparseStore.concat(
                    [self.sparse, objects.sparse]
                )
        self.ext_ids = np.concatenate([self.ext_ids, ext_ids])
        self.deleted = np.concatenate(
            [self.deleted, np.zeros(ext_ids.size, dtype=bool)]
        )
        self._space = JointSpace(
            MultiVectorSet(
                self.mats, attributes=self.attrs, sparse=self.sparse
            ),
            self.weights,
        )
        self._materialized = None
        for local in range(start, self.n):
            rng = spawn(seed, "hnsw-level", int(self.ext_ids[local]))
            hnsw.insert(self._space, self.graph, local, rng)

    def as_segment(self, hnsw: HNSWBuilder) -> Segment:
        """Materialise the base layer as a searchable transient segment."""
        if self._materialized is None:
            self._materialized = hnsw.materialize(self.space, self.graph)
        self._materialized.deleted = (
            self.deleted if bool(self.deleted.any()) else None
        )
        return Segment(self._materialized, self.ext_ids, kind="delta")

    def reset(self) -> None:
        self.mats = None
        self.attrs = None
        self.sparse = None
        self.ext_ids = np.zeros(0, dtype=np.int64)
        self.deleted = np.zeros(0, dtype=bool)
        self.graph = HNSWGraph()
        self._space = None
        self._materialized = None


def _mark_local(index: GraphIndex, local_ids: np.ndarray) -> None:
    """Set bitset rows directly — unlike :meth:`GraphIndex.mark_deleted`
    this permits a *segment* to become fully dead (the global liveness
    guard lives in :meth:`SegmentedIndex.mark_deleted`)."""
    if index.deleted is None:
        index.deleted = np.zeros(index.n, dtype=bool)
    index.deleted[local_ids] = True


def _merge_candidates(
    parts: list[tuple[np.ndarray, np.ndarray]], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Global top-*k* of per-segment candidate lists, ordered by
    ``(-similarity, external id)`` — external ids are unique across
    segments, so no dedup is needed."""
    if not parts:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    ids = np.concatenate([p[0] for p in parts])
    sims = np.concatenate([p[1] for p in parts])
    order = np.lexsort((ids, -sims))[:k]
    return ids[order], sims[order]


def _admissible_mask(
    seg: Segment, typed: Query, memo: dict | None = None
) -> np.ndarray | None:
    """Boolean ``filter ∧ ¬deleted`` mask over a segment's rows.

    The admissibility the sparse candidate generator must honour — the
    dense graph searcher enforces the same two conditions internally, so
    the hybrid union draws both candidate sets from one corpus view.
    ``None`` means every row is admissible."""
    mask = None
    if seg.index.deleted is not None:
        mask = ~seg.index.deleted
    if typed.filter is not None:
        fmask = compile_filter(
            typed.filter, seg.space.vectors.attributes,
            context=f"{seg.kind} segment", memo=memo,
        )
        mask = fmask if mask is None else (mask & fmask)
    return mask


def _segment_rngs(rng, count: int) -> list:
    """One init-draw source per segment, deterministic per query.

    A :class:`~numpy.random.SeedSequence` (or an int/None seed)
    spawns independent children — the property that makes batch
    results identical for any thread count; a live Generator is
    shared sequentially (legacy single-query behaviour)."""
    if isinstance(rng, np.random.Generator):
        return [rng] * count
    if not isinstance(rng, np.random.SeedSequence):
        rng = np.random.SeedSequence(rng)
    return [np.random.default_rng(s) for s in spawn_seed_sequences(rng, count)]


class SegmentView:
    """A fixed list of searchable segments — the cross-segment read path.

    :class:`SegmentedIndex` delegates every search entry point to a view
    over its current segments, and :meth:`SegmentedIndex.snapshot`
    returns a **frozen** view (copied deletion bitsets, detached index
    containers) that later inserts/deletes/compactions can never touch —
    the snapshot-isolation primitive the serving layer
    (:class:`~repro.service.MustService`) builds on.  A view never
    mutates: it has no insert/seal/compact machinery, only searches.

    Search semantics are identical whether a view is live or frozen; a
    frozen view simply keeps answering from the state it captured.
    """

    def __init__(self, segments: list[Segment]):
        self.segments = list(segments)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def searchable_segments(self) -> list[Segment]:
        return self.segments

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def num_total(self) -> int:
        """Objects including tombstones."""
        return sum(seg.n for seg in self.segments)

    @property
    def num_active(self) -> int:
        return sum(seg.num_active for seg in self.segments)

    def active_ext_ids(self) -> np.ndarray:
        """External ids of all live objects, ascending."""
        parts = []
        for seg in self.segments:
            if seg.index.deleted is None:
                parts.append(seg.ext_ids)
            else:
                parts.append(seg.ext_ids[~seg.index.deleted])
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def prepare_search(self) -> None:
        """Materialise every lazy artifact (per-segment concatenated
        matrices) so thread-pool workers never race to build them.
        Compressed segments have no concat matrix to build — materialising
        one would undo the compression — and their per-query kernels are
        thread-local by construction."""
        for seg in self.segments:
            if not seg.space.is_compressed:
                seg.space.concatenated

    def memory_stats(self) -> dict:
        """Byte accounting split by tier, summed over the segments.

        ``hot_bytes`` (codes + codebooks, always resident),
        ``cold_bytes`` (logical size of the exact tier wherever it
        lives) and ``resident_bytes`` (hot plus the RAM-resident part
        of cold — equal to hot for fully memory-mapped cold tiers).
        """
        hot = cold = resident = 0
        for seg in self.segments:
            store = seg.space.vectors.store
            hot += store.hot_bytes()
            cold += store.cold_bytes()
            resident += store.resident_bytes()
        return {
            "hot_bytes": int(hot),
            "cold_bytes": int(cold),
            "resident_bytes": int(resident),
        }

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------
    def search(
        self,
        query: MultiVector | Query,
        k: int = 10,
        l: int = 100,
        weights: Weights | None = None,
        early_termination: bool = False,
        engine: str = "heap",
        rng: np.random.Generator | np.random.SeedSequence | int | None = 0,
        refine: int | None = None,
        sparse_engine: str = "auto",
        **search_kwargs,
    ) -> SearchResult:
        """Cross-segment graph search: per-segment top-``l`` candidates
        through :func:`joint_search`, merged by ``(similarity, id)``.
        Result ids are external ids.

        A typed :class:`Query` carries per-query weights/filter/k; its
        filter compiles against each segment's own attribute slice
        inside :func:`joint_search`, so masked-out vertices still route
        within their segment but never surface.

        ``refine=r`` runs the two-stage rerank per segment: each
        segment's top ``min(r·k, |candidates|)`` hot-tier survivors are
        re-scored at full precision before the cross-segment merge, so
        the merged ranking is by exact similarity.

        A hybrid query (``Query.sparse=``) fuses per segment: the dense
        traversal's candidates union with the sparse engine's top
        admissible rows and the union is exact-rescored under the
        combined metric (:func:`hybrid_union_rescore`) — which subsumes
        ``refine``, since the rescore already reads the exact tier.
        """
        require(refine is None or refine >= 1, "refine must be >= 1")
        typed = as_query(query)
        k = typed.resolve_k(k)
        weights = typed.resolve_weights(weights)
        memo: dict = {}  # hybrid admissibility: compile filters once
        # The per-query k override must not shrink the *per-segment*
        # candidate pool (k=min(l, active) below), so strip it before
        # the inner searches; weights/filter still ride along.  It may
        # however *widen* the pool — the wave-level l was sized for the
        # wave-level k (the single-graph path does the same).
        inner = typed
        if typed.k is not None:
            inner = dataclasses.replace(typed, k=None)
            l = max(l, k)
        segs = self.segments
        rngs = _segment_rngs(rng, len(segs))
        parts: list[tuple[np.ndarray, np.ndarray]] = []
        stats_parts: list[SearchStats] = []
        for seg, seg_rng in zip(segs, rngs):
            if seg.num_active == 0:
                continue
            res = joint_search(
                seg.index,
                inner,
                k=min(l, seg.num_active),
                l=min(l, seg.n),
                weights=weights,
                early_termination=early_termination,
                engine=engine,
                rng=seg_rng,
                **search_kwargs,
            )
            res.stats.segments_probed = 1
            if typed.sparse is not None:
                local, exact = hybrid_union_rescore(
                    seg.space, typed, res.ids, min(l, seg.num_active),
                    admissible=_admissible_mask(seg, typed, memo),
                    weights=weights, engine=sparse_engine,
                    stats=res.stats, context=f"{seg.kind} segment",
                )
                parts.append((seg.ext_ids[local], exact))
            elif refine is not None:
                keep = min(refine * k, res.ids.size)
                local, exact = rerank_exact(
                    seg.space, typed.vector, res.ids[:keep], keep,
                    weights=weights, stats=res.stats,
                )
                parts.append((seg.ext_ids[local], exact))
            else:
                parts.append((seg.ext_ids[res.ids], res.similarities))
            stats_parts.append(res.stats)
        ids, sims = _merge_candidates(parts, k)
        return SearchResult(ids, sims, SearchStats.aggregate(stats_parts))

    def graph_wave(
        self,
        queries: list[MultiVector | Query],
        k: int = 10,
        l: int = 100,
        weights: Weights | None = None,
        early_termination: bool = False,
        rng: np.random.Generator | np.random.SeedSequence | int | None = 0,
        rngs: list | None = None,
        refine: int | None = None,
        check_monotone: bool = False,
        filter_memo: dict | None = None,
        sparse_engine: str = "auto",
    ) -> tuple[list[SearchResult], SearchStats]:
        """Cross-segment lockstep batch: one
        :func:`~repro.index.graph_wave.graph_wave_search` wave per
        segment carries the *whole* batch, so a view with ``s`` active
        segments pays ``s`` lockstep traversals instead of ``b × s``
        per-query beam loops.  Per-segment candidates merge per query by
        ``(similarity, external id)`` exactly like :meth:`search`.

        Determinism mirrors the per-query path: each query's
        SeedSequence child spawns per-segment grandchildren
        (:func:`_segment_rngs`), so results are independent of batch
        composition and thread count.  ``rngs`` supplies one seed per
        query (the serving path); otherwise children are spawned from
        ``rng``.  A shared ``filter_memo`` compiles each distinct
        :class:`~repro.core.query.Filter` once per segment table, not
        once per query.

        ``refine=r`` reranks each segment's top ``min(r·k, |candidates|)``
        survivors at full precision *at the view level* (the engine runs
        without rerank), matching :meth:`search`'s two-stage pipeline.

        Returns ``(results, wave_stats)``: per-query results with
        aggregated per-segment stats, plus one batch-level
        :class:`~repro.core.results.SearchStats` holding the summed
        ``waves``/``frontier_sizes`` trace across segments.

        Hybrid queries (``Query.sparse=``) leave the lockstep wave and
        route through the per-query graph path (:meth:`search` with
        ``engine="heap"``) under the *same* per-query seed the wave
        would have spawned — so a query's result is identical whether
        its batch-mates are hybrid or not, and plain queries keep the
        wave untouched.
        """
        from repro.index.graph_wave import graph_wave_search

        require(refine is None or refine >= 1, "refine must be >= 1")
        wave_total = SearchStats()
        queries = list(queries)
        if not queries:
            return [], wave_total
        typed = [as_query(q) for q in queries]
        ks = [t.resolve_k(k) for t in typed]
        ws = [t.resolve_weights(weights) for t in typed]
        # As in :meth:`search`, the per-query k override must not shrink
        # the per-segment pool but may widen it; strip it before the
        # inner waves so it cannot re-trigger k resolution downstream.
        inner = [
            dataclasses.replace(t, k=None) if t.k is not None else t
            for t in typed
        ]
        ls = [max(l, k_i) for k_i in ks]
        b = len(queries)
        if rngs is not None:
            require(len(rngs) == b, "rngs must supply one rng per query")
            seeds = list(rngs)
        else:
            seeds = list(spawn_seed_sequences(rng, b))
        segs = self.segments
        per_query_rngs = [_segment_rngs(seed, len(segs)) for seed in seeds]
        memo: dict = {} if filter_memo is None else filter_memo
        plain = [i for i, t in enumerate(typed) if t.sparse is None]
        routed: dict[int, SearchResult] = {}
        for i in range(b):
            if typed[i].sparse is None:
                continue
            routed[i] = self.search(
                typed[i], k=k, l=l, weights=weights,
                early_termination=early_termination, engine="heap",
                rng=seeds[i], refine=refine,
                sparse_engine=sparse_engine,
            )
        parts: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in typed
        ]
        stats_parts: list[list[SearchStats]] = [[] for _ in typed]
        for si, seg in enumerate(segs):
            if seg.num_active == 0 or not plain:
                continue
            seg_results, wstats = graph_wave_search(
                seg.index,
                [inner[i] for i in plain],
                k=k,
                l=l,
                weights=weights,
                early_termination=early_termination,
                rngs=[per_query_rngs[i][si] for i in plain],
                check_monotone=check_monotone,
                filter_memo=memo,
                ks=[min(ls[i], seg.num_active) for i in plain],
                ls=[min(ls[i], seg.n) for i in plain],
            )
            wave_total.merge(wstats)
            for i, res in zip(plain, seg_results):
                res.stats.segments_probed = 1
                if refine is not None:
                    keep = min(refine * ks[i], res.ids.size)
                    local, exact = rerank_exact(
                        seg.space, typed[i].vector, res.ids[:keep], keep,
                        weights=ws[i], stats=res.stats,
                    )
                    parts[i].append((seg.ext_ids[local], exact))
                else:
                    parts[i].append((seg.ext_ids[res.ids], res.similarities))
                stats_parts[i].append(res.stats)
        results = []
        for i, (k_i, p_i, s_i) in enumerate(zip(ks, parts, stats_parts)):
            if i in routed:
                results.append(routed[i])
                continue
            ids, sims = _merge_candidates(p_i, k_i)
            results.append(
                SearchResult(ids, sims, SearchStats.aggregate(s_i))
            )
        return results, wave_total

    def exact_search(
        self,
        query: MultiVector | Query,
        k: int = 10,
        weights: Weights | None = None,
        refine: int | None = None,
        sparse_engine: str = "auto",
    ) -> SearchResult:
        """Exact cross-segment top-*k* (the MUST-- path over segments).

        Scores through the layout-independent kernel, so the returned ids
        and similarities are bit-identical to one brute-force scan over
        the concatenation of all live objects — regardless of the segment
        layout.  (With exactly tied similarities straddling the cut-off
        the tie is broken by external id.)  A typed :class:`Query`'s
        filter mask intersects each segment's deletion bitset, so the
        same bit-identity holds against a scan over the post-filtered
        corpus.  On compressed segments the scan covers the *decoded*
        hot tier; ``refine=r`` re-scores each segment's top ``r·k``
        against the exact cold tier.
        """
        typed = as_query(query)
        k = typed.resolve_k(k)
        parts: list[tuple[np.ndarray, np.ndarray]] = []
        stats_parts: list[SearchStats] = []
        for seg in self.segments:
            if seg.num_active == 0:
                continue
            flat = FlatIndex(
                seg.space,
                deleted=seg.index.deleted,
                ids=seg.ext_ids,
                deterministic=True,
            )
            res = flat.search(typed, k, weights=weights, refine=refine,
                              sparse_engine=sparse_engine)
            res.stats.segments_probed = 1
            parts.append((res.ids, res.similarities))
            stats_parts.append(res.stats)
        ids, sims = _merge_candidates(parts, k)
        return SearchResult(ids, sims, SearchStats.aggregate(stats_parts))

    def exact_batch(
        self,
        queries: list[MultiVector | Query],
        k: int,
        weights: Weights | None = None,
        refine: int | None = None,
        sparse_engine: str = "auto",
    ) -> list[SearchResult]:
        """Exact batch: one GEMM wave per segment, merged per query.

        Throughput path — same numerics caveat as
        :meth:`FlatIndex.batch_search`: the stacked GEMM can diverge from
        the single-query kernel by ~1e-7, so ranks (not bits) are the
        contract here.  Typed queries keep their per-query
        weights/filters/k inside the shared per-segment waves.
        ``refine`` reranks per segment as in :meth:`exact_search`.  For
        a coalesced wave that reproduces :meth:`exact_search` bit for
        bit, use :meth:`exact_wave`.
        """
        queries = list(queries)
        ks = [as_query(q).resolve_k(k) for q in queries]
        per_query: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in queries
        ]
        per_stats: list[list[SearchStats]] = [[] for _ in queries]
        for seg in self.segments:
            if seg.num_active == 0:
                continue
            flat = FlatIndex(
                seg.space, deleted=seg.index.deleted, ids=seg.ext_ids
            )
            for j, res in enumerate(
                flat.batch_search(queries, k, weights, refine=refine,
                                  sparse_engine=sparse_engine)
            ):
                res.stats.segments_probed = 1
                per_query[j].append((res.ids, res.similarities))
                per_stats[j].append(res.stats)
        out = []
        for k_j, parts, stats_parts in zip(ks, per_query, per_stats):
            ids, sims = _merge_candidates(parts, k_j)
            out.append(
                SearchResult(ids, sims, SearchStats.aggregate(stats_parts))
            )
        return out

    def exact_wave(
        self,
        queries: list[MultiVector | Query],
        k: int,
        weights: Weights | None = None,
        refine: int | None = None,
        margin: float = 1e-4,
        sparse_engine: str = "auto",
    ) -> list[SearchResult]:
        """Coalesced exact batch, bit-identical to :meth:`exact_search`.

        The serving layer's exact path: one **float32 GEMM prefilter**
        per segment scores the whole wave at BLAS-batch throughput, then
        each query re-scores only the rows within ``margin`` of its
        per-segment cut-off through the layout-independent float64
        kernel (:meth:`~repro.core.space.JointSpace.query_ids_stable`) —
        the same kernel :meth:`exact_search` scans with.  Because that
        kernel is row-independent, the reranked shortlist carries the
        *identical* similarities a full single-query scan would produce,
        so the merged result equals ``[exact_search(q, k) for q in
        queries]`` bit for bit whenever the shortlist contains the true
        top candidates — guaranteed when ``margin`` exceeds twice the
        prefilter's absolute error (float32 GEMM vs the float64 scan,
        observed ≤ ~1e-5 on unit-norm data; the default leaves a 10×
        cushion).  Exactly tied similarities straddling a cut-off remain
        the one caveat, as in :meth:`exact_search` itself.

        ``refine=r`` feeds the same top ``r·k`` per-segment shortlist to
        :func:`rerank_exact` that the single-query path would, preserving
        bit-identity through the two-stage pipeline.

        Hybrid queries (``Query.sparse=``) route straight through
        :meth:`exact_search` — the GEMM prefilter's margin bound covers
        only the dense term, so a hybrid query cannot share the wave;
        per-query routing keeps the bit-identity contract trivially.
        """
        require(k >= 1, "k must be positive")
        require(refine is None or refine >= 1, "refine must be >= 1")
        require(margin >= 0.0, "margin must be non-negative")
        typed = [as_query(q) for q in queries]
        vectors = [q.vector for q in typed]
        ks = [q.resolve_k(k) for q in typed]
        ws = [q.resolve_weights(weights) for q in typed]
        ps = [k_j if refine is None else refine * k_j for k_j in ks]
        routed: dict[int, SearchResult] = {}
        plain = []
        for j, t in enumerate(typed):
            if t.sparse is not None:
                routed[j] = self.exact_search(
                    t, k, weights=weights, refine=refine,
                    sparse_engine=sparse_engine,
                )
            else:
                plain.append(j)
        per_query: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in typed
        ]
        per_stats: list[list[SearchStats]] = [[] for _ in typed]
        for seg in self.segments:
            if seg.num_active == 0 or not plain:
                continue
            sims_list, stats_list = batch_score_all(
                seg.space, [vectors[j] for j in plain],
                weights=[ws[j] for j in plain],
            )
            deleted = seg.index.deleted
            attributes = seg.space.vectors.attributes
            memo: dict = {}  # shared filters compile once per segment
            for idx, j in enumerate(plain):
                query = vectors[j]
                sims, stats = sims_list[idx], stats_list[idx]
                k_j, p = ks[j], ps[j]
                if deleted is not None:
                    sims = np.where(deleted, -np.inf, sims)
                candidates = None
                admissible = seg.num_active
                if typed[j].filter is not None:
                    # Same masking the per-query exact path applies: the
                    # filter mask intersects the deletion bitset, so the
                    # wave stays bit-identical to exact_search.  The
                    # cut-off search runs over the compacted admissible
                    # rows (argpartition degrades on -inf runs).
                    mask = compile_filter(
                        typed[j].filter, attributes,
                        context=f"{seg.kind} segment", memo=memo,
                    )
                    sims = np.where(mask, sims, -np.inf)
                    candidates = np.flatnonzero(np.isfinite(sims))
                    admissible = int(candidates.size)
                    if admissible == 0:
                        stats.segments_probed = 1
                        per_stats[j].append(stats)
                        continue
                if p >= admissible:
                    shortlist = np.flatnonzero(np.isfinite(sims))
                elif candidates is None:
                    kth = np.partition(sims, seg.n - p)[seg.n - p]
                    shortlist = np.flatnonzero(sims >= kth - margin)
                else:
                    sub = sims[candidates]
                    kth = np.partition(sub, admissible - p)[admissible - p]
                    shortlist = candidates[sub >= kth - margin]
                stable = seg.space.query_ids_stable(
                    query, shortlist, weights=ws[j], stats=stats
                )
                order = np.lexsort((shortlist, -stable))
                if refine is None:
                    top = order[:k_j]
                    ids = seg.ext_ids[shortlist[top]]
                    exact = stable[top]
                else:
                    cand = shortlist[order[:p]]
                    local, exact = rerank_exact(
                        seg.space, query, cand, k_j,
                        weights=ws[j], stats=stats,
                    )
                    ids = seg.ext_ids[local]
                stats.segments_probed = 1
                per_query[j].append((ids, exact))
                per_stats[j].append(stats)
        out = []
        for j, (k_j, parts, stats_parts) in enumerate(
            zip(ks, per_query, per_stats)
        ):
            if j in routed:
                out.append(routed[j])
                continue
            ids, sims = _merge_candidates(parts, k_j)
            out.append(
                SearchResult(ids, sims, SearchStats.aggregate(stats_parts))
            )
        return out


class SegmentedIndex:
    """Streaming-updatable index: sealed graph segments + a mutable delta.

    Construct empty (``SegmentedIndex(weights)``) and stream objects in,
    or wrap an existing single-graph index with :meth:`from_graph` (its
    rows become external ids ``0..n-1``).  All mutating entry points run
    the auto-seal/auto-compact policy inline — there is no background
    thread to coordinate with, which keeps results reproducible.
    """

    name = "segmented"

    def __init__(
        self,
        weights: Weights,
        builder: FusedIndexBuilder | None = None,
        policy: SegmentPolicy | None = None,
        hnsw: HNSWBuilder | None = None,
        seed: int = 0,
        compression: str = "none",
        store_options: dict | None = None,
        cold_storage: str = "resident",
        data_dir: str | Path | None = None,
    ):
        require(
            compression in STORE_KINDS,
            f"unknown compression {compression!r}; supported: "
            f"{sorted(STORE_KINDS)}",
        )
        require(
            cold_storage in ("resident", "mmap"),
            f"unknown cold_storage {cold_storage!r}; supported: "
            f"'resident', 'mmap'",
        )
        if cold_storage == "mmap":
            require(
                compression != "none",
                "cold_storage='mmap' requires a compressed hot tier "
                "(float16/int8/pq) — a dense store serves graph "
                "traversal from the float32 corpus itself, which must "
                "stay resident",
            )
            require(
                data_dir is not None,
                "cold_storage='mmap' requires data_dir= (the directory "
                "that receives the per-segment cold-tier .npy files)",
            )
            require(
                bool((store_options or {}).get("keep_exact", True)),
                "cold_storage='mmap' spills the exact cold tier to disk "
                "— keep_exact=False leaves nothing to spill",
            )
        self.weights = weights
        self.builder = builder if builder is not None else FusedIndexBuilder()
        self.policy = policy if policy is not None else SegmentPolicy()
        self.hnsw = hnsw if hnsw is not None else HNSWBuilder(
            m=8, ef_construction=48, name="delta"
        )
        self.seed = int(seed)
        #: vector-store backend for sealed segments; the mutable delta
        #: always stays dense float32 (incremental insertion needs the
        #: exact vectors), compression is applied at seal/compact time —
        #: the LSM moment the slice becomes immutable.
        self.compression = compression
        self.store_options = dict(store_options or {})
        #: where sealed segments' exact cold tier lives: ``"resident"``
        #: keeps float32 matrices in RAM (historical behaviour),
        #: ``"mmap"`` spills them to per-segment ``.npy`` files under
        #: :attr:`data_dir` at seal/compact time and serves rerank reads
        #: through lazy memory mappings — bit-identical results, O(hot)
        #: resident bytes.
        self.cold_storage = cold_storage
        self.data_dir = None if data_dir is None else Path(data_dir)
        if cold_storage == "mmap":
            self.data_dir.mkdir(parents=True, exist_ok=True)
            self._cold_seq = self._scan_cold_seq(self.data_dir)
        else:
            self._cold_seq = 0
        self.sealed: list[Segment] = []
        self.delta = _DeltaSegment(weights)
        self._next_ext = 0
        self.num_seals = 0
        self.num_compactions = 0
        #: shard assignment ``(shard_index, shard_count)`` when this
        #: index is one shard of a partitioned corpus (ids routed by
        #: ``ext_id % shard_count``); ``None`` for a whole corpus.
        #: Persisted in the manifest so a reloaded shard knows which
        #: slice of the id space it owns.
        self.shard: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        index: GraphIndex,
        builder: FusedIndexBuilder | None = None,
        policy: SegmentPolicy | None = None,
        hnsw: HNSWBuilder | None = None,
        seed: int = 0,
        compression: str = "none",
        store_options: dict | None = None,
        ext_ids: np.ndarray | None = None,
        cold_storage: str = "resident",
        data_dir: str | Path | None = None,
    ) -> "SegmentedIndex":
        """Wrap a built single-graph index as the first sealed segment.

        The index's space is taken as-is — if its vectors already sit in
        a compressed store (``MUST.build`` with ``compression=``), the
        segment serves from those codes.  ``ext_ids`` maps graph rows to
        explicit external ids (default ``0..n-1``) — a shard's rows keep
        their *global* ids this way, so cross-shard merges and
        id-routed writes stay coherent.  With ``cold_storage="mmap"``
        the wrapped index's resident cold tier (if any) is spilled to
        ``data_dir`` immediately.
        """
        seg = cls(index.space.weights, builder=builder, policy=policy,
                  hnsw=hnsw, seed=seed, compression=compression,
                  store_options=store_options, cold_storage=cold_storage,
                  data_dir=data_dir)
        if ext_ids is None:
            ids = np.arange(index.n, dtype=np.int64)
        else:
            ids = np.asarray(ext_ids, dtype=np.int64)
            require(
                ids.ndim == 1 and ids.size == index.n,
                f"ext_ids must map every graph row "
                f"(got {ids.shape} for n={index.n})",
            )
            require(
                ids.size == 0 or int(ids.min()) >= 0,
                "external ids must be non-negative",
            )
            require(
                np.unique(ids).size == ids.size,
                "explicit ext_ids contain duplicates",
            )
        if cold_storage == "mmap" and index.space.vectors.store.kind != "none":
            seg._spill_segment(index)
        seg.sealed.append(Segment(index, ids))
        seg._next_ext = int(ids.max()) + 1 if ids.size else 0
        return seg

    def _compress_sealed(self, index: GraphIndex) -> GraphIndex:
        """Re-seat a freshly built (dense) segment graph on the
        configured store — called at seal/compact, after seed fixing.

        The graph was built over full-precision vectors; only the
        serving representation changes.  The original float32 matrices
        become the store's cold exact tier (rerank + future compaction),
        unless ``store_options['keep_exact']`` says otherwise.  Under
        ``cold_storage="mmap"`` that cold tier is then spilled to
        sidecar files, leaving only the compressed codes resident.
        """
        index = reseat_on_store(index, self.compression, self.store_options)
        if self.cold_storage == "mmap":
            index = self._spill_segment(index)
        return index

    @staticmethod
    def _scan_cold_seq(data_dir: Path) -> int:
        """First unused cold-file sequence number in *data_dir* — never
        reuse a name: an older live index (or a frozen snapshot) may
        still be serving from a file with a lower sequence."""
        seq = 0
        for f in data_dir.glob("seg_*.cold_0.npy"):
            try:
                seq = max(seq, int(f.name.split(".")[0][4:]) + 1)
            except ValueError:
                continue
        return seq

    def _next_cold_paths(self, dims: tuple[int, ...]) -> list[Path]:
        """Reserve sidecar file names for one segment's cold tier."""
        stem = f"seg_{self._cold_seq:06d}"
        self._cold_seq += 1
        return [
            self.data_dir / f"{stem}.cold_{i}.npy" for i in range(len(dims))
        ]

    def _spill_segment(self, index: GraphIndex) -> GraphIndex:
        """Spill a segment's resident cold tier to ``data_dir`` and
        re-seat the store on the resulting memory mapping (no-op when
        the cold tier is absent or already mapped)."""
        vectors = index.space.vectors
        store = vectors.store
        plane = store.cold_plane
        if plane is None or not plane.is_resident:
            return index
        stem = f"seg_{self._cold_seq:06d}"
        self._cold_seq += 1
        spilled = spill_cold(store, self.data_dir, stem)
        index.space = JointSpace(
            MultiVectorSet.from_store(
                spilled, attributes=vectors.attributes,
                sparse=vectors.sparse, metrics=vectors.declared_metrics,
            ),
            index.space.weights,
        )
        return index

    def _retire_cold_files(
        self, planes: list[ColdPlane | None], keep: set[Path]
    ) -> None:
        """Unlink sidecar files of replaced segments.

        Frozen snapshots may still hold these planes; mapping every
        modality first pins the inodes, so their lazily-deferred first
        probe keeps working after the unlink (POSIX semantics).
        """
        for plane in planes:
            if not isinstance(plane, MmapPlane):
                continue
            for i, path in enumerate(plane.paths):
                if path in keep:
                    continue
                plane.modality(i)
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_total(self) -> int:
        """Objects including tombstones."""
        return sum(s.n for s in self.sealed) + self.delta.n

    @property
    def num_active(self) -> int:
        return sum(s.num_active for s in self.sealed) + self.delta.num_active

    @property
    def deleted_fraction(self) -> float:
        total = self.num_total
        if total == 0:
            return 0.0
        return 1.0 - self.num_active / total

    @property
    def num_segments(self) -> int:
        """Searchable segments (sealed + a non-empty delta)."""
        return len(self.sealed) + (1 if self.delta.n else 0)

    def searchable_segments(self) -> list[Segment]:
        segs = list(self.sealed)
        if self.delta.n:
            segs.append(self.delta.as_segment(self.hnsw))
        return segs

    def view(self) -> SegmentView:
        """A live :class:`SegmentView` over the current segments.

        Shares the underlying index containers and bitsets, so it sees
        (and races with) later mutations — use :meth:`snapshot` for an
        isolated view.
        """
        return SegmentView(self.searchable_segments())

    def snapshot(self) -> SegmentView:
        """A frozen :class:`SegmentView` of the current state.

        Searches against the snapshot are unaffected by any later
        :meth:`insert` / :meth:`mark_deleted` / :meth:`seal_delta` /
        :meth:`compact` on this index:

        * sealed segment graphs and vectors are immutable already — only
          their §IX deletion bitsets mutate in place, so each segment is
          re-wrapped around a **copy** of its bitset;
        * the delta's matrices, id map, and HNSW base layer are
          materialised copy-on-write (``append`` replaces the arrays it
          grows and invalidates the materialised graph rather than
          mutating them), so the snapshot pins the pre-append arrays;
        * the segment *list* itself is copied, so seals and compactions
          swap segments under the live index without touching the view.

        Taking a snapshot is cheap: no vector data is copied, only the
        bitsets and the container dataclasses.  Callers interleaving
        snapshots with mutations from other threads must serialise the
        two (the serving layer holds its write lock across both).
        """
        frozen: list[Segment] = []
        for seg in self.searchable_segments():
            index = dataclasses.replace(
                seg.index,
                deleted=(
                    None
                    if seg.index.deleted is None
                    else seg.index.deleted.copy()
                ),
            )
            frozen.append(Segment(index, seg.ext_ids, kind=seg.kind))
        return SegmentView(frozen)

    def active_ext_ids(self) -> np.ndarray:
        """External ids of all live objects, ascending."""
        return self.view().active_ext_ids()

    def memory_stats(self) -> dict:
        """Per-tier byte accounting — see :meth:`SegmentView.memory_stats`."""
        return self.view().memory_stats()

    def describe(self) -> dict:
        """JSON-ready summary (used by the manifest and the benchmarks)."""
        return {
            "segments": [
                {
                    "kind": seg.kind,
                    "n": int(seg.n),
                    "active": int(seg.num_active),
                    "edges": int(seg.index.num_edges),
                }
                for seg in self.searchable_segments()
            ],
            "total": int(self.num_total),
            "active": int(self.num_active),
            "deleted_fraction": float(self.deleted_fraction),
            "seals": int(self.num_seals),
            "compactions": int(self.num_compactions),
            "next_ext_id": int(self._next_ext),
        }

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(
        self,
        objects: MultiVectorSet | MultiVector,
        ext_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Stream objects into the delta segment; returns their external ids.

        May seal the delta and/or trigger a compaction on the way out,
        per :attr:`policy`.

        ``ext_ids`` assigns explicit external ids instead of drawing from
        the monotone allocator — the sharding hook: a shard holds only
        the objects whose *global* id it owns, so the front-end allocates
        ids and each shard inserts under them.  Explicit ids must be
        unique, non-negative, and absent from this index; the allocator
        advances past the maximum so later allocator-assigned ids never
        collide.
        """
        if isinstance(objects, MultiVector):
            require(
                all(v is not None for v in objects.vectors),
                "inserted objects must carry every modality",
            )
            objects = MultiVectorSet([v[None, :] for v in objects.vectors])
        require(objects.n >= 1, "nothing to insert")
        if self.num_total:
            dims = self._modality_dims()
            require(objects.dims == dims,
                    f"inserted objects have dims {objects.dims}, "
                    f"index holds {dims}")
            existing = self._attribute_fields()
            incoming = (
                None
                if objects.attributes is None
                else objects.attributes.fields
            )
            require(
                existing == incoming,
                f"inserted objects must carry the same attribute fields as "
                f"the corpus (corpus: {existing}, inserted: {incoming}) — "
                f"attach them via MultiVectorSet.set_attributes before "
                f"insert",
            )
            existing_sp = self._sparse_signature()
            incoming_sp = (
                None
                if objects.sparse is None
                else (objects.sparse.vocab, objects.sparse.metric)
            )
            require(
                existing_sp == incoming_sp,
                f"inserted objects must carry the same sparse plane as the "
                f"corpus (corpus (vocab, metric): {existing_sp}, inserted: "
                f"{incoming_sp}) — attach rows via "
                f"MultiVectorSet.set_sparse before insert",
            )
        if ext_ids is None:
            ext = np.arange(
                self._next_ext, self._next_ext + objects.n, dtype=np.int64
            )
            self._next_ext += objects.n
        else:
            ext = np.asarray(ext_ids, dtype=np.int64)
            require(
                ext.ndim == 1 and ext.size == objects.n,
                f"ext_ids must supply one id per inserted object "
                f"(got {ext.shape} for {objects.n} objects)",
            )
            require(
                ext.size == 0 or int(ext.min()) >= 0,
                "external ids must be non-negative",
            )
            require(
                np.unique(ext).size == ext.size,
                "explicit ext_ids contain duplicates",
            )
            for seg in self.searchable_segments():
                require(
                    not np.isin(ext, seg.ext_ids).any(),
                    "explicit ext_ids collide with ids already in the index",
                )
            self._next_ext = max(self._next_ext, int(ext.max()) + 1)
        self.delta.append(objects, ext, self.hnsw, self.seed)
        self._maybe_seal()
        self._maybe_compact()
        self._restamp_sparse()
        return ext

    def mark_deleted(
        self, ext_ids: np.ndarray, allow_empty: bool = False
    ) -> None:
        """Soft-delete by external id (per-segment §IX bitsets).

        Unknown ids raise; re-deleting is idempotent.  Deleting the last
        active object is rejected, mirroring the single-graph guard —
        unless ``allow_empty=True``, which a *shard* of a partitioned
        corpus needs: one shard may legitimately lose its last object
        while the global corpus stays non-empty (the front-end enforces
        the global guard).  Validation happens before any bitset is
        touched, so a rejected call leaves the index unchanged.
        """
        ext_ids = np.unique(np.asarray(ext_ids, dtype=np.int64))
        # Pass 1: locate everything and count the *newly* dead, so both
        # guards fire before any mutation.
        sealed_hits: list[tuple[Segment, np.ndarray]] = []
        found = fresh_kills = 0
        for seg in self.sealed:
            local = np.flatnonzero(np.isin(seg.ext_ids, ext_ids))
            found += int(local.size)
            if local.size:
                sealed_hits.append((seg, local))
                if seg.index.deleted is None:
                    fresh_kills += int(local.size)
                else:
                    fresh_kills += int((~seg.index.deleted[local]).sum())
        dmask = np.isin(self.delta.ext_ids, ext_ids)
        found += int(dmask.sum())
        fresh_kills += int((dmask & ~self.delta.deleted).sum())
        require(found == ext_ids.size,
                "unknown external ids in mark_deleted")
        require(allow_empty or self.num_active - fresh_kills > 0,
                "cannot delete every object")
        # Pass 2: apply.
        for seg, local in sealed_hits:
            _mark_local(seg.index, local)
        if dmask.any():
            self.delta.deleted[dmask] = True
        self._maybe_compact()

    def seal_delta(self) -> Segment | None:
        """Freeze the delta into an immutable sealed segment.

        The sealed graph is rebuilt with the main :attr:`builder` (a
        proper fused graph, not the delta's insertion-order HNSW);
        tombstones ride along — compaction is what drops them — unless
        the whole delta is dead, in which case it is simply discarded.
        """
        if self.delta.n == 0:
            return None
        if self.delta.num_active == 0:
            self.delta.reset()
            return None
        space = JointSpace(
            MultiVectorSet(
                self.delta.mats, attributes=self.delta.attrs,
                sparse=self.delta.sparse,
            ),
            self.weights,
        )
        index = self.builder.build(space)
        if bool(self.delta.deleted.any()):
            index.deleted = self.delta.deleted.copy()
            self._reseat_seed(index)
        index = self._compress_sealed(index)
        seg = Segment(index, self.delta.ext_ids.copy())
        self.sealed.append(seg)
        self.delta.reset()
        self.num_seals += 1
        self._restamp_sparse()
        return seg

    def compact(self) -> np.ndarray:
        """Rebuild one sealed segment over every live object (§IX
        periodic reconstruction); drops all tombstones and empties the
        delta.  Returns the surviving external ids, ascending — row ``j``
        of the new segment is external id ``active[j]``.

        Under ``cold_storage="mmap"`` the merged cold tier is streamed
        segment-at-a-time into freshly pre-sized ``.npy`` files —
        peak extra RAM is one segment's live rows, not the corpus —
        and the replaced segments' sidecar files are unlinked."""
        segs = self.searchable_segments()
        if not segs:
            return np.zeros(0, dtype=np.int64)
        num_modalities = segs[0].space.num_modalities
        streaming = self.cold_storage == "mmap"
        old_planes = [seg.space.vectors.store.cold_plane for seg in segs]
        ext_parts: list[np.ndarray] = []
        alive_parts: list[tuple[Segment, np.ndarray]] = []
        mat_parts: list[list[np.ndarray]] = [[] for _ in range(num_modalities)]
        attr_parts: list[AttributeTable] = []
        sparse_parts: list[SparseStore] = []
        contributing = 0
        for seg in segs:
            alive = (
                np.arange(seg.n)
                if seg.index.deleted is None
                else np.flatnonzero(~seg.index.deleted)
            )
            if alive.size == 0:
                continue
            contributing += 1
            ext_parts.append(seg.ext_ids[alive])
            alive_parts.append((seg, alive))
            seg_attrs = seg.space.vectors.attributes
            if seg_attrs is not None:
                attr_parts.append(seg_attrs.subset(alive))
            seg_sparse = seg.space.vectors.sparse
            if seg_sparse is not None:
                sparse_parts.append(seg_sparse.subset(alive))
            if not streaming:
                for i in range(num_modalities):
                    # Rebuild from the exact cold tier, not the hot
                    # codes — compaction must never accumulate
                    # quantisation error.
                    mat_parts[i].append(
                        seg.space.vectors.exact_modality(i)[alive]
                    )
        if not ext_parts:
            # Every object is dead (possible only via allow_empty
            # shard deletes): drop all segments instead of crashing on
            # an empty concatenate.  The index stays usable — searches
            # over zero segments answer empty, inserts restart it.
            self.sealed = []
            self.delta.reset()
            self.num_compactions += 1
            if streaming:
                self._retire_cold_files(old_planes, keep=set())
            return np.zeros(0, dtype=np.int64)
        ext = np.concatenate(ext_parts)
        order = np.argsort(ext)
        attributes: AttributeTable | None = None
        if attr_parts:
            require(
                len(attr_parts) == contributing,
                "cannot compact: some segments carry an attribute table "
                "and some do not — the corpus attribute state is "
                "inconsistent",
            )
            attributes = AttributeTable.concat(attr_parts).subset(order)
        sparse_plane: SparseStore | None = None
        if sparse_parts:
            require(
                len(sparse_parts) == contributing,
                "cannot compact: some segments carry a sparse plane and "
                "some do not — the corpus sparse state is inconsistent",
            )
            # Tombstoned rows just fell out of the corpus, so the stats
            # stamped on the parts are stale; _restamp_sparse below
            # recomputes them over the survivors.
            sparse_plane = SparseStore.concat(sparse_parts).subset(order)
        if streaming:
            mats, out_paths = self._stream_merged_cold(
                alive_parts, order, num_modalities
            )
        else:
            mats = [np.concatenate(parts)[order] for parts in mat_parts]
            out_paths = []
        objects = MultiVectorSet(
            mats, attributes=attributes, sparse=sparse_plane
        )
        space = JointSpace(objects, self.weights)
        index = self.builder.build(space)
        if streaming:
            # Train the compressed hot tier from the merged (mapped)
            # matrices, then attach the freshly written files directly
            # as the cold plane — same bytes, no second spill.
            index = reseat_on_store(
                index, self.compression, self.store_options
            )
            store = index.space.vectors.store.with_cold_plane(
                MmapPlane(out_paths)
            )
            index.space = JointSpace(
                MultiVectorSet.from_store(
                    store, attributes=attributes, sparse=sparse_plane
                ),
                self.weights,
            )
        else:
            index = self._compress_sealed(index)
        self.sealed = [Segment(index, ext[order])]
        self.delta.reset()
        self.num_compactions += 1
        if streaming:
            self._retire_cold_files(old_planes, keep=set(out_paths))
        self._restamp_sparse()
        return ext[order]

    def _stream_merged_cold(
        self,
        alive_parts: list[tuple[Segment, np.ndarray]],
        order: np.ndarray,
        num_modalities: int,
    ) -> tuple[list[np.ndarray], list[Path]]:
        """Merge the live cold rows of *alive_parts* into pre-sized
        sidecar ``.npy`` files, one source segment at a time.

        Row ``j`` of the output is row ``order[j]`` of the source
        concatenation — byte-identical to the in-RAM
        ``concatenate(parts)[order]`` merge, without ever holding more
        than one segment's rows in memory.  Returns the read-only
        mappings plus their paths.
        """
        total = int(order.size)
        inv = np.empty(total, dtype=np.int64)
        inv[order] = np.arange(total, dtype=np.int64)
        dims = alive_parts[0][0].space.vectors.dims
        out_paths = self._next_cold_paths(dims)
        outs = [
            np.lib.format.open_memmap(
                path, mode="w+", dtype=np.float32, shape=(total, d)
            )
            for path, d in zip(out_paths, dims)
        ]
        offset = 0
        for seg, alive in alive_parts:
            target = inv[offset:offset + alive.size]
            for i in range(num_modalities):
                outs[i][target] = seg.space.vectors.exact_modality(i)[alive]
            offset += alive.size
        for out in outs:
            out.flush()
        del outs
        mats = [np.load(path, mmap_mode="r") for path in out_paths]
        return mats, out_paths

    def _modality_dims(self) -> tuple[int, ...]:
        if self.delta.n:
            return self.delta.space.vectors.dims
        return self.sealed[0].space.vectors.dims

    def _attribute_fields(self) -> tuple[str, ...] | None:
        """Attribute fields the corpus carries (None when unattributed)."""
        if self.delta.n:
            attrs = self.delta.attrs
        elif self.sealed:
            attrs = self.sealed[0].space.vectors.attributes
        else:
            return None
        return None if attrs is None else attrs.fields

    def _sparse_signature(self) -> tuple[int, str] | None:
        """``(vocab, metric)`` of the corpus sparse plane, or ``None``."""
        if self.delta.n:
            plane = self.delta.sparse
        elif self.sealed:
            plane = self.sealed[0].space.vectors.sparse
        else:
            return None
        return None if plane is None else (plane.vocab, plane.metric)

    def sparse_local_stats(self) -> SparseStats | None:
        """Sum of per-segment local sparse statistics — the corpus truth.

        Covers every *stored* row, tombstones included: soft-deleted
        rows keep shaping the document frequencies until a compaction
        physically drops them, matching the single-plane convention.
        ``None`` when the corpus carries no sparse plane.  The sharded
        front-end sums these across shards to build the global stats it
        broadcasts back.
        """
        parts = []
        for seg in self.sealed:
            plane = seg.space.vectors.sparse
            if plane is not None:
                parts.append(plane.local_stats())
        if self.delta.n and self.delta.sparse is not None:
            parts.append(self.delta.sparse.local_stats())
        if not parts:
            return None
        return sum_stats(parts)

    def _restamp_sparse(self, stats: SparseStats | None = None) -> None:
        """Re-stamp every segment's sparse plane with corpus-global
        statistics — run after insert/seal/compact so BM25/TF-IDF scores
        are independent of how the corpus is split into segments.

        Each sealed segment's space is *replaced* (never mutated) with a
        new :class:`JointSpace` over the re-wrapped plane
        (:meth:`SparseStore.with_stats`); frozen snapshots hold the old
        space objects, so their answers cannot shift underneath them.
        The dense concat/float64 caches transplant onto the new space —
        restamping is metadata-only, no vector work is redone.

        *stats* overrides the locally computed sum: a shard of a
        partitioned corpus receives the cross-shard global sum from the
        front-end this way.
        """
        if stats is None:
            stats = self.sparse_local_stats()
        if stats is None:
            return
        for seg in self.sealed:
            old = seg.index.space
            vectors = old.vectors
            plane = vectors.sparse
            if plane is None:
                continue
            new_space = JointSpace(
                MultiVectorSet.from_store(
                    vectors.store,
                    attributes=vectors.attributes,
                    sparse=plane.with_stats(stats),
                    metrics=vectors.declared_metrics,
                ),
                old.weights,
            )
            new_space._concat = old._concat
            new_space._f64 = old._f64
            seg.index.space = new_space
        if self.delta.n and self.delta.sparse is not None:
            self.delta.sparse = self.delta.sparse.with_stats(stats)
            self.delta._space = JointSpace(
                MultiVectorSet(
                    self.delta.mats, attributes=self.delta.attrs,
                    sparse=self.delta.sparse,
                ),
                self.weights,
            )
            self.delta._materialized = None

    def _maybe_seal(self) -> None:
        if self.delta.n >= self.policy.seal_size:
            self.seal_delta()

    def _maybe_compact(self) -> None:
        if len(self.sealed) > self.policy.max_segments:
            self.compact()
            return
        if (
            self.num_total >= self.policy.min_compact_size
            and self.deleted_fraction > self.policy.max_deleted_fraction
        ):
            self.compact()

    def _reseat_seed(self, index: GraphIndex) -> None:
        """Point the seed at a live vertex (nearest the live centroid) —
        the builder picks seeds deletion-blind, and a sealed segment must
        stay servable (see :meth:`GraphIndex.validate`)."""
        if index.deleted is None or not index.deleted[index.seed_vertex]:
            return
        alive = np.flatnonzero(~index.deleted)
        c = index.space.concatenated
        centroid = c[alive].mean(axis=0)
        index.seed_vertex = int(alive[np.argmax(c[alive] @ centroid)])

    # ------------------------------------------------------------------
    # Searching (delegated to a live SegmentView over the segments)
    # ------------------------------------------------------------------
    def search(
        self,
        query: MultiVector | Query,
        k: int = 10,
        l: int = 100,
        weights: Weights | None = None,
        early_termination: bool = False,
        engine: str = "heap",
        rng: np.random.Generator | np.random.SeedSequence | int | None = 0,
        refine: int | None = None,
        **search_kwargs,
    ) -> SearchResult:
        """Cross-segment graph search — see :meth:`SegmentView.search`."""
        return self.view().search(
            query,
            k=k,
            l=l,
            weights=weights,
            early_termination=early_termination,
            engine=engine,
            rng=rng,
            refine=refine,
            **search_kwargs,
        )

    def graph_wave(
        self,
        queries: list[MultiVector | Query],
        k: int = 10,
        l: int = 100,
        **kwargs,
    ) -> tuple[list[SearchResult], SearchStats]:
        """Cross-segment lockstep batch — see :meth:`SegmentView.graph_wave`."""
        return self.view().graph_wave(queries, k=k, l=l, **kwargs)

    def exact_search(
        self,
        query: MultiVector | Query,
        k: int = 10,
        weights: Weights | None = None,
        refine: int | None = None,
        sparse_engine: str = "auto",
    ) -> SearchResult:
        """Exact cross-segment top-*k* — see :meth:`SegmentView.exact_search`."""
        return self.view().exact_search(query, k, weights=weights,
                                        refine=refine,
                                        sparse_engine=sparse_engine)

    def exact_batch(
        self,
        queries: list[MultiVector | Query],
        k: int,
        weights: Weights | None = None,
        refine: int | None = None,
        sparse_engine: str = "auto",
    ) -> list[SearchResult]:
        """Exact GEMM-wave batch — see :meth:`SegmentView.exact_batch`."""
        return self.view().exact_batch(queries, k, weights=weights,
                                       refine=refine,
                                       sparse_engine=sparse_engine)

    def prepare_search(self) -> None:
        """Materialise every lazy artifact (delta graph, per-segment
        concatenated matrices) so thread-pool workers never race to
        build them — see :meth:`SegmentView.prepare_search`."""
        self.view().prepare_search()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the full segmented state into directory *path*:
        ``manifest.json`` plus one ``.npz`` per segment (vectors,
        adjacency, external ids, deletion bitset; the delta additionally
        stores its multi-layer HNSW state so reloads resume insertion
        exactly where they left off).

        Memory-mapped cold tiers ride as sidecar
        ``segment_{i:03d}.cold_{m}.npy`` files next to the archives
        (``.npz`` is a zip and cannot be mapped); their segments are
        recorded with ``"storage": "mmap"`` and the manifest format
        becomes ``must-segments-v3``.  A corpus with a sparse lexical
        plane stores its per-segment CSR arrays (stamped stats
        included) inside the archives and bumps the manifest to
        ``must-segments-v4``.  All-resident, dense-only indexes keep
        writing v2 archives, byte-identical to previous releases."""
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        entries = []
        for i, seg in enumerate(self.sealed):
            fname = f"segment_{i:03d}.npz"
            self._save_segment(path / fname, seg.index, seg.ext_ids)
            entry: dict = {"file": fname, "kind": "sealed", "n": int(seg.n)}
            plane = seg.space.vectors.store.cold_plane
            if isinstance(plane, MmapPlane):
                cold_files = []
                for m, src in enumerate(plane.paths):
                    dst = path / f"segment_{i:03d}.cold_{m}.npy"
                    if src.resolve() != dst.resolve():
                        shutil.copyfile(src, dst)
                    cold_files.append(dst.name)
                entry["storage"] = "mmap"
                entry["cold_files"] = cold_files
            entries.append(entry)
        if self.delta.n:
            fname = f"segment_{len(self.sealed):03d}.npz"
            self._save_delta(path / fname)
            entries.append(
                {"file": fname, "kind": "delta", "n": int(self.delta.n)}
            )
        mapped = any(e.get("storage") == "mmap" for e in entries)
        needs_mmap = self.cold_storage == "mmap" or mapped
        if self._sparse_signature() is not None:
            fmt, version = _FORMAT_V4, 4
        elif needs_mmap:
            fmt, version = _FORMAT_V3, 3
        else:
            fmt, version = _FORMAT, 2
        manifest = {
            "format": fmt,
            "format_version": version,
            "compression": self.compression,
            "store_options": {
                k: v
                for k, v in self.store_options.items()
                if isinstance(v, (str, int, float, bool))
            },
            "squared_weights": [float(x) for x in self.weights.squared],
            "next_ext_id": int(self._next_ext),
            "seed": self.seed,
            "policy": self.policy.to_dict(),
            "hnsw": {
                "m": self.hnsw.m,
                "ef_construction": self.hnsw.ef_construction,
                "seed": self.hnsw.seed,
                "name": self.hnsw.name,
            },
            "counters": {
                "seals": self.num_seals,
                "compactions": self.num_compactions,
            },
            "segments": entries,
        }
        if needs_mmap:
            manifest["cold_storage"] = self.cold_storage
        if self.shard is not None:
            manifest["shard"] = {
                "index": int(self.shard[0]),
                "count": int(self.shard[1]),
            }
        (path / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n"
        )

    def _segment_arrays(
        self, index: GraphIndex, ext_ids: np.ndarray
    ) -> tuple[dict, dict]:
        flat, offsets = pack_adjacency(index.neighbors)
        arrays = {"flat": flat, "offsets": offsets, "ext_ids": ext_ids}
        if index.deleted is not None:
            arrays["deleted"] = index.deleted
        store = index.space.vectors.store
        arrays.update(store.to_arrays())
        attrs = index.space.vectors.attributes
        if attrs is not None:
            # Attribute columns ride in the same archive under the
            # ``attr__`` prefix, so filters answer identically after a
            # save/load round-trip.
            arrays.update(attrs.to_arrays())
        sparse = index.space.vectors.sparse
        if sparse is not None:
            # The CSR plane rides under the ``sparse__`` prefix with its
            # stamped corpus-global statistics, so a reloaded segment
            # scores lexical terms identically without a restamp pass.
            arrays.update(sparse.to_arrays())
        metadata = {
            "name": index.name,
            "seed_vertex": int(index.seed_vertex),
            "build_seconds": float(index.build_seconds),
            "num_modalities": index.space.num_modalities,
            # kind + dtype + codebook shape info; validated on load so an
            # unknown store fails fast with an actionable error.
            "store": store.store_meta(),
        }
        return metadata, arrays

    def _save_segment(
        self, file: Path, index: GraphIndex, ext_ids: np.ndarray
    ) -> None:
        metadata, arrays = self._segment_arrays(index, ext_ids)
        save_arrays(file, metadata=metadata, **arrays)

    def _save_delta(self, file: Path) -> None:
        index = self.delta.as_segment(self.hnsw).index
        metadata, arrays = self._segment_arrays(index, self.delta.ext_ids)
        graph = self.delta.graph
        metadata["hnsw_state"] = {
            "entry_point": int(graph.entry_point),
            "levels": {str(v): int(lv) for v, lv in graph.levels.items()},
            "layers": [
                {str(v): [int(u) for u in adj] for v, adj in layer.items()}
                for layer in graph.layers
            ],
        }
        save_arrays(file, metadata=metadata, **arrays)

    @classmethod
    def load(
        cls,
        path: str | Path,
        builder: FusedIndexBuilder | None = None,
    ) -> "SegmentedIndex":
        """Restore an index saved by :meth:`save`.

        The manifest carries weights, policy, and id-allocator state; the
        *builder* (used for future seals/compactions) is supplied by the
        caller since build pipelines are not serialised.
        """
        path = Path(path)
        manifest_file = path / MANIFEST_NAME
        if not manifest_file.exists():
            raise FileNotFoundError(
                f"no segment manifest at {manifest_file} — not a segmented "
                f"index directory"
            )
        manifest = json.loads(manifest_file.read_text())
        fmt = manifest.get("format")
        if fmt not in (_FORMAT_V1, _FORMAT, _FORMAT_V3, _FORMAT_V4):
            raise ValueError(
                f"unsupported segment manifest format {fmt!r} "
                f"(format_version {manifest.get('format_version')!r}) at "
                f"{manifest_file} — this build reads "
                f"{_FORMAT_V1!r}/{_FORMAT!r}/{_FORMAT_V3!r}/{_FORMAT_V4!r} "
                f"(format_version ≤ {FORMAT_VERSION}); the index was "
                f"written by a newer library version, upgrade it or "
                f"re-save the index"
            )
        weights = Weights(manifest["squared_weights"])
        hnsw_cfg = manifest["hnsw"]
        cold_storage = manifest.get("cold_storage", "resident")
        seg_index = cls(
            weights,
            builder=builder,
            policy=SegmentPolicy(**manifest["policy"]),
            hnsw=HNSWBuilder(
                m=hnsw_cfg["m"],
                ef_construction=hnsw_cfg["ef_construction"],
                seed=hnsw_cfg["seed"],
                name=hnsw_cfg.get("name", "delta"),
            ),
            seed=int(manifest["seed"]),
            compression=manifest.get("compression", "none"),
            store_options=manifest.get("store_options"),
            cold_storage=cold_storage,
            data_dir=path if cold_storage == "mmap" else None,
        )
        seg_index._next_ext = int(manifest["next_ext_id"])
        shard = manifest.get("shard")
        if shard is not None:
            seg_index.shard = (int(shard["index"]), int(shard["count"]))
        counters = manifest.get("counters", {})
        seg_index.num_seals = int(counters.get("seals", 0))
        seg_index.num_compactions = int(counters.get("compactions", 0))
        for entry in manifest["segments"]:
            file = path / entry["file"]
            if not file.exists():
                raise FileNotFoundError(
                    f"segment file {entry['file']!r} listed in "
                    f"{manifest_file} is missing from {path} — the index "
                    f"directory is incomplete"
                )
            try:
                metadata, arrays = load_arrays(file)
            except (zipfile.BadZipFile, ValueError, OSError, KeyError) as exc:
                raise ValueError(
                    f"segment file {entry['file']!r} in {path} is "
                    f"unreadable ({exc}) — the archive is corrupt or "
                    f"truncated; restore it from a backup or re-save "
                    f"the index"
                ) from exc
            vectors = cls._load_vectors(metadata, arrays)
            if entry.get("storage") == "mmap":
                # Sidecar cold tier: headers are validated eagerly
                # (missing/truncated files fail here, with the file
                # named), the data mapping is deferred to first probe —
                # loading a sealed segment never pages its cold bytes.
                plane = MmapPlane(
                    [path / f for f in entry["cold_files"]]
                )
                store = vectors.store.with_cold_plane(plane)
                vectors = MultiVectorSet.from_store(
                    store, attributes=vectors.attributes,
                    sparse=vectors.sparse,
                )
            space = JointSpace(vectors, weights)
            if entry["kind"] == "sealed":
                index = GraphIndex.from_arrays(metadata, arrays, space)
                seg_index.sealed.append(
                    Segment(index, arrays["ext_ids"].astype(np.int64))
                )
            else:
                require(
                    not vectors.is_compressed,
                    "delta segment must be stored dense — the archive is "
                    "corrupt or from an incompatible writer",
                )
                seg_index._load_delta(metadata, arrays, list(vectors.matrices))
        return seg_index

    @staticmethod
    def _load_vectors(metadata: dict, arrays: dict) -> MultiVectorSet:
        """Segment vectors from an archive: store-aware (v2) or the v1
        dense ``mod_{i}`` layout.  Unknown store kinds/dtypes raise the
        actionable error from :func:`~repro.store.store_from_arrays`.
        A ``sparse__``-prefixed CSR plane (v4) reattaches with its
        persisted stats; older archives simply have none."""
        attributes = AttributeTable.from_arrays(arrays)
        sparse = SparseStore.from_arrays(arrays)
        store_meta = metadata.get("store")
        if store_meta is not None:
            return MultiVectorSet.from_store(
                store_from_arrays(store_meta, arrays),
                attributes=attributes,
                sparse=sparse,
            )
        mats = [
            arrays[f"mod_{i}"]
            for i in range(int(metadata["num_modalities"]))
        ]
        return MultiVectorSet(mats, attributes=attributes, sparse=sparse)

    def _load_delta(
        self, metadata: dict, arrays: dict, mats: list[np.ndarray]
    ) -> None:
        state = metadata["hnsw_state"]
        graph = HNSWGraph(
            layers=[
                {int(v): [int(u) for u in adj] for v, adj in layer.items()}
                for layer in state["layers"]
            ],
            levels={int(v): int(lv) for v, lv in state["levels"].items()},
            entry_point=int(state["entry_point"]),
        )
        delta = _DeltaSegment(self.weights)
        delta.mats = [m.copy() for m in mats]
        delta.attrs = AttributeTable.from_arrays(arrays)
        delta.sparse = SparseStore.from_arrays(arrays)
        delta.ext_ids = arrays["ext_ids"].astype(np.int64)
        deleted = arrays.get("deleted")
        delta.deleted = (
            deleted.astype(bool)
            if deleted is not None
            else np.zeros(delta.ext_ids.size, dtype=bool)
        )
        delta.graph = graph
        delta._space = JointSpace(
            MultiVectorSet(
                delta.mats, attributes=delta.attrs, sparse=delta.sparse
            ),
            self.weights,
        )
        self.delta = delta
