"""Evaluation metrics: recall (Eq. 1), SME (Eq. 4), QPS, exact ground truth."""

from repro.metrics.groundtruth import exact_top_k, exact_top_k_batch
from repro.metrics.recall import (
    hit_rate_at_k,
    mean_hit_rate,
    mean_recall,
    mean_sme,
    recall_at_k,
    sme,
)
from repro.metrics.timing import (
    PercentileTracker,
    TimedRun,
    measure_batch_qps,
    measure_qps,
)

__all__ = [
    "PercentileTracker",
    "exact_top_k",
    "exact_top_k_batch",
    "hit_rate_at_k",
    "mean_hit_rate",
    "mean_recall",
    "mean_sme",
    "recall_at_k",
    "sme",
    "TimedRun",
    "measure_qps",
    "measure_batch_qps",
]
