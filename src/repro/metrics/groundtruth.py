"""Exact (brute-force) answers under a joint space.

Used for three things:

* planting evaluation ground truth for the semi-synthetic corpora,
* the MUST-- / MR-- brute-force baselines' reference behaviour,
* hard-negative mining inside the weight-learning loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.multivector import MultiVector
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.utils.topk import top_k_sorted

__all__ = ["exact_top_k", "exact_top_k_batch"]


def exact_top_k(
    space: JointSpace,
    query: MultiVector,
    k: int,
    weights: Weights | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-*k* ids and joint similarities for one query."""
    sims = space.query_all(query, weights=weights)
    ids = top_k_sorted(sims, k)
    return ids, sims[ids]


def exact_top_k_batch(
    space: JointSpace,
    queries: list[MultiVector],
    k: int,
    weights: Weights | None = None,
) -> list[np.ndarray]:
    """Exact top-*k* ids for each query in a batch."""
    return [exact_top_k(space, q, k, weights=weights)[0] for q in queries]
