"""Accuracy metrics: recall rate (Eq. 1) and similarity measure error (Eq. 4)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import require

__all__ = [
    "recall_at_k",
    "hit_rate_at_k",
    "mean_recall",
    "mean_hit_rate",
    "sme",
    "mean_sme",
]


def recall_at_k(
    result_ids: np.ndarray, ground_truth_ids: np.ndarray, k: int
) -> float:
    """``Recall@k(k') = |R ∩ G| / k'`` (paper Eq. 1).

    ``R`` is the first *k* entries of *result_ids*; ``k' = |G|`` is the
    number of ground-truth objects for the query.
    """
    require(k >= 1, "k must be positive")
    gt = np.asarray(ground_truth_ids)
    require(gt.size >= 1, "ground truth must be non-empty")
    retrieved = np.asarray(result_ids)[:k]
    hits = np.intersect1d(retrieved, gt, assume_unique=False).size
    return hits / gt.size


def hit_rate_at_k(
    result_ids: np.ndarray, ground_truth_ids: np.ndarray, k: int
) -> float:
    """``Recall@k(1)``: 1.0 when any ground-truth object appears in the top-k.

    The paper's accuracy tables (III–VI) report ``Recall@k(1)`` — a query
    counts as answered when its best-matching object is retrieved, even if
    the corpus contains several equally valid instances.
    """
    require(k >= 1, "k must be positive")
    retrieved = np.asarray(result_ids)[:k]
    gt = np.asarray(ground_truth_ids)
    require(gt.size >= 1, "ground truth must be non-empty")
    return float(np.intersect1d(retrieved, gt).size > 0)


def mean_hit_rate(
    results: Sequence[np.ndarray], ground_truths: Sequence[np.ndarray], k: int
) -> float:
    """Mean of :func:`hit_rate_at_k` over a query batch."""
    require(len(results) == len(ground_truths), "batch size mismatch")
    require(len(results) >= 1, "empty batch")
    return float(
        np.mean([hit_rate_at_k(r, g, k) for r, g in zip(results, ground_truths)])
    )


def mean_recall(
    results: Sequence[np.ndarray], ground_truths: Sequence[np.ndarray], k: int
) -> float:
    """Mean of :func:`recall_at_k` over a query batch."""
    require(len(results) == len(ground_truths), "batch size mismatch")
    require(len(results) >= 1, "empty batch")
    return float(
        np.mean([recall_at_k(r, g, k) for r, g in zip(results, ground_truths)])
    )


def sme(ground_truth_vector: np.ndarray, result_vector: np.ndarray) -> float:
    """Similarity measure error ``SME(a, r) = 1 − IP(ϕ0(a0), ϕ0(r0))``.

    Both arguments are the *target-modality* vectors of the ground-truth
    object ``a`` and the returned object ``r`` (paper Eq. 4).
    """
    ip = float(
        np.dot(
            np.asarray(ground_truth_vector, dtype=np.float64),
            np.asarray(result_vector, dtype=np.float64),
        )
    )
    return 1.0 - ip


def mean_sme(
    target_matrix: np.ndarray,
    result_top1_ids: Sequence[int],
    ground_truth_ids: Sequence[np.ndarray],
) -> float:
    """Mean SME between each query's top-1 result and its best ground truth.

    When a query has several ground-truth objects, the error is measured
    against the one most similar to the returned object — matching the
    paper's convention that SME reflects how far the best answer drifted.
    """
    require(len(result_top1_ids) == len(ground_truth_ids), "batch size mismatch")
    errors = []
    mat = np.asarray(target_matrix, dtype=np.float64)
    for rid, gt in zip(result_top1_ids, ground_truth_ids):
        gt = np.asarray(gt)
        ips = mat[gt] @ mat[int(rid)]
        errors.append(1.0 - float(ips.max()))
    return float(np.mean(errors))
