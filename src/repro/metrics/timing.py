"""Throughput measurement (queries per second).

``QPS = #queries / total response time`` — the paper's efficiency metric
(§VIII-A).  Wall-clock is measured with ``perf_counter``; callers decide
warm-up policy.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

__all__ = [
    "TimedRun",
    "measure_qps",
    "measure_batch_qps",
    "PercentileTracker",
]

Q = TypeVar("Q")


class PercentileTracker:
    """Latency-sample collector with percentile summaries (p50/p95/p99).

    The serving layer's per-request instrument: ``record`` each
    observation, read tail behaviour via :meth:`percentile` or the
    ``p50``/``p95``/``p99`` shorthands.  ``max_samples`` bounds memory by
    keeping only the most recent window (a sliding window, not a
    reservoir — serving dashboards care about *current* tails);
    :attr:`count` still reports every observation ever recorded.

    Not thread-safe by itself — concurrent writers must serialise
    externally (``ServiceStats`` wraps every tracker in its own lock).
    """

    def __init__(self, max_samples: int | None = None):
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be positive or None")
        self._samples: deque[float] = deque(maxlen=max_samples)
        self._count = 0
        self._total = 0.0
        self._max = float("-inf")

    def record(self, value: float) -> None:
        value = float(value)
        self._samples.append(value)
        self._count += 1
        self._total += value
        if value > self._max:
            self._max = value

    def __len__(self) -> int:
        """Samples currently held (≤ :attr:`count` under a window cap)."""
        return len(self._samples)

    @property
    def count(self) -> int:
        """Observations ever recorded, including evicted ones."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean over *all* recorded observations (not just the window)."""
        return self._total / self._count if self._count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._count else float("nan")

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0–100) of the held samples; NaN if empty."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.fromiter(self._samples, float), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def merge(self, other: "PercentileTracker") -> None:
        """Fold *other*'s held samples (and totals) into this tracker."""
        for value in other._samples:
            self._samples.append(value)
        self._count += other._count
        self._total += other._total
        if other._count and other._max > self._max:
            self._max = other._max

    def summary(self, scale: float = 1.0) -> dict:
        """JSON-ready snapshot; ``scale`` converts units (e.g. s → ms)."""
        if not self._count:
            return {"count": 0}
        return {
            "count": self._count,
            "mean": self.mean * scale,
            "p50": self.p50 * scale,
            "p95": self.p95 * scale,
            "p99": self.p99 * scale,
            "max": self.max * scale,
        }


@dataclass
class TimedRun:
    """Outcome of a timed batch: results, elapsed seconds, and QPS."""

    results: list
    elapsed: float
    num_queries: int

    @property
    def qps(self) -> float:
        """Queries per second; raises on a degenerate measurement.

        A non-positive ``elapsed`` used to yield ``inf``, which
        ``json.dump`` emits as spec-invalid ``Infinity`` and which makes
        every regression floor (``inf * (1 - tol)``) vacuously pass — a
        broken timer would read as infinitely fast.  Benches must reject
        the measurement instead of gating on it.
        """
        if self.elapsed <= 0.0 or not np.isfinite(self.elapsed):
            raise ValueError(
                f"non-finite QPS: elapsed={self.elapsed!r} over "
                f"{self.num_queries} queries — the timed region measured "
                f"no wall-clock time; the measurement is invalid"
            )
        return self.num_queries / self.elapsed

    @property
    def mean_latency(self) -> float:
        """Average seconds per query."""
        return self.elapsed / max(self.num_queries, 1)


def measure_qps(
    search_fn: Callable[[Q], object],
    queries: Sequence[Q] | Iterable[Q],
    warmup: int = 0,
) -> TimedRun:
    """Run *search_fn* over *queries*, timing only the measured portion.

    ``warmup`` queries are executed first without timing to populate CPU
    caches, mirroring the repeated-trials protocol of §VIII-A.
    """
    queries = list(queries)
    for q in queries[:warmup]:
        search_fn(q)
    start = time.perf_counter()
    results = [search_fn(q) for q in queries]
    elapsed = time.perf_counter() - start
    return TimedRun(results=results, elapsed=elapsed, num_queries=len(queries))


def measure_batch_qps(
    batch_fn: Callable[[list], object],
    queries: Sequence[Q] | Iterable[Q],
    warmup: int = 0,
) -> TimedRun:
    """Time a *batch* entry point (one call over all queries).

    The executor-era counterpart of :func:`measure_qps`: ``batch_fn``
    receives the whole query list and returns an iterable of per-query
    results (a plain list or a
    :class:`~repro.index.executor.BatchResult`).  QPS then reflects true
    batch throughput — GEMM waves and thread-pool parallelism included —
    rather than a sum of single-query latencies.
    """
    queries = list(queries)
    if warmup > 0:
        batch_fn(queries[:warmup])
    start = time.perf_counter()
    out = batch_fn(queries)
    elapsed = time.perf_counter() - start
    return TimedRun(
        results=list(out), elapsed=elapsed, num_queries=len(queries)
    )
