"""Throughput measurement (queries per second).

``QPS = #queries / total response time`` — the paper's efficiency metric
(§VIII-A).  Wall-clock is measured with ``perf_counter``; callers decide
warm-up policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["TimedRun", "measure_qps", "measure_batch_qps"]

Q = TypeVar("Q")


@dataclass
class TimedRun:
    """Outcome of a timed batch: results, elapsed seconds, and QPS."""

    results: list
    elapsed: float
    num_queries: int

    @property
    def qps(self) -> float:
        if self.elapsed <= 0.0:
            return float("inf")
        return self.num_queries / self.elapsed

    @property
    def mean_latency(self) -> float:
        """Average seconds per query."""
        return self.elapsed / max(self.num_queries, 1)


def measure_qps(
    search_fn: Callable[[Q], object],
    queries: Sequence[Q] | Iterable[Q],
    warmup: int = 0,
) -> TimedRun:
    """Run *search_fn* over *queries*, timing only the measured portion.

    ``warmup`` queries are executed first without timing to populate CPU
    caches, mirroring the repeated-trials protocol of §VIII-A.
    """
    queries = list(queries)
    for q in queries[:warmup]:
        search_fn(q)
    start = time.perf_counter()
    results = [search_fn(q) for q in queries]
    elapsed = time.perf_counter() - start
    return TimedRun(results=results, elapsed=elapsed, num_queries=len(queries))


def measure_batch_qps(
    batch_fn: Callable[[list], object],
    queries: Sequence[Q] | Iterable[Q],
    warmup: int = 0,
) -> TimedRun:
    """Time a *batch* entry point (one call over all queries).

    The executor-era counterpart of :func:`measure_qps`: ``batch_fn``
    receives the whole query list and returns an iterable of per-query
    results (a plain list or a
    :class:`~repro.index.executor.BatchResult`).  QPS then reflects true
    batch throughput — GEMM waves and thread-pool parallelism included —
    rather than a sum of single-query latencies.
    """
    queries = list(queries)
    if warmup > 0:
        batch_fn(queries[:warmup])
    start = time.perf_counter()
    out = batch_fn(queries)
    elapsed = time.perf_counter() - start
    return TimedRun(
        results=list(out), elapsed=elapsed, num_queries=len(queries)
    )
