"""Concurrent serving layer: micro-batch coalescing + snapshot reads.

The production front-end over :class:`~repro.core.framework.MUST`:
many independent callers submit single queries, a dispatcher thread
coalesces them into batched GEMM waves against immutable index
snapshots, and writers stream inserts/deletes/compactions concurrently
without ever locking the read path.  See
:class:`~repro.service.service.MustService` for the full model,
:class:`~repro.service.sharded.ShardedService` for the process-sharded
tier that partitions the corpus across worker processes (shared-memory
vector planes, scatter/gather waves, bit-identical exact merges), and
:class:`~repro.service.collections.CollectionManager` for hosting many
named collections (workspaces) behind one service with per-tenant
admission quotas.
"""

from repro.service.collections import (
    DEFAULT_COLLECTION,
    Collection,
    CollectionManager,
    CollectionQuota,
    UnknownCollection,
)
from repro.service.service import (
    CollectionOverloaded,
    MustService,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
)
from repro.service.sharded import ShardedService, ShardFailed
from repro.service.snapshot import IndexSnapshot
from repro.service.stats import ServiceStats

__all__ = [
    "MustService",
    "ServiceConfig",
    "ServiceClosed",
    "ServiceOverloaded",
    "CollectionOverloaded",
    "ShardedService",
    "ShardFailed",
    "IndexSnapshot",
    "ServiceStats",
    "Collection",
    "CollectionManager",
    "CollectionQuota",
    "UnknownCollection",
    "DEFAULT_COLLECTION",
]
