"""Named collections: many isolated corpora behind one serving front-end.

A production deployment rarely serves one giant corpus — it serves many
small-to-medium ones (one per user, per tenant, per product surface)
behind a single front-end.  :class:`CollectionManager` is that tenancy
layer: a registry of named :class:`Collection` workspaces, each wrapping
its own built :class:`~repro.core.framework.MUST` (own segments, own
:class:`~repro.core.attributes.AttributeTable`, own learned weights,
own compression / cold-storage config), handed as one unit to
:class:`~repro.service.MustService` or
:class:`~repro.service.sharded.ShardedService`.

Isolation is structural, not advisory:

* **Data** — collections never share segments, id spaces, or snapshots;
  a request executes against exactly one collection's index, selected
  by ``SearchOptions(collection=...)`` (``None`` means ``"default"``).
  Answers are bit-identical to a standalone ``MUST`` serving the same
  corpus — the parity suite in ``tests/test_collections.py`` pins this
  across layouts, stores, and cross-tenant write churn.
* **Admission** — each collection carries a :class:`CollectionQuota`
  (queue-depth and in-flight budgets).  A hot tenant exhausting its
  budget is rejected or back-pressured with
  :class:`~repro.service.CollectionOverloaded` while its neighbours
  keep being admitted; the service-wide queue bound still backstops the
  whole box.
* **Observability** — every collection owns a
  :class:`~repro.service.ServiceStats`, so per-tenant latency,
  rejection, and batching numbers come for free next to the global ones.

Persistence is a **manifest of manifests** (``must-collections-v1``): a
directory with one ``collections.json`` naming per-collection
subdirectories, each a plain ``must-segments-v3`` save.  A
single-collection save (a segment directory produced by
``MUST.save_index``) loads as the implicit ``"default"`` collection
bit-identically, so single-tenant deployments migrate without a rebuild.
:meth:`CollectionManager.from_saved` is corpus-free across every
collection, exactly like :meth:`MUST.from_saved`.
"""

from __future__ import annotations

import difflib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.service.stats import ServiceStats
from repro.utils.validation import require

if TYPE_CHECKING:
    from repro.core.framework import MUST
    from repro.service.service import MustService, ServiceConfig
    from repro.service.sharded import ShardedService
    from repro.service.snapshot import IndexSnapshot

__all__ = [
    "DEFAULT_COLLECTION",
    "Collection",
    "CollectionManager",
    "CollectionQuota",
    "UnknownCollection",
]

#: The collection a request without an explicit ``collection=`` targets,
#: and the name a bare ``MUST`` is registered under by
#: :meth:`CollectionManager.of` — the seam that keeps every
#: single-tenant call site working unchanged.
DEFAULT_COLLECTION = "default"

_MANIFEST_NAME = "collections.json"
_FORMAT = "must-collections-v1"
_FORMAT_VERSION = 1
#: Collection names double as subdirectory names in the persistence
#: layout, so they must be path-safe: no separators, no leading dot
#: (which also rules out ``.`` / ``..`` traversal).
_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")

# Private-to-package: the segmented save's own manifest file name, used
# to recognise a single-collection directory save.
_SEGMENTS_MANIFEST = "manifest.json"


class UnknownCollection(KeyError):
    """A request or management call named a collection that does not exist."""


@dataclass(frozen=True)
class CollectionQuota:
    """Per-tenant admission budgets (``None`` = unlimited).

    ``max_pending`` bounds this collection's share of the service queue:
    admitted-but-undispatched requests.  ``max_inflight`` bounds its
    *unanswered* requests (queued or executing) — the knob that caps how
    much of the dispatcher a single tenant can occupy even when the
    queue itself drains fast.  Breaching either rejects (or, under
    ``backpressure="block"``, waits out) the submit with
    :class:`~repro.service.CollectionOverloaded`; other collections'
    admission is untouched.
    """

    max_pending: int | None = None
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        require(
            self.max_pending is None or self.max_pending >= 1,
            f"max_pending must be a positive int or None, "
            f"got {self.max_pending!r}",
        )
        require(
            self.max_inflight is None or self.max_inflight >= 1,
            f"max_inflight must be a positive int or None, "
            f"got {self.max_inflight!r}",
        )

    def to_dict(self) -> dict[str, int | None]:
        return {
            "max_pending": self.max_pending,
            "max_inflight": self.max_inflight,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any] | None) -> "CollectionQuota":
        data = data or {}
        return cls(
            max_pending=data.get("max_pending"),
            max_inflight=data.get("max_inflight"),
        )


class Collection:
    """One named workspace: a built index plus its serving-side state.

    ``must`` is the collection's framework instance; ``quota`` its
    admission budgets; ``stats`` its private
    :class:`~repro.service.ServiceStats`.  The remaining attributes are
    the per-tenant serving state a :class:`~repro.service.MustService`
    keeps: ``epoch`` / ``snap`` / ``snap_epoch`` implement the lazy
    per-collection snapshot cache (mutated only under the service's
    write lock), and ``pending`` / ``inflight`` are the live admission
    counters the quotas compare against (mutated only under the
    service's admit lock).
    """

    def __init__(
        self,
        name: str,
        must: "MUST",
        quota: CollectionQuota | None = None,
        stats: ServiceStats | None = None,
    ) -> None:
        require(
            isinstance(name, str) and _NAME_RE.fullmatch(name) is not None,
            f"invalid collection name {name!r}: use 1-64 characters from "
            f"[A-Za-z0-9._-], not starting with '.' (names double as "
            f"directory names in the persistence layout)",
        )
        self.name = name
        self.must = must
        self.quota = quota if quota is not None else CollectionQuota()
        self.stats = stats if stats is not None else ServiceStats()
        self.epoch = 0
        self.pending = 0
        self.inflight = 0
        self.snap: "IndexSnapshot | None" = None
        self.snap_epoch = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Collection(name={self.name!r}, quota={self.quota!r}, "
            f"epoch={self.epoch}, pending={self.pending}, "
            f"inflight={self.inflight})"
        )


class CollectionManager:
    """Registry of named collections, served as one unit.

    Construct empty and :meth:`create` collections, or lift a bare
    ``MUST`` with :meth:`of` (it becomes the ``"default"`` collection —
    which is why every pre-existing single-tenant call keeps working).
    Hand the manager to :class:`~repro.service.MustService` /
    :class:`~repro.service.sharded.ShardedService` (or call
    :meth:`serve` / :meth:`serve_sharded`) to serve every collection
    behind one dispatcher.

    Management calls (:meth:`create` / :meth:`drop` / quota changes) are
    configuration-time operations: do them before handing the manager to
    a service, not while it is running.  Iteration is sorted by name,
    which is also the order shard workers build their slices in.
    """

    def __init__(self) -> None:
        self._collections: dict[str, Collection] = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, source: "MUST | CollectionManager") -> "CollectionManager":
        """Lift *source* into a manager (a no-op on an existing one).

        A bare ``MUST`` registers as the ``"default"`` collection with
        an unlimited quota — the exact single-tenant service of every
        release so far.
        """
        if isinstance(source, CollectionManager):
            return source
        manager = cls()
        manager.create(DEFAULT_COLLECTION, source)
        return manager

    def create(
        self,
        name: str,
        must: "MUST",
        quota: CollectionQuota | None = None,
    ) -> Collection:
        """Register a new collection; returns its :class:`Collection`."""
        collection = Collection(name, must, quota=quota)
        require(
            name not in self._collections,
            f"collection {name!r} already exists — drop() it first or "
            f"pick another name",
        )
        self._collections[name] = collection
        return collection

    def get(self, name: str | None) -> Collection:
        """Resolve *name* (``None`` means ``"default"``) or raise
        :class:`UnknownCollection` with a did-you-mean hint."""
        key = DEFAULT_COLLECTION if name is None else name
        collection = self._collections.get(key) if isinstance(key, str) else None
        if collection is None:
            known = sorted(self._collections)
            hint = ""
            if isinstance(key, str) and known:
                close = difflib.get_close_matches(key, known, n=1)
                if close:
                    hint = f" — did you mean {close[0]!r}?"
            raise UnknownCollection(
                f"unknown collection {key!r}; known collections: "
                f"{known}{hint}"
            )
        return collection

    def drop(self, name: str) -> Collection:
        """Deregister and return a collection.

        In-flight requests holding the :class:`Collection` object still
        complete against it; new submits naming it fail with
        :class:`UnknownCollection`.
        """
        collection = self.get(name)
        del self._collections[collection.name]
        return collection

    def names(self) -> list[str]:
        return sorted(self._collections)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._collections

    def __len__(self) -> int:
        return len(self._collections)

    def __iter__(self) -> Iterator[Collection]:
        for name in sorted(self._collections):
            yield self._collections[name]

    # ------------------------------------------------------------------
    # Serving conveniences
    # ------------------------------------------------------------------
    def serve(
        self,
        config: "ServiceConfig | None" = None,
        start: bool = True,
        **config_kwargs: Any,
    ) -> "MustService":
        """Serve every collection behind one coalescing dispatcher.

        Pass a :class:`~repro.service.ServiceConfig` or its fields as
        keyword arguments, exactly like :meth:`MUST.serve`.
        """
        from repro.service.service import MustService, ServiceConfig

        if config is None:
            config = ServiceConfig(**config_kwargs)
        else:
            require(
                not config_kwargs,
                "pass either a ServiceConfig or its fields, not both",
            )
        return MustService(self, config, start=start)

    def serve_sharded(
        self,
        n_shards: int = 2,
        config: "ServiceConfig | None" = None,
        **kwargs: Any,
    ) -> "ShardedService":
        """Serve every collection across one set of shard processes.

        ``config`` / extra keyword arguments are
        :class:`~repro.service.ServiceConfig` fields;
        ``worker_timeout_s`` / ``spawn_timeout_s`` / ``mp_start`` pass
        through to the sharded constructor — exactly like
        :meth:`MUST.serve_sharded`.
        """
        from repro.service.service import ServiceConfig
        from repro.service.sharded import ShardedService

        passthrough = {
            key: kwargs.pop(key)
            for key in ("worker_timeout_s", "spawn_timeout_s", "mp_start")
            if key in kwargs
        }
        if config is None:
            config = ServiceConfig(**kwargs)
        else:
            require(
                not kwargs,
                "pass either a ServiceConfig or its fields, not both",
            )
        return ShardedService(
            self, n_shards=n_shards, config=config, **passthrough
        )

    # ------------------------------------------------------------------
    # Persistence — manifest of manifests (must-collections-v1)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist every collection under one directory.

        Layout: ``path/collections.json`` (format ``must-collections-v1``,
        carrying each collection's name, subdirectory, and quota) plus
        one ``path/<name>/`` segmented save per collection — each a
        plain ``must-segments-v3`` directory that ``MUST.from_saved``
        could also load on its own.  Every collection must be in
        segmented form (the state any built instance reaches on its
        first :meth:`MUST.insert`); single-graph instances save alone
        via ``MUST.save_index``.
        """
        require(
            len(self._collections) >= 1,
            "nothing to save: the manager has no collections",
        )
        for collection in self:
            require(
                collection.must.is_built,
                f"collection {collection.name!r} is unbuilt — call "
                f"MUST.build() first",
            )
            require(
                collection.must.is_segmented,
                f"collection {collection.name!r} is a single-graph index; "
                f"the collections layout stores per-collection segment "
                f"manifests — insert() at least once (which seals the "
                f"graph into segment 0) or save it alone with "
                f"MUST.save_index",
            )
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        entries: list[dict[str, Any]] = []
        for collection in self:
            collection.must.save_index(root / collection.name)
            entries.append(
                {
                    "name": collection.name,
                    "path": collection.name,
                    "kind": "segments",
                    "quota": collection.quota.to_dict(),
                }
            )
        manifest = {
            "format": _FORMAT,
            "format_version": _FORMAT_VERSION,
            "collections": entries,
        }
        # Manifest last: a crash mid-save leaves a directory without a
        # readable collections.json rather than one naming missing saves.
        (root / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))

    @classmethod
    def from_saved(
        cls,
        path: str | Path,
        builder: Any = None,
    ) -> "CollectionManager":
        """Corpus-free restore of a saved deployment.

        *path* may be a ``must-collections-v1`` directory (every
        collection restores via :meth:`MUST.from_saved`, quotas
        included) **or** a plain segmented save from a single-tenant
        ``MUST.save_index`` — which loads as the implicit ``"default"``
        collection, answering bit-identically to the instance that saved
        it.  ``builder`` seeds each restored instance's graph builder
        for post-load compactions, exactly as in ``MUST.from_saved``.
        """
        from repro.core.framework import MUST

        root = Path(path)
        manifest_path = root / _MANIFEST_NAME
        if not manifest_path.exists():
            require(
                root.is_dir() or (root / _SEGMENTS_MANIFEST).exists(),
                f"{root} is neither a {_FORMAT} directory (no "
                f"{_MANIFEST_NAME}) nor a segmented index save — save "
                f"with CollectionManager.save or MUST.save_index",
            )
            manager = cls()
            manager.create(DEFAULT_COLLECTION, MUST.from_saved(root, builder=builder))
            return manager
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"corrupt collections manifest {manifest_path}: {exc}"
            ) from exc
        require(
            isinstance(manifest, dict) and manifest.get("format") == _FORMAT,
            f"{manifest_path} is not a {_FORMAT} manifest "
            f"(format={manifest.get('format')!r} if it parsed at all)",
        )
        version = manifest.get("format_version")
        require(
            isinstance(version, int) and version <= _FORMAT_VERSION,
            f"{manifest_path} has format_version {version!r}; this build "
            f"reads versions <= {_FORMAT_VERSION} — upgrade the library",
        )
        entries = manifest.get("collections")
        require(
            isinstance(entries, list) and len(entries) >= 1,
            f"{manifest_path} lists no collections",
        )
        manager = cls()
        assert isinstance(entries, list)
        for entry in entries:
            require(
                isinstance(entry, dict) and isinstance(entry.get("name"), str),
                f"{manifest_path}: malformed collection entry {entry!r}",
            )
            name = entry["name"]
            kind = entry.get("kind", "segments")
            require(
                kind == "segments",
                f"collection {name!r} was saved as kind {kind!r}; this "
                f"build restores 'segments' collections only",
            )
            rel = entry.get("path", name)
            require(
                isinstance(rel, str) and _NAME_RE.fullmatch(rel) is not None,
                f"collection {name!r} has an unsafe save path {rel!r}",
            )
            save_dir = root / rel
            if not save_dir.is_dir():
                raise FileNotFoundError(
                    f"collection {name!r}: saved segments missing at "
                    f"{save_dir}"
                )
            manager.create(
                name,
                MUST.from_saved(save_dir, builder=builder),
                quota=CollectionQuota.from_dict(entry.get("quota")),
            )
        return manager

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CollectionManager(collections={self.names()!r})"
