"""In-process serving front-end: micro-batch coalescing over snapshots.

:class:`MustService` turns many independent callers into efficient
batched waves — the shift a serving deployment makes over raw index
code.  Three mechanisms, each visible in :class:`ServiceStats`:

* **Micro-batch coalescing** — client threads submit single queries
  into a bounded queue; a dispatcher thread drains up to
  ``max_batch`` requests (waiting at most ``max_wait_ms`` for
  stragglers) and executes them as one wave.  Exact requests with the
  same plan share per-segment GEMM prefilters
  (:meth:`IndexSnapshot.exact_wave`), so 32 concurrent exact callers
  cost a few GEMMs instead of 32 full scans; graph requests run their
  usual per-query searchers (thread-pooled when ``n_jobs > 1`` —
  useful on multicore, a no-op on one core).
* **Snapshot-isolated reads** — each wave runs against an immutable
  :class:`~repro.service.snapshot.IndexSnapshot` captured under the
  write lock, so :meth:`insert` / :meth:`mark_deleted` /
  :meth:`compact` proceed concurrently without any lock on the read
  path.  Every response equals what ``MUST.search`` would have
  answered at its wave's capture time — a search overlapping a
  compaction returns the pre- or post-compaction answer, never a
  torn hybrid.
* **Admission control** — the queue is bounded (``max_queue``);
  beyond it, submits either block (``backpressure="block"``, up to
  ``submit_timeout_s``) or fail fast (``"reject"``), both surfacing
  :class:`ServiceOverloaded` rather than unbounded memory growth.
* **Multi-tenancy** — one service hosts many named
  :class:`~repro.service.collections.Collection` workspaces (a bare
  ``MUST`` becomes the ``"default"`` one).  Requests route by
  ``SearchOptions(collection=...)``, writes take a ``collection=``
  argument, and each collection's :class:`CollectionQuota` bounds its
  queued and unanswered requests — a hot tenant breaching its budget
  gets :class:`CollectionOverloaded` while its neighbours keep being
  admitted.  Snapshots, epochs, and a second :class:`ServiceStats` are
  kept per collection, and a tenant-level execution failure (say a
  snapshot capture error) fails only that tenant's share of the wave.

Determinism: a request's graph-path init draws come from its own
``rng`` argument (default 0, like :meth:`MUST.search`), never from
batch composition — so the answer to a request does not depend on
which other requests happened to share its wave.
"""

from __future__ import annotations

import queue
import threading
import time
import warnings
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, cast

import numpy as np

from repro.core.multivector import MultiVector, MultiVectorSet
from repro.core.query import Query, SearchOptions
from repro.core.results import SearchResult
from repro.core.weights import Weights
from repro.service.collections import Collection, CollectionManager
from repro.service.snapshot import IndexSnapshot
from repro.service.stats import ServiceStats
from repro.utils.parallel import thread_map
from repro.utils.validation import require

if TYPE_CHECKING:
    from types import TracebackType

    from repro.core.framework import MUST

__all__ = [
    "ServiceConfig",
    "MustService",
    "ServiceClosed",
    "ServiceOverloaded",
    "CollectionOverloaded",
]


class ServiceClosed(RuntimeError):
    """Raised on submits to (and pending requests of) a closed service."""


class ServiceOverloaded(RuntimeError):
    """Raised when admission control drops a request (queue full)."""


class CollectionOverloaded(ServiceOverloaded):
    """One tenant's quota is exhausted — the service itself has room.

    Subclasses :class:`ServiceOverloaded`, so callers treating any
    admission drop uniformly keep working; callers that care which
    budget fired can catch this one and read the collection name from
    the message.
    """


@dataclass
class ServiceConfig:
    """Coalescing, backpressure, and execution knobs for one service.

    ``max_batch``/``max_wait_ms`` trade latency for batching: the
    dispatcher ships a wave as soon as it holds ``max_batch`` requests
    or the oldest one has waited ``max_wait_ms``.  ``max_queue`` bounds
    accepted-but-undispatched requests; ``backpressure`` picks what a
    full queue does to ``submit`` (``"block"`` waits up to
    ``submit_timeout_s``, ``"reject"`` raises immediately).  ``n_jobs``
    sizes the graph-path thread pool per wave.  ``exact_margin`` is the
    prefilter safety band of the coalesced exact wave (see
    :meth:`~repro.index.segments.SegmentView.exact_wave`).
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    max_queue: int = 256
    backpressure: str = "block"
    submit_timeout_s: float | None = 30.0
    n_jobs: int = 1
    exact_margin: float = 1e-4
    latency_window: int = 10_000

    def __post_init__(self) -> None:
        require(self.max_batch >= 1, "max_batch must be positive")
        require(self.max_wait_ms >= 0.0, "max_wait_ms must be non-negative")
        require(self.max_queue >= 1, "max_queue must be positive")
        require(
            self.backpressure in ("block", "reject"),
            "backpressure must be 'block' or 'reject'",
        )
        require(
            self.submit_timeout_s is None or self.submit_timeout_s >= 0.0,
            "submit_timeout_s must be non-negative or None",
        )
        require(self.exact_margin >= 0.0, "exact_margin must be non-negative")
        require(self.latency_window >= 1, "latency_window must be positive")


@dataclass
class _Request:
    """One queued search: the query, its plan, and the client's future.

    ``query`` may be a typed :class:`Query` (per-request weights, filter,
    and k override ride inside); ``kwargs`` is the legacy-shaped plan the
    dispatcher executes with.  Plan values are validated *at execution*,
    so a malformed request fails through its own future instead of
    poisoning ``submit`` — the historical containment contract.
    """

    query: MultiVector | Query
    kwargs: dict[str, Any]
    collection: Collection
    future: "Future[SearchResult]" = field(default_factory=Future)
    submitted: float = field(default_factory=time.perf_counter)


_STOP = object()  # queue sentinel: drain everything before it, then exit


def _weights_key(weights: object) -> tuple[Any, ...] | None:
    """Hashable plan-grouping key for a request's ``weights`` slot.

    Normalisation at submit means this is a :class:`Weights` or ``None``
    on every ordinary path; anything else (a malformed legacy value that
    could not be normalised) gets an identity key so it groups *alone*
    and fails through its own future instead of poisoning a shared wave.
    """
    if weights is None:
        return None
    if isinstance(weights, Weights):
        return tuple(float(x) for x in weights.squared)
    return ("unnormalised", id(weights))


def _plan(options: SearchOptions) -> dict[str, Any]:
    """The dispatcher's execution plan for one request.

    Derived from the dataclass fields (plus the legacy batch-level
    ``weights`` slot, which lives on :class:`Query` in the typed
    surface) so the service can never drift out of sync when
    :class:`SearchOptions` grows a field.
    """
    # n_jobs excluded: pool sizing is ServiceConfig's, per wave.
    plan = options.to_kwargs(exclude=("n_jobs",))
    plan["weights"] = None
    return plan


class MustService:
    """Concurrent serving wrapper over one or many built :class:`MUST`.

    Construct with a single built instance (served as the ``"default"``
    collection) or a :class:`~repro.service.CollectionManager` hosting
    many named workspaces.  Reads (:meth:`search` / :meth:`submit`) go
    through the coalescing dispatcher and route to their collection via
    ``SearchOptions(collection=...)``; writes (:meth:`insert` /
    :meth:`mark_deleted` / :meth:`compact`) take a ``collection=``
    argument, mutate that collection's instance under the service's
    write lock, and advance its snapshot epoch, so the next wave serves
    the new state while in-flight waves finish on the old one.  Do not
    mutate a wrapped instance directly while the service is running —
    route writes through the service so they serialise with snapshot
    capture.

    Parity: a response is bit-identical to ``MUST.search`` with the
    same arguments against the request's snapshot — on every path of a
    segmented instance, and on the graph path of a single-graph
    instance; single-graph *exact* requests coalesce through the legacy
    GEMM batch (same ranks, similarities within ~1e-7 — see
    :meth:`IndexSnapshot.exact_wave`).

    Use as a context manager or call :meth:`close` to stop the
    dispatcher; ``start=False`` defers the dispatcher thread (requests
    queue up until :meth:`start`), which tests use to exercise
    admission control deterministically.
    """

    def __init__(
        self,
        must: "MUST | CollectionManager",
        config: ServiceConfig | None = None,
        start: bool = True,
    ) -> None:
        self.collections = CollectionManager.of(must)
        require(
            len(self.collections) >= 1,
            "MustService needs at least one collection — "
            "CollectionManager.create() one first",
        )
        for collection in self.collections:
            require(
                collection.must.is_built,
                f"MustService needs built indexes — collection "
                f"{collection.name!r} is unbuilt; call MUST.build() first",
            )
        self.config = config or ServiceConfig()
        self.stats = ServiceStats(self.config.latency_window)
        self._queue: "queue.Queue[Any]" = queue.Queue(
            maxsize=self.config.max_queue
        )
        #: serialises the closing-flag check with queue puts, so a racing
        #: submit can never slip a request in after close()'s final drain
        #: (which would leave its future unresolved forever).  The
        #: per-collection pending/inflight quota counters mutate under
        #: the same lock, so an admit decision always sees a consistent
        #: census.
        self._admit_lock = threading.Lock()
        self._write_lock = threading.RLock()
        self._closing = False
        self._thread: threading.Thread | None = None
        if start:
            self.start()

    @property
    def must(self) -> "MUST":
        """The ``"default"`` collection's instance (single-tenant compat).

        Raises :class:`~repro.service.UnknownCollection` on a service
        with no ``"default"`` collection — address instances through
        ``service.collections.get(name).must`` there.
        """
        return self.collections.get(None).must

    @must.setter
    def must(self, value: "MUST") -> None:
        self.collections.get(None).must = value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MustService":
        """Start the dispatcher thread (idempotent)."""
        require(not self._closing, "service is closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._dispatch_loop,
                name="must-service-dispatcher",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self, timeout: float | None = 30.0) -> None:
        """Stop accepting requests, drain the queue, stop the dispatcher.

        Requests already accepted are still answered (the queue is FIFO
        and the stop sentinel goes in last); requests submitted after
        ``close`` raises :class:`ServiceClosed`.  Idempotent.
        """
        with self._admit_lock:
            already_closing = self._closing
            self._closing = True
        if already_closing:
            if self._thread is not None:
                self._thread.join(timeout)
            return
        if self._thread is None:
            # Never started: nothing will drain the queue — fail pending.
            self._fail_queued(ServiceClosed("service closed before start"))
            return
        self._queue.put(_STOP)
        self._thread.join(timeout)

    def _fail_queued(self, exc: Exception) -> None:
        while True:
            try:
                req = self._queue.get_nowait()
            except queue.Empty:
                return
            if req is _STOP:
                continue
            self._note_dispatched([req])
            self._resolve(req, exc)

    def __enter__(self) -> "MustService":
        return self.start()

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: BaseException | None,
        tb: "TracebackType | None",
    ) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def submit(
        self,
        query: MultiVector | Query,
        options: SearchOptions | None = None,
        **legacy_kwargs: Any,
    ) -> "Future[SearchResult]":
        """Enqueue one search; returns a future resolving to its
        :class:`~repro.core.results.SearchResult`.

        The typed form — ``submit(Query(vector, filter=...),
        SearchOptions(k=5, exact=True))`` — is preferred; per-query
        weights/filter/k ride inside the :class:`Query` and
        ``options.rng`` seeds this request's graph-path init draws
        (exact requests ignore it).  ``options.collection`` routes the
        request to a named collection (``None`` → ``"default"``); an
        unknown name raises :class:`~repro.service.UnknownCollection`
        here, before the queue.  Legacy keyword arguments mirroring
        :meth:`MUST.search` (``k=, l=, weights=, exact=, ...``) still
        work as a deprecation shim, answering bit-identically; unknown
        names raise with a did-you-mean hint.  Raises
        :class:`ServiceOverloaded` when admission control drops the
        request (its :class:`CollectionOverloaded` subclass when the
        request's own tenant budget is the one exhausted) and
        :class:`ServiceClosed` after :meth:`close`.
        """
        if legacy_kwargs:
            require(
                options is None,
                "pass either a SearchOptions or legacy keyword "
                "arguments, not both",
            )
            warnings.warn(
                "MustService.submit(**kwargs) is a deprecated shim; pass "
                "a typed Query/SearchOptions pair instead — see the "
                "README 'Query API' section",
                DeprecationWarning,
                stacklevel=2,
            )
            # Unknown names fail fast with a did-you-mean hint; value
            # errors surface at execution through the request's future
            # (the containment contract above).
            SearchOptions.validate_names(legacy_kwargs, extra=("weights",))
            require(
                "n_jobs" not in legacy_kwargs,
                "n_jobs is a service-level knob — set "
                "ServiceConfig(n_jobs=...) instead of passing it per "
                "request",
            )
            kwargs = _plan(SearchOptions())
            kwargs.update(legacy_kwargs)
            raw = kwargs.get("weights")
            if raw is not None and not isinstance(raw, Weights):
                # Legacy callers pass raw squared-weight sequences; the
                # plan groupers key on ``.squared``, so a raw list used
                # to raise AttributeError at wave level and fail every
                # wave-mate's future.  Normalise here; a malformed value
                # stays as-is and fails through its own future at
                # execution (the containment contract).
                try:
                    kwargs["weights"] = Weights(raw)
                except Exception:
                    pass
        else:
            opts = options if options is not None else SearchOptions()
            require(
                isinstance(opts, SearchOptions),
                f"options must be a SearchOptions instance, got "
                f"{type(opts).__name__} — build one with SearchOptions(...)",
            )
            require(
                opts.n_jobs == 1,
                "n_jobs is a service-level knob — set "
                "ServiceConfig(n_jobs=...) instead of passing it per "
                "request",
            )
            kwargs = _plan(opts)
        # Resolve the collection eagerly: addressing errors (unknown
        # name) fail fast at the call site like unknown kwargs do, and
        # the admission path needs the Collection for its quota census.
        name = kwargs.get("collection")
        require(
            name is None or isinstance(name, str),
            f"collection must be a str or None, got {name!r}",
        )
        collection = self.collections.get(name)
        kwargs["collection"] = collection.name
        req = _Request(query=query, kwargs=kwargs, collection=collection)
        self._admit(req)  # counts the submit inside its critical section
        return req.future

    def _admit(self, req: _Request) -> None:
        """Place *req* in the queue, or raise — never both.

        Every put happens under :attr:`_admit_lock` with the closing
        flag checked in the same critical section; :meth:`close` flips
        the flag under the same lock before its final drain, so a
        request can never be enqueued after the last consumer is gone.
        The ``"block"`` path waits for queue space in short slices
        outside the lock (overload is the slow path already), re-checking
        the flag each round.

        Per-tenant budgets gate inside the same critical section: a
        request whose collection has exhausted its
        :class:`~repro.service.CollectionQuota` is treated exactly like
        a full queue — rejected (:class:`CollectionOverloaded`) or
        blocked until the tenant's own backlog drains — while requests
        for other collections keep being admitted.
        """
        if self.config.backpressure == "reject":
            with self._admit_lock:
                if self._closing:
                    raise ServiceClosed("service is closed")
                reason = self._try_admit(req)
                if reason is None:
                    return
            self.stats.record_rejected()
            req.collection.stats.record_rejected()
            raise self._overloaded(req.collection, reason)
        timeout = self.config.submit_timeout_s
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            with self._admit_lock:
                if self._closing:
                    raise ServiceClosed("service is closed")
                reason = self._try_admit(req)
                if reason is None:
                    return
            if deadline is not None and time.perf_counter() >= deadline:
                self.stats.record_rejected()
                req.collection.stats.record_rejected()
                raise self._overloaded(req.collection, reason)
            time.sleep(0.002)

    def _try_admit(self, req: _Request) -> str | None:
        """One admission attempt under :attr:`_admit_lock`.

        Returns ``None`` on success (request enqueued, counters and
        stats updated) or the refusal reason: ``""`` for the global
        queue bound, a tenant-budget description otherwise.
        """
        collection = req.collection
        quota = collection.quota
        if (
            quota.max_pending is not None
            and collection.pending >= quota.max_pending
        ):
            return (
                f"queue-depth quota exhausted "
                f"({collection.pending}/{quota.max_pending} pending)"
            )
        if (
            quota.max_inflight is not None
            and collection.inflight >= quota.max_inflight
        ):
            return (
                f"in-flight quota exhausted "
                f"({collection.inflight}/{quota.max_inflight} unanswered)"
            )
        try:
            self._queue.put_nowait(req)
        except queue.Full:
            return ""
        collection.pending += 1
        collection.inflight += 1
        self.stats.record_submitted()
        collection.stats.record_submitted()
        return None

    def _note_dispatched(self, reqs: list[_Request]) -> None:
        """Release the requests' queue-depth quota slots.

        Called exactly once per request, when it leaves the queue — by
        the dispatcher at the head of :meth:`_execute` or by
        :meth:`_fail_queued` on shutdown.  (The in-flight slot is held
        until :meth:`_resolve`.)
        """
        with self._admit_lock:
            for req in reqs:
                req.collection.pending -= 1

    def _overloaded(
        self, collection: Collection, reason: str
    ) -> ServiceOverloaded:
        if reason:
            return CollectionOverloaded(
                f"collection {collection.name!r}: {reason}; "
                f"backpressure={self.config.backpressure!r}"
            )
        return ServiceOverloaded(
            f"request queue full ({self.config.max_queue} pending); "
            f"backpressure={self.config.backpressure!r}"
        )

    def search(
        self,
        query: MultiVector | Query,
        options: SearchOptions | None = None,
        **params: Any,
    ) -> SearchResult:
        """Blocking single search — :meth:`submit` + ``result()``.

        This is the call each concurrent client thread makes; the
        dispatcher coalesces whatever is waiting into one wave.  Takes
        a typed ``(query, options)`` pair or the legacy keyword form,
        exactly like :meth:`submit`.
        """
        return self.submit(query, options, **params).result()

    def snapshot(self, collection: str | None = None) -> IndexSnapshot | None:
        """The snapshot serving a collection's next wave (lazy per epoch)."""
        return self._snapshot_of(self.collections.get(collection))

    def _snapshot_of(self, collection: Collection) -> IndexSnapshot | None:
        with self._write_lock:
            if (
                collection.snap is None
                or collection.snap_epoch != collection.epoch
            ):
                snap = IndexSnapshot.of(collection.must)
                snap.prepare()
                collection.snap = snap
                collection.snap_epoch = collection.epoch
            return collection.snap

    def active_ids(self, collection: str | None = None) -> np.ndarray:
        """Ids of a collection's live objects, read under the write lock.

        The convenience read for writers picking deletion targets:
        inspecting ``service.must`` directly from another thread would
        race the dispatcher's snapshot capture on the delta segment's
        lazily materialised graph, which the lock serialises.
        """
        col = self.collections.get(collection)
        with self._write_lock:
            if col.must.is_segmented:
                ids = col.must.segments.active_ext_ids()
            else:
                ids = col.must.index.active_ids()
            return np.asarray(ids, dtype=np.int64)

    # ------------------------------------------------------------------
    # Write path — serialised with snapshot capture, never with reads
    # ------------------------------------------------------------------
    def insert(
        self,
        objects: MultiVectorSet | MultiVector,
        collection: str | None = None,
    ) -> np.ndarray:
        """Stream objects into a collection; returns their stable ids.

        Ids are per-collection: each workspace owns an independent
        external-id space, so the same id in two collections names two
        unrelated objects.
        """
        col = self.collections.get(collection)
        with self._write_lock:
            out = col.must.insert(objects)
            col.epoch += 1
            return np.asarray(out, dtype=np.int64)

    def mark_deleted(
        self,
        object_ids: np.ndarray,
        collection: str | None = None,
    ) -> None:
        """Soft-delete objects from a collection's live index."""
        col = self.collections.get(collection)
        with self._write_lock:
            col.must.mark_deleted(object_ids)
            col.epoch += 1

    def compact(
        self, collection: str | None = None
    ) -> "tuple[MUST, np.ndarray]":
        """Rebuild a collection's live objects (see :meth:`MUST.compact`).

        On a segmented instance the rebuild is in place; on a
        single-graph instance the collection re-binds to the fresh
        framework ``MUST.compact`` returns (external ids then remap per
        the returned ``active_ids``, exactly as for a direct call).
        In-flight waves keep answering from their pre-compaction
        snapshot either way, and other collections are untouched.
        """
        col = self.collections.get(collection)
        with self._write_lock:
            fresh, active = col.must.compact()
            col.must = fresh
            col.epoch += 1
            return fresh, np.asarray(active, dtype=np.int64)

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        cfg = self.config
        try:
            while True:
                first = self._queue.get()
                if first is _STOP:
                    break
                batch = [first]
                stop = False
                deadline = time.perf_counter() + cfg.max_wait_ms / 1e3
                while len(batch) < cfg.max_batch:
                    remaining = deadline - time.perf_counter()
                    try:
                        item = (
                            self._queue.get_nowait()
                            if remaining <= 0.0
                            else self._queue.get(timeout=remaining)
                        )
                    except queue.Empty:
                        break
                    if item is _STOP:
                        stop = True
                        break
                    batch.append(item)
                self._execute(batch)
                if stop:
                    break
        finally:
            # However the loop exits — drained sentinel or an unexpected
            # dispatcher error — stop admitting and fail whatever is
            # still queued, so no client ever blocks on a future that
            # nothing will resolve.
            with self._admit_lock:
                self._closing = True
            self._fail_queued(ServiceClosed("service is closed"))

    def _execute(self, batch: list[_Request]) -> None:
        self._note_dispatched(batch)
        try:
            self.stats.record_batch(len(batch), self._queue.qsize())
            dispatched = time.perf_counter()
            groups: dict[str, list[_Request]] = {}
            for req in batch:
                wait = dispatched - req.submitted
                self.stats.record_wait(wait)
                req.collection.stats.record_wait(wait)
                groups.setdefault(req.collection.name, []).append(req)
        except Exception as exc:
            # Batch-level failure: fail every unresolved request instead
            # of letting the exception kill the dispatcher and strand
            # every caller.
            for req in batch:
                if not req.future.done():
                    self._resolve(req, exc)
            return
        for reqs in groups.values():
            try:
                self._execute_collection(reqs)
            except Exception as exc:
                # Tenant-level failure (snapshot capture, plan grouping,
                # …): fail only this collection's share of the wave —
                # its neighbours' groups still run.
                for req in reqs:
                    if not req.future.done():
                        self._resolve(req, exc)

    def _execute_collection(self, reqs: list[_Request]) -> None:
        """One collection's share of a dispatched batch."""
        collection = reqs[0].collection
        snap = self._snapshot_of(collection)
        collection.stats.record_batch(len(reqs), collection.pending)

        # Only an *explicit* engine="wave" request coalesces into a
        # lockstep wave; "auto" resolves per-query on the snapshot
        # read path, preserving the historical bit-parity pins.
        graph_reqs = [
            r for r in reqs
            if not r.kwargs["exact"] and r.kwargs.get("engine") != "wave"
        ]
        wave_reqs = [
            r for r in reqs
            if not r.kwargs["exact"] and r.kwargs.get("engine") == "wave"
        ]
        exact_reqs = [r for r in reqs if r.kwargs["exact"]]
        if graph_reqs:
            self._run_graph(snap, graph_reqs)
        for group in self._wave_groups(wave_reqs):
            self._run_graph_wave(snap, group)
        for group in self._exact_groups(exact_reqs):
            self._run_exact(snap, group)

    def _run_graph(
        self, snap: IndexSnapshot | None, reqs: list[_Request]
    ) -> None:
        """Per-query searchers over the shared snapshot, thread-pooled.

        Each request keeps its own kwargs (including ``rng``), so the
        wave is arithmetic-identical to dispatching the requests one by
        one — pooling only overlaps them.
        """
        view = self._require_snap(snap)

        def one(req: _Request) -> SearchResult | Exception:
            try:
                kwargs = {
                    key: value
                    for key, value in req.kwargs.items()
                    if key not in ("exact", "collection")
                }
                return view.search(req.query, **kwargs)
            except Exception as exc:  # propagate per request, not per wave
                return exc

        outcomes = thread_map(one, reqs, n_jobs=self.config.n_jobs)
        for req, outcome in zip(reqs, outcomes):
            self._resolve(req, outcome)

    @staticmethod
    def _require_snap(snap: IndexSnapshot | None) -> IndexSnapshot:
        """Narrow the optional snapshot the executor signatures carry.

        ``None`` only ever flows through :class:`ShardedService`, whose
        executor overrides never call back into these.
        """
        if snap is None:  # pragma: no cover - in-process always captures
            raise RuntimeError("in-process executors need a snapshot")
        return snap

    def _wave_groups(self, reqs: list[_Request]) -> list[list[_Request]]:
        """Group ``engine="wave"`` requests sharing one lockstep plan.

        Per-request ``rng`` seeds never fragment a group — the engine
        takes one rng per query — and typed per-query weights/filters/k
        ride inside each :class:`Query`; only the plan-level parameters
        that parameterise the traversal itself must match.
        """
        groups: dict[tuple[Any, ...], list[_Request]] = {}
        for req in reqs:
            key = (
                req.kwargs["k"],
                req.kwargs["l"],
                req.kwargs["refine"],
                req.kwargs["early_termination"],
                req.kwargs["check_monotone"],
                req.kwargs["sparse_engine"],
                _weights_key(req.kwargs["weights"]),
            )
            groups.setdefault(key, []).append(req)
        return list(groups.values())

    def _run_graph_wave(
        self, snap: IndexSnapshot | None, reqs: list[_Request]
    ) -> None:
        """One lockstep traversal answers every request in the group.

        Each request keeps its own ``rng``, and the wave engine is
        composition-independent per query, so a coalesced answer is
        bit-identical to dispatching the request alone — pooling many
        callers only amortises the traversal, never changes a result.
        """
        view = self._require_snap(snap)
        kwargs = reqs[0].kwargs
        try:
            results, wave_stats = view.graph_wave(
                [r.query for r in reqs],
                k=kwargs["k"],
                l=kwargs["l"],
                weights=kwargs["weights"],
                early_termination=kwargs["early_termination"],
                refine=kwargs["refine"],
                check_monotone=kwargs["check_monotone"],
                rngs=[r.kwargs["rng"] for r in reqs],
                sparse_engine=kwargs["sparse_engine"],
            )
        except Exception:
            # One request's doing (an unknown filter attribute, a bad
            # plan value) must not fail its wave-mates — retry
            # individually so only the offender's future errors.
            for req in reqs:
                try:
                    retry = {
                        key: value
                        for key, value in req.kwargs.items()
                        if key not in ("exact", "collection")
                    }
                    self._resolve(req, view.search(req.query, **retry))
                except Exception as exc:
                    self._resolve(req, exc)
            return
        self.stats.record_graph_wave(
            wave_stats.waves, wave_stats.frontier_sizes
        )
        reqs[0].collection.stats.record_graph_wave(
            wave_stats.waves, wave_stats.frontier_sizes
        )
        for req, res in zip(reqs, results):
            res.stats.merge(wave_stats)
            self._resolve(req, res)

    def _exact_groups(self, reqs: list[_Request]) -> list[list[_Request]]:
        """Group exact requests sharing one wave plan (k, weights, refine).

        Typed per-query weights/filters/k overrides ride inside each
        request's :class:`Query` and are handled natively by the exact
        wave, so they never fragment a group; only the plan-level
        (legacy batch) parameters must match.
        """
        groups: dict[tuple[Any, ...], list[_Request]] = {}
        for req in reqs:
            key = (
                req.kwargs["k"],
                req.kwargs["refine"],
                req.kwargs["sparse_engine"],
                _weights_key(req.kwargs["weights"]),
            )
            groups.setdefault(key, []).append(req)
        return list(groups.values())

    def _run_exact(
        self, snap: IndexSnapshot | None, reqs: list[_Request]
    ) -> None:
        view = self._require_snap(snap)
        kwargs = reqs[0].kwargs
        try:
            results = view.exact_wave(
                [r.query for r in reqs],
                kwargs["k"],
                weights=kwargs["weights"],
                refine=kwargs["refine"],
                margin=self.config.exact_margin,
                sparse_engine=kwargs["sparse_engine"],
            )
        except Exception:
            # A wave failure may be one request's doing (a typed filter
            # naming an unknown attribute, a malformed plan value) —
            # retry individually so only the offender's future errors
            # and its wave-mates still get answers (the per-request
            # containment contract).
            for req in reqs:
                try:
                    retry = {
                        key: value
                        for key, value in req.kwargs.items()
                        if key != "collection"
                    }
                    self._resolve(req, view.search(req.query, **retry))
                except Exception as exc:
                    self._resolve(req, exc)
            return
        for req, res in zip(reqs, results):
            self._resolve(req, res)

    def _resolve(self, req: _Request, outcome: object) -> None:
        """Deliver *outcome* through the request's future.

        A client may ``cancel()`` a queued future at any time;
        ``set_result``/``set_exception`` on a cancelled future raise
        ``InvalidStateError``, which used to escape through the
        wave-level handler (re-raising on the *same* future) and kill
        the dispatch loop — one impatient caller wedging every other
        client.  ``set_running_or_notify_cancel`` claims the future
        atomically: if the claim fails the request was cancelled and is
        counted as failed without delivery.
        """
        latency = time.perf_counter() - req.submitted
        ok = not isinstance(outcome, Exception)
        try:
            claimed = req.future.set_running_or_notify_cancel()
        except InvalidStateError:
            # Already RUNNING/finished — a double resolve; never
            # overwrite the first delivery.
            return
        # Exactly one call per request reaches this point (the double
        # resolve returned above), so the in-flight quota slot releases
        # exactly once.
        with self._admit_lock:
            req.collection.inflight -= 1
        if not claimed:
            self.stats.record_done(latency, ok=False)
            req.collection.stats.record_done(latency, ok=False)
            return
        self.stats.record_done(latency, ok=ok)
        req.collection.stats.record_done(latency, ok=ok)
        if isinstance(outcome, Exception):
            req.future.set_exception(outcome)
        else:
            req.future.set_result(cast(SearchResult, outcome))
