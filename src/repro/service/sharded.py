"""Process-sharded serving tier: N worker processes, one coalescing front-end.

Every hot path in the library is GIL-bound on its Python half, so the
thread-pooled executors show flat-to-negative speedup (see
``BENCH_batch_qps``).  :class:`ShardedService` breaks that ceiling the
only way CPython allows: the corpus is partitioned by external id
(``ext_id % n_shards``) across **worker processes**, each holding its
own :class:`~repro.index.segments.SegmentedIndex` over its slice.

The data plane is built so vectors cross the process boundary exactly
once, at spawn:

* each shard's vector planes (plus external ids and attribute columns)
  are packed into one shared-memory block
  (:class:`~repro.utils.shm.SharedArrays`); the worker attaches
  zero-copy views and builds its graph over them.  After every worker
  acknowledges, the parent unlinks the block — it lives exactly as long
  as its mappings;
* with an mmap-backed template (``cold_storage="mmap"``) the block
  shrinks from O(corpus) to O(hot): it carries only ids, attributes, a
  per-row ``(source, row)`` map into the on-disk cold files, and any
  rows still resident in the parent (the delta "tail").  Each worker
  opens the cold ``.npy`` files read-only via mmap
  (:class:`~repro.store.GatherPlane` over
  :class:`~repro.store.MmapPlane` sources), gathers its slice once to
  build the graph — the same bytes the resident protocol ships — and
  serves refine/exact reranks straight from the shared page cache.
  ``spawn_shm_bytes`` records what actually crossed;
* at serve time only queries travel down and top-k ``(id, score)``
  pairs travel up — a few hundred bytes per request, never a vector
  plane.

The control plane **reuses** :class:`MustService` unchanged: the same
bounded queue, admission control, micro-batch coalescing dispatcher,
and plan grouping.  Only the group executors differ — each coalesced
group scatters to every live shard (exact groups via the shard's
``exact_wave``, lockstep graph groups via ``graph_wave``, per-query
graph requests via a per-item command), gathers the per-shard pools,
and merges a global top-k with
:func:`~repro.index.segments._merge_candidates`.

**Bit-parity.**  The exact path scores through the layout-independent
``query_ids_stable`` kernel inside each shard, per segment — the same
kernel a single-process :class:`~repro.index.segments.SegmentView` scans
with.  A shard's local top-k is therefore a subset of the global
candidate list with *identical* similarities, the union of local top-k
lists contains the global top-k, and the merge orders by
``(-similarity, external id)`` exactly like the single-process merge —
so the sharded exact answer is **bit-identical to the unsharded
``SegmentView`` answer for every shard count and layout**, filters and
deletes included.  Graph-path answers are deterministic for a fixed
shard count (per-request seeds spawn one child per shard) but are a
different — recall-equivalent — sample than the single-process graph,
exactly as two differently-built graphs answer differently.

**Failure containment.**  A worker that dies mid-wave fails only the
requests of the group in flight (each future gets a
:class:`ShardFailed`); the shard is marked dead and subsequent waves
keep answering from the surviving shards (degraded: their slice of the
corpus is gone from results until the service is rebuilt).  Writes
route by external id to the owning shard under per-shard epochs; a
write touching a dead shard raises.

**Multi-tenancy.**  Constructed from a
:class:`~repro.service.CollectionManager`, every worker process holds
one shard slice of *every* collection (its own
:class:`~repro.index.segments.SegmentedIndex`, id space, and shm pack
per collection), and every hot-path command carries the collection
name.  Requests route exactly as in :class:`MustService`
(``SearchOptions(collection=...)``), writes take ``collection=``, and
the per-tenant admission quotas are inherited unchanged — sharding is
orthogonal to tenancy.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.attributes import AttributeTable
from repro.core.multivector import MultiVector, MultiVectorSet
from repro.core.query import Query
from repro.core.results import SearchResult, SearchStats
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.base import reseat_on_store
from repro.index.segments import SegmentedIndex, SegmentView, _merge_candidates
from repro.service.collections import Collection, CollectionManager
from repro.service.service import MustService, ServiceConfig, _Request
from repro.service.snapshot import IndexSnapshot
from repro.sparse.store import SparseStats, SparseStore, sum_stats
from repro.store import GatherPlane, MmapPlane, ResidentPlane
from repro.utils.rng import spawn_seed_sequences
from repro.utils.shm import SharedArrays
from repro.utils.validation import require

if TYPE_CHECKING:
    from repro.core.framework import MUST

__all__ = ["ShardedService", "ShardFailed"]


class ShardFailed(RuntimeError):
    """A worker process died (or timed out) while serving a request."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _resolved_k(query: MultiVector | Query, k: int) -> int:
    """Per-request k: a typed Query's override wins over the plan k."""
    if isinstance(query, Query) and query.k is not None:
        return int(query.k)
    return int(k)


def _view_search(
    view: SegmentView, query: MultiVector | Query, plan: dict[str, Any]
) -> SearchResult:
    """One request against a shard view, mirroring ``IndexSnapshot.search``.

    Used for per-query graph requests and for containment retries of a
    failed group, so a request answers (or fails) exactly as it would
    against a single-process snapshot of this shard's slice.
    """
    kwargs = dict(plan)
    kwargs.pop("collection", None)  # routing already happened
    exact = bool(kwargs.pop("exact", False))
    engine = kwargs.pop("engine", "auto")
    weights = kwargs.pop("weights", None)
    k = kwargs.pop("k", 10)
    l = kwargs.pop("l", 100)
    refine = kwargs.pop("refine", None)
    early = kwargs.pop("early_termination", False)
    sparse_engine = kwargs.pop("sparse_engine", "auto")
    if exact:
        return view.exact_search(
            query, k, weights=weights, refine=refine,
            sparse_engine=sparse_engine,
        )
    if engine == "wave":
        results, wave_stats = view.graph_wave(
            [query],
            k=k,
            l=l,
            weights=weights,
            early_termination=early,
            refine=refine,
            check_monotone=bool(kwargs.pop("check_monotone", False)),
            rngs=[kwargs.pop("rng", 0)],
            sparse_engine=sparse_engine,
        )
        results[0].stats.merge(wave_stats)
        return results[0]
    engine = "heap" if engine == "auto" else engine
    return view.search(
        query,
        k=k,
        l=l,
        weights=weights,
        early_termination=early,
        engine=engine,
        refine=refine,
        sparse_engine=sparse_engine,
        **kwargs,
    )


def _empty_result() -> SearchResult:
    return SearchResult(
        ids=np.zeros(0, dtype=np.int64),
        similarities=np.zeros(0, dtype=np.float64),
    )


class _ShardCollection:
    """One collection's shard slice: a segmented index + its epoch."""

    def __init__(self, spec: dict[str, Any] | None, meta: dict[str, Any]):
        self.meta = meta
        self.pack = SharedArrays.attach(spec) if spec is not None else None
        weights = Weights(meta["squared_weights"])
        builder = meta["builder"]
        kwargs = dict(
            builder=builder,
            policy=meta["policy"],
            hnsw=meta["hnsw"],
            seed=meta["seed"],
            compression=meta["compression"],
            store_options=meta["store_options"],
        )
        if self.pack is not None:
            arrays = self.pack.arrays
            ext_ids = np.asarray(arrays["ext_ids"], dtype=np.int64)
            num_modalities = meta["num_modalities"]
            plane = None
            if meta.get("cold_storage") == "mmap":
                # The cold tier stays on disk: the shm pack carries only a
                # per-row (source, row) map plus any rows whose source
                # segment was still resident in the parent (the "tail").
                # The worker opens the parent's cold files read-only and
                # gathers its slice once to build the graph — identical
                # bytes to the resident protocol, O(hot) shm instead of
                # O(corpus).
                sources: list = [MmapPlane(p) for p in meta["cold_sources"]]
                if "tail_mod_0" in arrays:
                    sources.append(
                        ResidentPlane(
                            [
                                np.asarray(arrays[f"tail_mod_{i}"])
                                for i in range(num_modalities)
                            ]
                        )
                    )
                plane = GatherPlane(
                    sources,
                    np.asarray(arrays["cold_src"], dtype=np.int64),
                    np.asarray(arrays["cold_row"], dtype=np.int64),
                )
                mats = [plane.modality(i) for i in range(num_modalities)]
            else:
                mats = [
                    np.asarray(arrays[f"mod_{i}"]) for i in range(num_modalities)
                ]
            attributes = AttributeTable.from_arrays(arrays)
            # The sparse lexical plane rides in the pack stamped with
            # the collection-global statistics, so this shard's BM25/
            # TF-IDF scores match every other shard's from the start.
            sparse = SparseStore.from_arrays(arrays)
            space = JointSpace(
                MultiVectorSet(mats, attributes=attributes, sparse=sparse),
                weights,
            )
            index = reseat_on_store(
                builder.build(space), meta["compression"], meta["store_options"]
            )
            if plane is not None:
                store = index.space.vectors.store
                if store.cold_plane is not None:
                    index.space = JointSpace(
                        MultiVectorSet.from_store(
                            store.with_cold_plane(plane),
                            attributes=attributes,
                            sparse=sparse,
                        ),
                        weights,
                    )
            self.seg = SegmentedIndex.from_graph(
                index, ext_ids=ext_ids, **kwargs
            )
        else:
            self.seg = SegmentedIndex(weights, **kwargs)
        self.seg.shard = (meta["shard"], meta["n_shards"])
        self.epoch = 0
        self._view: SegmentView | None = None
        self._view_epoch = -1

    def view(self) -> SegmentView:
        """The current epoch's frozen view (captured lazily per write)."""
        view = self._view
        if view is None or self._view_epoch != self.epoch:
            view = self.seg.snapshot()
            if view.num_segments:
                view.prepare_search()
            self._view = view
            self._view_epoch = self.epoch
        return view

    # Commands ---------------------------------------------------------
    def exact_wave(
        self,
        queries: list[MultiVector | Query],
        k: int,
        weights: Weights | None,
        refine: int | None,
        margin: float,
        sparse_engine: str = "auto",
    ) -> list[SearchResult]:
        view = self.view()
        if view.num_segments == 0:
            return [_empty_result() for _ in queries]
        return view.exact_wave(
            queries, k, weights=weights, refine=refine, margin=margin,
            sparse_engine=sparse_engine,
        )

    def graph_wave(
        self,
        queries: list[MultiVector | Query],
        plan: dict[str, Any],
        seeds: list[Any],
    ) -> tuple[list[SearchResult], SearchStats]:
        view = self.view()
        if view.num_segments == 0:
            return [_empty_result() for _ in queries], SearchStats()
        return view.graph_wave(
            queries,
            k=plan["k"],
            l=plan["l"],
            weights=plan["weights"],
            early_termination=plan["early_termination"],
            refine=plan["refine"],
            check_monotone=plan["check_monotone"],
            sparse_engine=plan.get("sparse_engine", "auto"),
            rngs=seeds,
        )

    def search_many(
        self, items: list[tuple[MultiVector | Query, dict[str, Any]]]
    ) -> list[tuple[str, Any]]:
        """Per-item outcomes: ``("ok", result)`` or ``("err", exc)``.

        The containment unit — one malformed request errors alone while
        its batch-mates still answer from this shard.
        """
        out: list[tuple[str, Any]] = []
        for query, plan in items:
            try:
                view = self.view()
                if view.num_segments == 0:
                    out.append(("ok", _empty_result()))
                else:
                    out.append(("ok", _view_search(view, query, plan)))
            except Exception as exc:
                out.append(("err", exc))
        return out

    def insert(
        self,
        mats: list[np.ndarray],
        ext_ids: np.ndarray,
        attr_arrays: dict[str, np.ndarray] | None,
        sparse_arrays: dict[str, np.ndarray] | None = None,
    ) -> int:
        attributes = (
            AttributeTable.from_arrays(attr_arrays) if attr_arrays else None
        )
        sparse = (
            SparseStore.from_arrays(sparse_arrays) if sparse_arrays else None
        )
        objects = MultiVectorSet(
            list(mats), attributes=attributes, sparse=sparse
        )
        self.seg.insert(objects, ext_ids=np.asarray(ext_ids, dtype=np.int64))
        self.epoch += 1
        return int(self.seg.num_active)

    def sparse_stats(self) -> SparseStats | None:
        """This shard's local sparse statistics (for the global sum)."""
        return self.seg.sparse_local_stats()

    def set_sparse_stats(self, stats: SparseStats) -> None:
        """Adopt the collection-global statistics broadcast by the front."""
        self.seg._restamp_sparse(stats)
        self.epoch += 1

    def delete_check(self, ids: np.ndarray) -> tuple[int, int, int]:
        """Pre-delete census: (ids found here, fresh kills, active now)."""
        ids = np.asarray(ids, dtype=np.int64)
        parts = [s.ext_ids for s in self.seg.sealed]
        if self.seg.delta.n:
            parts.append(self.seg.delta.ext_ids)
        known = (
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        )
        active = self.seg.active_ext_ids() if parts else np.zeros(0, np.int64)
        found = int(np.isin(ids, known).sum())
        fresh = int(np.isin(ids, active).sum())
        return found, fresh, int(self.seg.num_active)

    def delete(self, ids: np.ndarray) -> int:
        self.seg.mark_deleted(
            np.asarray(ids, dtype=np.int64), allow_empty=True
        )
        self.epoch += 1
        return int(self.seg.num_active)

    def compact(self) -> np.ndarray:
        survivors = self.seg.compact()
        self.epoch += 1
        return np.asarray(survivors, dtype=np.int64)

    def active_ids(self) -> np.ndarray:
        if self.seg.num_segments == 0:
            return np.zeros(0, dtype=np.int64)
        return self.seg.active_ext_ids()

    def census(self) -> dict[str, int]:
        return {
            "n": int(self.seg.num_total),
            "active": int(self.seg.num_active),
            "segments": int(self.seg.num_segments),
            "epoch": int(self.epoch),
        }


class _ShardWorker:
    """The per-process state machine: one shard slice of every collection."""

    def __init__(
        self,
        specs: dict[str, dict[str, Any] | None],
        meta: dict[str, Any],
    ):
        self.meta = meta
        shard = meta["shard"]
        n_shards = meta["n_shards"]
        self.collections = {
            name: _ShardCollection(
                specs.get(name),
                {**col_meta, "shard": shard, "n_shards": n_shards},
            )
            for name, col_meta in meta["collections"].items()
        }

    def col(self, name: str) -> _ShardCollection:
        collection = self.collections.get(name)
        if collection is None:
            raise ValueError(
                f"shard {self.meta['shard']} has no collection {name!r} "
                f"(knows {sorted(self.collections)})"
            )
        return collection

    def stats(self, busy_seconds: float) -> dict[str, Any]:
        per = {
            name: col.census()
            for name, col in sorted(self.collections.items())
        }
        return {
            "shard": self.meta["shard"],
            "busy_seconds": float(busy_seconds),
            "n": sum(c["n"] for c in per.values()),
            "active": sum(c["active"] for c in per.values()),
            "segments": sum(c["segments"] for c in per.values()),
            "epoch": sum(c["epoch"] for c in per.values()),
            "collections": per,
        }

    def close(self) -> None:
        for collection in self.collections.values():
            if collection.pack is not None:
                collection.pack.close()


def _worker_main(
    conn: Any,
    specs: dict[str, dict[str, Any] | None],
    meta: dict[str, Any],
) -> None:
    """Worker process entry: build the shard, then serve the pipe.

    Replies are ``("ok", payload)`` or ``("err", exception)``; command
    handling time accumulates into ``busy_seconds`` (reported by the
    ``stats`` command), which is the shard's critical-path compute
    clock — the scaling denominator the bench gates on.  It is measured
    with :func:`time.process_time` (CPU seconds of this worker), not
    wall clock: on a host with fewer cores than shards the workers
    timeshare, and wall time inside a descheduled worker would charge
    one shard for another's compute.

    Hot-path commands carry their collection name right after the
    command word (``("exact_wave", name, ...)``); ``stats`` and ``stop``
    are worker-wide.
    """
    try:
        worker = _ShardWorker(specs, meta)
    except BaseException as exc:  # noqa: BLE001 - must report boot failure
        try:
            conn.send(("err", RuntimeError(f"shard boot failed: {exc!r}")))
        finally:
            conn.close()
        return
    busy = 0.0
    conn.send(("ok", worker.stats(busy)))
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            cmd = msg[0]
            if cmd == "stop":
                conn.send(("ok", None))
                break
            started = time.process_time()
            try:
                if cmd == "exact_wave":
                    payload: Any = worker.col(msg[1]).exact_wave(*msg[2:])
                elif cmd == "graph_wave":
                    payload = worker.col(msg[1]).graph_wave(*msg[2:])
                elif cmd == "search_many":
                    payload = worker.col(msg[1]).search_many(msg[2])
                elif cmd == "insert":
                    payload = worker.col(msg[1]).insert(*msg[2:])
                elif cmd == "delete_check":
                    payload = worker.col(msg[1]).delete_check(msg[2])
                elif cmd == "delete":
                    payload = worker.col(msg[1]).delete(msg[2])
                elif cmd == "compact":
                    payload = worker.col(msg[1]).compact()
                elif cmd == "active_ids":
                    payload = worker.col(msg[1]).active_ids()
                elif cmd == "sparse_stats":
                    payload = worker.col(msg[1]).sparse_stats()
                elif cmd == "set_sparse_stats":
                    payload = worker.col(msg[1]).set_sparse_stats(msg[2])
                elif cmd == "stats":
                    payload = worker.stats(busy)
                else:
                    raise ValueError(f"unknown shard command {cmd!r}")
                reply = ("ok", payload)
            except Exception as exc:
                reply = ("err", exc)
            busy += time.process_time() - started
            conn.send(reply)
    finally:
        conn.close()
        worker.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _ShardHandle:
    def __init__(self, shard: int, process: Any, conn: Any) -> None:
        self.shard = shard
        self.process = process
        self.conn = conn
        self.alive = True
        self.active = 0


def _corpus_slices(
    must: "MUST",
) -> tuple[
    np.ndarray,
    list[np.ndarray],
    AttributeTable | None,
    SparseStore | None,
    int,
]:
    """The live corpus as flat arrays: (ext_ids, mats, attrs, sparse, next_ext).

    Rows come out sorted by external id, exact-tier (full-precision)
    vectors only — each shard re-applies its own compression at build,
    so sharding never compounds quantisation error.  The sparse lexical
    plane (when present) comes out stamped with corpus-global statistics
    so every shard slice keeps scoring against the whole-collection
    frequencies.
    """
    if must.is_segmented:
        segs = must.segments.searchable_segments()
        require(segs, "cannot shard an empty index")
        num_modalities = segs[0].space.num_modalities
        ext_parts: list[np.ndarray] = []
        mat_parts: list[list[np.ndarray]] = [
            [] for _ in range(num_modalities)
        ]
        attr_parts: list[AttributeTable] = []
        sparse_parts: list[SparseStore] = []
        contributing = 0
        for seg in segs:
            alive = (
                np.arange(seg.n)
                if seg.index.deleted is None
                else np.flatnonzero(~seg.index.deleted)
            )
            if alive.size == 0:
                continue
            contributing += 1
            ext_parts.append(seg.ext_ids[alive])
            attrs = seg.space.vectors.attributes
            if attrs is not None:
                attr_parts.append(attrs.subset(alive))
            seg_sparse = seg.space.vectors.sparse
            if seg_sparse is not None:
                sparse_parts.append(seg_sparse.subset(alive))
            for i in range(num_modalities):
                mat_parts[i].append(seg.space.vectors.exact_modality(i)[alive])
        require(ext_parts, "cannot shard an index with no live objects")
        ext = np.concatenate(ext_parts)
        order = np.argsort(ext)
        attributes = None
        if attr_parts:
            require(
                len(attr_parts) == contributing,
                "cannot shard: inconsistent attribute state across segments",
            )
            attributes = AttributeTable.concat(attr_parts).subset(order)
        sparse = None
        if sparse_parts:
            require(
                len(sparse_parts) == contributing,
                "cannot shard: inconsistent sparse state across segments",
            )
            sparse = SparseStore.concat(sparse_parts).subset(order)
            # Make the global stamp explicit: subset slices taken per
            # shard must never fall back to shard-local statistics.
            sparse = sparse.with_stats(sparse.stats)
        mats = [np.concatenate(parts)[order] for parts in mat_parts]
        return ext[order], mats, attributes, sparse, int(must.segments._next_ext)
    index = must.index
    alive = index.active_ids()
    require(alive.size, "cannot shard an index with no live objects")
    vectors = index.space.vectors
    mats = [
        vectors.exact_modality(i)[alive]
        for i in range(vectors.num_modalities)
    ]
    attributes = vectors.attributes
    if attributes is not None:
        attributes = attributes.subset(alive)
    sparse = vectors.sparse
    if sparse is not None:
        # Stamp before slicing: the shard slices keep scoring against
        # the whole corpus' statistics, exactly like the flat index.
        sparse = sparse.with_stats(sparse.stats).subset(alive)
    return alive.astype(np.int64), mats, attributes, sparse, int(index.n)


def _corpus_slices_mmap(
    must: "MUST",
) -> tuple[
    np.ndarray,
    np.ndarray,
    np.ndarray,
    list[list[str]],
    list[np.ndarray] | None,
    AttributeTable | None,
    SparseStore | None,
    int,
]:
    """Cold-tier *provenance* for an mmap-backed corpus.

    Instead of gathering the full-precision rows (O(corpus) bytes
    through shared memory), returns, sorted by external id::

        (ext_ids, src_of, row_of, sources, tail_mats, attrs, sparse,
        next_ext)

    where ``sources[s]`` is the path list of the ``s``-th memory-mapped
    cold plane and ``(src_of[j], row_of[j])`` addresses row ``j``'s
    exact vectors inside it.  Rows whose segment is still resident in
    the parent (the delta, or a dense segment) are gathered into
    ``tail_mats`` and addressed as source ``len(sources)`` — the only
    vector bytes that ever cross the process boundary.  The sparse
    plane (postings, not vectors — already O(nnz)) always rides shared
    memory, stamped with corpus-global statistics.
    """
    if must.is_segmented:
        segs = must.segments.searchable_segments()
        require(segs, "cannot shard an empty index")
        entries = [
            (seg.space.vectors, seg.ext_ids, seg.index.deleted) for seg in segs
        ]
        next_ext = int(must.segments._next_ext)
    else:
        index = must.index
        entries = [
            (
                index.space.vectors,
                np.arange(index.n, dtype=np.int64),
                index.deleted,
            )
        ]
        next_ext = int(index.n)
    num_modalities = entries[0][0].num_modalities
    sources: list[list[str]] = []
    ext_parts: list[np.ndarray] = []
    src_parts: list[np.ndarray] = []
    row_parts: list[np.ndarray] = []
    tail_parts: list[list[np.ndarray]] = [[] for _ in range(num_modalities)]
    tail_n = 0
    attr_parts: list[AttributeTable] = []
    sparse_parts: list[SparseStore] = []
    contributing = 0
    for vectors, ext_ids, deleted in entries:
        alive = (
            np.arange(ext_ids.size)
            if deleted is None
            else np.flatnonzero(~deleted)
        )
        if alive.size == 0:
            continue
        contributing += 1
        ext_parts.append(np.asarray(ext_ids, dtype=np.int64)[alive])
        attrs = vectors.attributes
        if attrs is not None:
            attr_parts.append(attrs.subset(alive))
        entry_sparse = vectors.sparse
        if entry_sparse is not None:
            sparse_parts.append(entry_sparse.subset(alive))
        plane = vectors.store.cold_plane
        if isinstance(plane, MmapPlane):
            src_parts.append(np.full(alive.size, len(sources), dtype=np.int64))
            row_parts.append(alive.astype(np.int64))
            sources.append([str(p) for p in plane.paths])
        else:
            # Tail sentinel; renumbered to len(sources) once the source
            # count is final.
            src_parts.append(np.full(alive.size, -1, dtype=np.int64))
            row_parts.append(np.arange(tail_n, tail_n + alive.size, dtype=np.int64))
            tail_n += alive.size
            for i in range(num_modalities):
                tail_parts[i].append(vectors.exact_modality(i)[alive])
    require(ext_parts, "cannot shard an index with no live objects")
    ext = np.concatenate(ext_parts)
    order = np.argsort(ext)
    src_of = np.concatenate(src_parts)[order]
    src_of[src_of < 0] = len(sources)
    row_of = np.concatenate(row_parts)[order]
    tail_mats = (
        [np.ascontiguousarray(np.concatenate(p)) for p in tail_parts]
        if tail_n
        else None
    )
    attributes = None
    if attr_parts:
        require(
            len(attr_parts) == contributing,
            "cannot shard: inconsistent attribute state across segments",
        )
        attributes = AttributeTable.concat(attr_parts).subset(order)
    sparse = None
    if sparse_parts:
        require(
            len(sparse_parts) == contributing,
            "cannot shard: inconsistent sparse state across segments",
        )
        sparse = SparseStore.concat(sparse_parts).subset(order)
        sparse = sparse.with_stats(sparse.stats)
    return (
        ext[order], src_of, row_of, sources, tail_mats, attributes, sparse,
        next_ext,
    )


class ShardedService(MustService):
    """N-process sharded serving over built :class:`MUST` instances.

    Reuses the :class:`MustService` control plane — queue, admission,
    per-tenant quotas, coalescing dispatcher, plan grouping, stats —
    and replaces the group executors with scatter/gather over worker
    processes.  See the module docstring for the data plane and parity
    argument.  Construct with one built instance (the ``"default"``
    collection) or a :class:`~repro.service.CollectionManager`; each
    worker then holds one shard slice per collection.

    The wrapped instances are *spawn templates*: their live corpora are
    partitioned at construction and all subsequent writes must go
    through the service (they route to the owning shard); the templates
    themselves are not kept in sync.

    ``worker_timeout_s`` bounds how long a gather waits on one shard
    before declaring it dead.  ``mp_start`` picks the multiprocessing
    start method (default: ``fork`` where available, else ``spawn``;
    override with env ``REPRO_MP_START``).
    """

    def __init__(
        self,
        must: "MUST | CollectionManager",
        n_shards: int = 2,
        config: ServiceConfig | None = None,
        start: bool = True,
        worker_timeout_s: float = 120.0,
        spawn_timeout_s: float = 600.0,
        mp_start: str | None = None,
    ) -> None:
        require(n_shards >= 1, "n_shards must be positive")
        manager = CollectionManager.of(must)
        require(
            len(manager) >= 1,
            "ShardedService needs at least one collection — "
            "CollectionManager.create() one first",
        )
        for collection in manager:
            require(
                collection.must.is_built,
                f"ShardedService needs built indexes — collection "
                f"{collection.name!r} is unbuilt; call MUST.build() first",
            )
        require(worker_timeout_s > 0.0, "worker_timeout_s must be positive")
        self.n_shards = int(n_shards)
        self.worker_timeout_s = float(worker_timeout_s)
        method = mp_start or os.environ.get("REPRO_MP_START")
        if method is None:
            method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(method)
        #: one lock for all pipe traffic: the dispatcher thread and
        #: writer threads never interleave commands on a worker pipe.
        #: Workers still overlap *within* a gather (all requests are
        #: sent before any reply is awaited) — that is where the
        #: multi-core speedup comes from.
        self._pipes_lock = threading.RLock()
        self._handles: list[_ShardHandle] = []
        self._workers_stopped = False
        # Spawn before the dispatcher thread exists: forking a process
        # while other threads hold locks is the classic fork-safety trap.
        self._spawn_workers(manager, float(spawn_timeout_s))
        super().__init__(manager, config, start=start)

    # ------------------------------------------------------------------
    # Spawn
    # ------------------------------------------------------------------
    def _collection_meta_arrays(
        self, must: "MUST", name: str
    ) -> tuple[dict[str, Any], list[dict[str, Any] | None]]:
        """One collection's worker meta + its per-shard shm array dicts.

        Returns ``(meta, shard_arrays)`` where ``shard_arrays[s]`` is
        the array dict shard ``s``'s pack carries for this collection
        (``None`` when the shard owns no rows of it).
        """
        cold_storage = (
            must.segments.cold_storage
            if must.is_segmented
            else getattr(must, "cold_storage", "resident")
        )
        mmap_mode = cold_storage == "mmap"
        if mmap_mode:
            (
                ext, src_of, row_of, cold_sources, tail_mats, attributes,
                sparse_all, next_ext,
            ) = _corpus_slices_mmap(must)
            mats = None
        else:
            ext, mats, attributes, sparse_all, next_ext = _corpus_slices(must)
            src_of = row_of = None
            cold_sources, tail_mats = [], None
        self._next_ext[name] = next_ext
        self._has_sparse[name] = sparse_all is not None
        if must.is_segmented:
            src = must.segments
            meta = dict(
                builder=src.builder,
                policy=src.policy,
                hnsw=src.hnsw,
                seed=src.seed,
                compression=src.compression,
                store_options=src.store_options,
            )
        else:
            meta = dict(
                builder=must.builder,
                policy=must.segment_policy,
                hnsw=None,
                seed=0,
                compression=must.compression,
                store_options=must.store_options,
            )
        meta.update(
            squared_weights=[float(x) for x in must.weights.squared],
            num_modalities=len(must.weights.squared),
        )
        if mmap_mode:
            meta.update(cold_storage="mmap", cold_sources=cold_sources)
        owners = ext % self.n_shards
        shard_arrays: list[dict[str, Any] | None] = []
        for shard in range(self.n_shards):
            rows = np.flatnonzero(owners == shard)
            if rows.size == 0:
                shard_arrays.append(None)
                continue
            if mmap_mode:
                # O(hot): ids, attributes and the (source, row)
                # cold map — never a full vector plane.  Tail
                # rows (resident in the parent) ride along
                # renumbered to the shard-local tail source.
                assert src_of is not None and row_of is not None
                arrays: dict[str, Any] = {"ext_ids": ext[rows]}
                shard_src = src_of[rows].copy()
                shard_row = row_of[rows].copy()
                tmask = shard_src == len(cold_sources)
                if tmask.any():
                    sel = shard_row[tmask]
                    assert tail_mats is not None
                    for i, tmat in enumerate(tail_mats):
                        arrays[f"tail_mod_{i}"] = tmat[sel]
                    shard_row[tmask] = np.arange(
                        int(tmask.sum()), dtype=np.int64
                    )
                arrays["cold_src"] = shard_src
                arrays["cold_row"] = shard_row
            else:
                assert mats is not None
                arrays = {
                    f"mod_{i}": mat[rows] for i, mat in enumerate(mats)
                }
                arrays["ext_ids"] = ext[rows]
            if attributes is not None:
                arrays.update(attributes.subset(rows).to_arrays())
            if sparse_all is not None:
                # subset keeps the collection-global stamp; to_arrays
                # persists it, so the shard scores corpus-wide stats.
                arrays.update(sparse_all.subset(rows).to_arrays())
            shard_arrays.append(arrays)
        return meta, shard_arrays

    def _spawn_workers(
        self, manager: CollectionManager, spawn_timeout_s: float
    ) -> None:
        self._next_ext: dict[str, int] = {}
        self._has_sparse: dict[str, bool] = {}
        meta_cols: dict[str, dict[str, Any]] = {}
        arrays_by_col: dict[str, list[dict[str, Any] | None]] = {}
        for collection in manager:
            meta, shard_arrays = self._collection_meta_arrays(
                collection.must, collection.name
            )
            meta_cols[collection.name] = meta
            arrays_by_col[collection.name] = shard_arrays
        packs: list[SharedArrays | None] = []
        try:
            for shard in range(self.n_shards):
                specs: dict[str, dict[str, Any] | None] = {}
                for name, shard_arrays in arrays_by_col.items():
                    arrays = shard_arrays[shard]
                    if arrays is None:
                        specs[name] = None
                        continue
                    pack = SharedArrays.create(arrays)
                    packs.append(pack)
                    specs[name] = pack.spec
                meta = {
                    "shard": shard,
                    "n_shards": self.n_shards,
                    "collections": meta_cols,
                }
                parent_conn, child_conn = self._ctx.Pipe()
                process = self._ctx.Process(
                    target=_worker_main,
                    args=(child_conn, specs, meta),
                    name=f"must-shard-{shard}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._handles.append(_ShardHandle(shard, process, parent_conn))
            for handle in self._handles:
                if not handle.conn.poll(spawn_timeout_s):
                    raise ShardFailed(
                        f"shard {handle.shard} did not come up within "
                        f"{spawn_timeout_s:.0f}s"
                    )
                status, payload = handle.conn.recv()
                if status != "ok":
                    raise payload
                handle.active = int(payload["active"])
        except BaseException:
            self._stop_workers(force=True)
            raise
        finally:
            # Every worker has attached (or spawn failed): drop the
            # parent mappings and unlink — the blocks now live exactly
            # as long as the worker processes mapping them.  Unlink even
            # if close() raises, and finish the loop even if one pack
            # fails: a worker that died before its ready-ack must not
            # leave /dev/shm segments behind.
            self.spawn_shm_bytes = sum(
                pack.nbytes for pack in packs if pack is not None
            )
            for pack in packs:
                if pack is None:
                    continue
                try:
                    pack.close()
                except Exception:
                    pass
                try:
                    pack.unlink()
                except Exception:
                    pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_shards(self) -> list[int]:
        return [h.shard for h in self._handles if h.alive]

    @property
    def degraded(self) -> bool:
        """True once any worker has been declared dead."""
        return any(not h.alive for h in self._handles)

    def _snapshot_of(self, collection: Collection) -> IndexSnapshot | None:
        """Sharded reads have no parent-side snapshot.

        Isolation lives in the workers: each holds a frozen
        per-epoch :class:`~repro.index.segments.SegmentView` of its
        slice of the collection, refreshed when a routed write bumps
        its epoch.  The dispatcher's per-wave capture is therefore a
        no-op token here.
        """
        return None

    def shard_stats(self) -> list[dict[str, Any]]:
        """One stats dict per live shard (worker-side census).

        Includes ``busy_seconds`` — the shard's cumulative command
        handling time, i.e. its critical-path compute clock — plus a
        ``collections`` breakdown mapping each collection name to its
        per-shard ``{n, active, segments, epoch}`` census.  The
        top-level ``n``/``active``/``segments``/``epoch`` keys stay
        whole-worker aggregates.
        """
        replies = self._gather(
            {s: (("stats",), 0) for s in self.live_shards}
        )
        out: list[dict[str, Any]] = []
        for shard in sorted(replies):
            reply = replies[shard]
            if isinstance(reply, tuple) and reply[0] == "ok":
                out.append(reply[1])
        return out

    def active_ids(self, collection: str | None = None) -> np.ndarray:
        name = self.collections.get(collection).name
        replies = self._gather(
            {s: (("active_ids", name), 0) for s in self.live_shards}
        )
        parts = []
        for shard, reply in sorted(replies.items()):
            if isinstance(reply, Exception):
                raise reply
            status, payload = reply
            if status != "ok":
                raise payload
            parts.append(np.asarray(payload, dtype=np.int64))
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    # ------------------------------------------------------------------
    # Scatter / gather
    # ------------------------------------------------------------------
    def _mark_dead(self, handle: _ShardHandle) -> None:
        if not handle.alive:
            return
        handle.alive = False
        self.stats.record_shard_lost(handle.shard)
        try:
            handle.process.terminate()
        except Exception:
            pass
        try:
            handle.conn.close()
        except Exception:
            pass

    def _gather(
        self, messages: dict[int, tuple[tuple[Any, ...], int]]
    ) -> dict[int, Any]:
        """Send one command per shard, then collect every reply.

        ``messages`` maps shard → ``(command_tuple, size)`` where size
        is the number of queries carried (for the per-shard histogram).
        Returns shard → ``("ok", payload)`` / ``("err", exc)`` from the
        worker, or a :class:`ShardFailed` when the worker is (or is
        declared) dead.  All sends complete before any reply is awaited,
        so live workers compute concurrently.
        """
        out: dict[int, object] = {}
        with self._pipes_lock:
            sent: list[tuple[_ShardHandle, float, int]] = []
            for shard, (command, size) in sorted(messages.items()):
                handle = self._handles[shard]
                if not handle.alive:
                    out[shard] = ShardFailed(f"shard {shard} is down")
                    continue
                try:
                    handle.conn.send(command)
                except Exception:
                    self._mark_dead(handle)
                    out[shard] = ShardFailed(
                        f"shard {shard} died (send failed)"
                    )
                    continue
                sent.append((handle, time.perf_counter(), size))
            for handle, started, size in sent:
                try:
                    if not handle.conn.poll(self.worker_timeout_s):
                        raise TimeoutError(
                            f"no reply within {self.worker_timeout_s:.0f}s"
                        )
                    reply = handle.conn.recv()
                except Exception as exc:
                    self._mark_dead(handle)
                    out[handle.shard] = ShardFailed(
                        f"shard {handle.shard} died mid-wave ({exc!r})"
                    )
                    continue
                self.stats.record_shard_wave(
                    handle.shard, time.perf_counter() - started, size
                )
                out[handle.shard] = reply
        return out

    def _shard_seeds(self, rng: Any) -> list[Any]:
        """One independent seed per shard for one request's init draws.

        Mirrors the per-segment spawning of the single-process view one
        level up: the request's seed spawns a child per shard, each
        worker spawns per-segment grandchildren from its child — so a
        request's answer is deterministic for a fixed shard count and
        never depends on its wave-mates.  A live Generator (legacy) is
        copied to every shard via pickling.
        """
        if isinstance(rng, np.random.Generator):
            return [rng] * self.n_shards
        return spawn_seed_sequences(rng, self.n_shards)

    # ------------------------------------------------------------------
    # Group executors (called by the inherited dispatcher)
    # ------------------------------------------------------------------
    def _run_exact(
        self, snap: IndexSnapshot | None, reqs: list[_Request]
    ) -> None:
        plan = reqs[0].kwargs
        name = reqs[0].collection.name
        queries = [r.query for r in reqs]
        command = (
            "exact_wave",
            name,
            queries,
            plan["k"],
            plan["weights"],
            plan["refine"],
            self.config.exact_margin,
            plan.get("sparse_engine", "auto"),
        )
        replies = self._gather(
            {s: (command, len(queries)) for s in self.live_shards}
        )
        self._finish_group(reqs, replies, plan, wave_stats_slot=None)

    def _run_graph_wave(
        self, snap: IndexSnapshot | None, reqs: list[_Request]
    ) -> None:
        plan = reqs[0].kwargs
        name = reqs[0].collection.name
        queries = [r.query for r in reqs]
        seeds = [self._shard_seeds(r.kwargs["rng"]) for r in reqs]
        group_plan = {
            key: plan[key]
            for key in (
                "k", "l", "weights", "early_termination", "refine",
                "check_monotone", "sparse_engine",
            )
        }
        replies = self._gather(
            {
                s: (
                    (
                        "graph_wave",
                        name,
                        queries,
                        group_plan,
                        [per_req[s] for per_req in seeds],
                    ),
                    len(queries),
                )
                for s in self.live_shards
            }
        )
        self._finish_group(reqs, replies, plan, wave_stats_slot=1)

    def _run_graph(
        self, snap: IndexSnapshot | None, reqs: list[_Request]
    ) -> None:
        """Per-query graph requests: one ``search_many`` per shard.

        Each request gets its own per-shard seed child (like the wave
        path) and its own per-item outcome, so a malformed request fails
        through its own future while batch-mates still merge — the same
        containment the in-process dispatcher guarantees.
        """
        seeds = [self._shard_seeds(r.kwargs["rng"]) for r in reqs]
        name = reqs[0].collection.name
        messages: dict[int, tuple[tuple[Any, ...], int]] = {}
        for shard in self.live_shards:
            items = []
            for req, per_req in zip(reqs, seeds):
                plan = dict(req.kwargs)
                plan["rng"] = per_req[shard]
                items.append((req.query, plan))
            messages[shard] = (("search_many", name, items), len(items))
        replies = self._gather(messages)
        dead = [r for r in replies.values() if isinstance(r, Exception)]
        for j, req in enumerate(reqs):
            if dead:
                self._resolve(req, dead[0])
                continue
            parts: list[tuple[np.ndarray, np.ndarray]] = []
            stats: list[SearchStats] = []
            error: Exception | None = None
            for shard in sorted(replies):
                status, payload = replies[shard]
                if status != "ok":
                    error = payload
                    break
                item_status, item_payload = payload[j]
                if item_status != "ok":
                    error = item_payload
                    break
                parts.append((item_payload.ids, item_payload.similarities))
                stats.append(item_payload.stats)
            if error is not None:
                self._resolve(req, error)
                continue
            ids, sims = _merge_candidates(
                parts, _resolved_k(req.query, req.kwargs["k"])
            )
            self._resolve(
                req,
                SearchResult(
                    ids=ids,
                    similarities=sims,
                    stats=SearchStats.aggregate(stats),
                ),
            )

    def _finish_group(
        self,
        reqs: list[_Request],
        replies: dict[int, Any],
        plan: dict[str, Any],
        wave_stats_slot: int | None,
    ) -> None:
        """Merge per-shard pools into per-request answers.

        * a dead shard fails every request of this group individually
          (:class:`ShardFailed` through each future — later groups and
          waves continue on the survivors);
        * a worker-side *error* (one request's malformed filter, say)
          triggers the per-request containment retry, so only the
          offending future errors;
        * otherwise each request's per-shard pools merge by
          ``(-similarity, external id)`` — the exact path's bit-parity
          merge.
        """
        dead = [r for r in replies.values() if isinstance(r, Exception)]
        errors = [
            r[1]
            for r in replies.values()
            if isinstance(r, tuple) and r[0] == "err"
        ]
        if dead:
            for req in reqs:
                self._resolve(req, dead[0])
            return
        if errors:
            self._retry_individually(reqs)
            return
        batch_stats: list[SearchStats] = []
        per_shard_results: list[Any] = []
        for shard in sorted(replies):
            payload = replies[shard][1]
            if wave_stats_slot is None:
                per_shard_results.append(payload)
            else:
                per_shard_results.append(payload[0])
                batch_stats.append(payload[wave_stats_slot])
        total = None
        if batch_stats:
            total = SearchStats.aggregate(batch_stats)
            self.stats.record_graph_wave(total.waves, total.frontier_sizes)
        for j, req in enumerate(reqs):
            parts = [
                (results[j].ids, results[j].similarities)
                for results in per_shard_results
            ]
            ids, sims = _merge_candidates(
                parts, _resolved_k(req.query, plan["k"])
            )
            stats = SearchStats.aggregate(
                [results[j].stats for results in per_shard_results]
            )
            if total is not None:
                # Mirror the in-process wave path: each result also
                # carries the batch-level traversal trace.
                stats.merge(total)
            self._resolve(
                req, SearchResult(ids=ids, similarities=sims, stats=stats)
            )

    def _retry_individually(self, reqs: list[_Request]) -> None:
        """Containment: rerun a failed group one request at a time."""
        self._run_graph(None, reqs)

    # ------------------------------------------------------------------
    # Write path — routed by external id to the owning shard
    # ------------------------------------------------------------------
    def insert(
        self, objects: Any, collection: str | None = None
    ) -> np.ndarray:
        """Insert under parent-allocated global ids, routed per shard."""
        col = self.collections.get(collection)
        if isinstance(objects, MultiVector):
            require(
                all(v is not None for v in objects.vectors),
                "inserted objects must carry every modality",
            )
            objects = MultiVectorSet([v[None, :] for v in objects.vectors])
        require(objects.n >= 1, "nothing to insert")
        with self._write_lock:
            next_ext = self._next_ext[col.name]
            ext = np.arange(next_ext, next_ext + objects.n, dtype=np.int64)
            owners = ext % self.n_shards
            mats = [np.asarray(m) for m in objects.matrices]
            messages: dict[int, tuple[tuple[Any, ...], int]] = {}
            for shard in range(self.n_shards):
                rows = np.flatnonzero(owners == shard)
                if rows.size == 0:
                    continue
                attr_arrays = None
                if objects.attributes is not None:
                    attr_arrays = objects.attributes.subset(rows).to_arrays()
                sparse_arrays = None
                if objects.sparse is not None:
                    sparse_arrays = objects.sparse.subset(rows).to_arrays()
                command = (
                    "insert",
                    col.name,
                    [np.ascontiguousarray(m[rows]) for m in mats],
                    ext[rows],
                    attr_arrays,
                    sparse_arrays,
                )
                messages[shard] = (command, int(rows.size))
            replies = self._gather(messages)
            self._raise_write_failures("insert", replies)
            self._next_ext[col.name] += objects.n
            if objects.sparse is not None:
                self._has_sparse[col.name] = True
            if self._has_sparse.get(col.name):
                self._sync_sparse_stats(col.name)
            col.epoch += 1
            return ext

    def mark_deleted(
        self, object_ids: np.ndarray, collection: str | None = None
    ) -> None:
        """Soft-delete globally, enforcing the whole-collection guards.

        Two phases: a census gather validates that every id exists
        somewhere and that at least one object survives across the
        collection (one *shard* may legitimately empty out), then the
        delete scatters to the owning shards with the per-shard guard
        relaxed.
        """
        col = self.collections.get(collection)
        ids = np.unique(np.asarray(object_ids, dtype=np.int64))
        with self._write_lock:
            owners = ids % self.n_shards
            targets = {
                shard: ids[owners == shard]
                for shard in range(self.n_shards)
                if np.any(owners == shard)
            }
            census = self._gather(
                {
                    s: (("delete_check", col.name, ids_s), 0)
                    for s, ids_s in targets.items()
                }
            )
            self._raise_write_failures("mark_deleted", census)
            found = sum(census[s][1][0] for s in census)
            fresh = sum(census[s][1][1] for s in census)
            active = self._total_active(col.name)
            require(found == ids.size, "unknown external ids in mark_deleted")
            require(active - fresh > 0, "cannot delete every object")
            replies = self._gather(
                {
                    s: (("delete", col.name, ids_s), 0)
                    for s, ids_s in targets.items()
                }
            )
            self._raise_write_failures("mark_deleted", replies)
            col.epoch += 1

    def compact(
        self, collection: str | None = None
    ) -> "tuple[MUST, np.ndarray]":
        """Compact one collection's shards in place.

        Signature mirrors :meth:`MustService.compact`; the template
        instance is returned unchanged (shards own the data), and
        ``active`` is the collection's globally sorted surviving id
        array.
        """
        col = self.collections.get(collection)
        with self._write_lock:
            replies = self._gather(
                {s: (("compact", col.name), 0) for s in self.live_shards}
            )
            self._raise_write_failures("compact", replies)
            parts = [
                np.asarray(replies[s][1], dtype=np.int64)
                for s in sorted(replies)
            ]
            if self._has_sparse.get(col.name):
                # Compaction dropped the soft-deleted rows, so the
                # collection-global frequencies changed on every shard.
                self._sync_sparse_stats(col.name)
            col.epoch += 1
            active = (
                np.sort(np.concatenate(parts))
                if parts
                else np.zeros(0, dtype=np.int64)
            )
            return col.must, active

    def _sync_sparse_stats(self, name: str) -> None:
        """Re-establish collection-global sparse statistics on every shard.

        Gather each live shard's local counts, sum them (exact in
        float64 with integer term frequencies), and broadcast the total
        back so every shard's BM25/TF-IDF scores use whole-collection
        document frequencies — the two-phase analogue of the in-process
        :meth:`SegmentedIndex._restamp_sparse`.  Callers hold the write
        lock, so no wave observes a half-stamped collection.
        """
        replies = self._gather(
            {s: (("sparse_stats", name), 0) for s in self.live_shards}
        )
        self._raise_write_failures("sparse_stats", replies)
        parts = [
            replies[s][1] for s in sorted(replies)
            if replies[s][1] is not None
        ]
        if not parts:
            return
        total = sum_stats(parts)
        replies = self._gather(
            {
                s: (("set_sparse_stats", name, total), 0)
                for s in self.live_shards
            }
        )
        self._raise_write_failures("set_sparse_stats", replies)

    def _total_active(self, name: str) -> int:
        replies = self._gather(
            {s: (("stats",), 0) for s in self.live_shards}
        )
        self._raise_write_failures("stats", replies)
        return sum(
            replies[s][1]["collections"][name]["active"] for s in replies
        )

    @staticmethod
    def _raise_write_failures(op: str, replies: dict[int, Any]) -> None:
        for shard in sorted(replies):
            reply = replies[shard]
            if isinstance(reply, Exception):
                raise ShardFailed(f"{op} failed: shard {shard} is down")
            status, payload = reply
            if status != "ok":
                raise payload

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _stop_workers(self, force: bool = False) -> None:
        if self._workers_stopped:
            return
        self._workers_stopped = True
        for handle in self._handles:
            if not handle.alive:
                continue
            if not force:
                try:
                    with self._pipes_lock:
                        handle.conn.send(("stop",))
                        handle.conn.poll(5.0)
                except Exception:
                    pass
            try:
                handle.process.terminate()
            except Exception:
                pass
        for handle in self._handles:
            try:
                handle.process.join(5.0)
            except Exception:
                pass
            try:
                handle.conn.close()
            except Exception:
                pass
            handle.alive = False

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain the dispatcher, then stop every worker process."""
        super().close(timeout)
        self._stop_workers()
