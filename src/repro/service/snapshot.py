"""Immutable read views of a :class:`~repro.core.framework.MUST` index.

:class:`IndexSnapshot` is the unit of snapshot isolation in the serving
layer: the dispatcher captures one at the head of every wave, and every
search in that wave runs against it lock-free while inserts, deletes,
and compactions keep mutating the live index.  Two flavours, matching
the two states a framework instance can be in:

* **segmented** — wraps :meth:`SegmentedIndex.snapshot`, a frozen
  :class:`~repro.index.segments.SegmentView` (copied §IX bitsets,
  detached containers; vectors shared copy-on-write).  Searches are
  bit-identical to what ``MUST.search`` answered at capture time, on
  both the graph and the exact path.
* **single-graph** — a not-yet-segmented instance.  The built graph is
  immutable apart from its deletion bitset, so the snapshot re-wraps it
  around a copy; the exact path keeps the legacy full-precision scan
  over ``MUST.space`` (compression never touches it), again matching
  ``MUST.search`` bit for bit.

Snapshots are cheap (no vector data is copied) and plain objects —
holding one pins the captured arrays in memory but costs nothing else.
Capturing must be serialised with writers (the service takes its write
lock); once captured, a snapshot is safe to read from any number of
threads.

Memory-mapped cold tiers need no special casing here: the share-not-copy
capture (``dataclasses.replace`` / ``SegmentedIndex.snapshot``) keeps the
*same* :class:`~repro.store.MmapPlane` objects across epochs, so every
snapshot reads the cold files through one pinned mapping — page-cache
pages are shared copy-on-write between all live epochs, and a compaction
that retires a segment's files first pins their mappings (POSIX keeps an
unlinked inode readable through open maps) so older snapshots keep
answering bit-identically until they are garbage collected.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

from repro.core.multivector import MultiVector
from repro.core.query import Query, SearchOptions, as_query, compile_filter
from repro.core.results import SearchResult, SearchStats
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.index.base import GraphIndex
from repro.index.flat import FlatIndex
from repro.index.search import joint_search
from repro.index.segments import SegmentView
from repro.utils.validation import require

if TYPE_CHECKING:
    from repro.core.framework import MUST

__all__ = ["IndexSnapshot"]


class IndexSnapshot:
    """One frozen, searchable state of a framework instance.

    Construct via :meth:`of` (or :meth:`MUST.snapshot`).  The search
    API mirrors :meth:`MUST.search`, so for any request the snapshot
    answers exactly what the live instance would have answered at
    capture time — the parity contract the serving layer's tests pin
    down bit for bit.
    """

    def __init__(
        self,
        view: SegmentView | None = None,
        graph: GraphIndex | None = None,
        exact_space: JointSpace | None = None,
    ) -> None:
        require(
            (view is None) != (graph is None),
            "a snapshot wraps either a segment view or a single graph",
        )
        require(
            graph is None or exact_space is not None,
            "single-graph snapshots need the exact-scan space",
        )
        self.view = view
        self.graph = graph
        self.exact_space = exact_space

    @classmethod
    def of(cls, must: "MUST") -> "IndexSnapshot":
        """Capture the current state of *must* (which must be built)."""
        require(
            must.is_built,
            "cannot snapshot an unbuilt index — call build() first",
        )
        if must.is_segmented:
            return cls(view=must.segments.snapshot())
        index = must.index
        frozen = dataclasses.replace(
            index,
            deleted=None if index.deleted is None else index.deleted.copy(),
        )
        return cls(graph=frozen, exact_space=must.space)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_segmented(self) -> bool:
        return self.view is not None

    def _graph(self) -> GraphIndex:
        """The single-graph flavour's index (constructor invariant)."""
        assert self.graph is not None
        return self.graph

    def _exact_space(self) -> JointSpace:
        """The single-graph flavour's exact-scan space."""
        assert self.exact_space is not None
        return self.exact_space

    @property
    def num_active(self) -> int:
        if self.view is not None:
            return int(self.view.num_active)
        return int(self._graph().num_active)

    @property
    def n(self) -> int:
        if self.view is not None:
            return int(self.view.num_total)
        return int(self._graph().n)

    def prepare(self) -> None:
        """Materialise lazy per-space artifacts (concat matrices) so a
        thread pool reading this snapshot never races to build them."""
        if self.view is not None:
            self.view.prepare_search()
            return
        if not self._graph().space.is_compressed:
            self._graph().space.concatenated
        if not self._exact_space().is_compressed:
            self._exact_space().concatenated

    # ------------------------------------------------------------------
    # Searching — mirrors MUST.search argument for argument
    # ------------------------------------------------------------------
    def search(
        self,
        query: MultiVector | Query,
        k: int = 10,
        l: int = 100,
        weights: Weights | None = None,
        early_termination: bool = False,
        exact: bool = False,
        refine: int | None = None,
        engine: str = "auto",
        sparse_engine: str = "auto",
        **search_kwargs: Any,
    ) -> SearchResult:
        """Joint top-*k* against the captured state.

        Same signature and same arithmetic as :meth:`MUST.search` —
        including the graph path's ``rng`` handling via
        ``search_kwargs`` — so results are bit-identical to the live
        instance at capture time.  Typed :class:`Query` objects pass
        straight through (per-query weights/filter/k), and
        :meth:`query` is the options-native equivalent.

        ``engine="auto"`` resolves to the per-query heap engine (a
        snapshot read is a single query, so the historical bits are
        preserved); an explicit ``engine="wave"`` runs the lockstep
        engine as a batch of one — bit-identical to the same query
        inside any coalesced wave, by the engine's composition
        independence.
        """
        if (
            self.view is None
            and not exact
            and as_query(query).sparse is not None
        ):
            # Single-graph hybrid: the wave engine has no sparse term,
            # so the query routes through the per-query union-rescore
            # path under its own rng (the same routing MUST.query does).
            search_kwargs.pop("check_monotone", None)
            return self._hybrid_one(
                as_query(query), k, l, weights, early_termination,
                sparse_engine, **search_kwargs,
            )
        if engine == "wave" and not exact:
            rngs = [search_kwargs.pop("rng", 0)]
            check_monotone = bool(search_kwargs.pop("check_monotone", False))
            results, wave_stats = self.graph_wave(
                [query],
                k=k,
                l=l,
                weights=weights,
                early_termination=early_termination,
                refine=refine,
                check_monotone=check_monotone,
                rngs=rngs,
                sparse_engine=sparse_engine,
            )
            results[0].stats.merge(wave_stats)
            return results[0]
        engine = "heap" if engine == "auto" else engine
        if self.view is not None:
            if exact:
                return self.view.exact_search(
                    query, k, weights=weights, refine=refine,
                    sparse_engine=sparse_engine,
                )
            return self.view.search(
                query,
                k=k,
                l=l,
                weights=weights,
                early_termination=early_termination,
                refine=refine,
                engine=engine,
                sparse_engine=sparse_engine,
                **search_kwargs,
            )
        if exact:
            return self._flat().search(
                query, k, weights=weights, refine=refine,
                sparse_engine=sparse_engine,
            )
        return joint_search(
            self._graph(),
            query,
            k=k,
            l=min(l, self._graph().n),
            weights=weights,
            early_termination=early_termination,
            refine=refine,
            engine=engine,
            **search_kwargs,
        )

    def _hybrid_one(
        self,
        typed: Query,
        k: int,
        l: int,
        weights: Weights | None,
        early_termination: bool,
        sparse_engine: str,
        rng: Any = 0,
        **search_kwargs: Any,
    ) -> SearchResult:
        """One hybrid query on a single-graph snapshot: dense graph
        candidates unioned with the sparse engine's own, exact-rescored
        under the combined metric — the same arithmetic as
        :meth:`MUST._hybrid_graph_one`, so snapshot reads match the
        live instance bit for bit."""
        import dataclasses as _dc

        from repro.sparse.hybrid import hybrid_union_rescore

        index = self._graph()
        k_eff = typed.resolve_k(k)
        # Same l clamp as SearchOptions.resolve (floor at the wave-level
        # k), so the dense candidate pool matches MUST.query exactly.
        lc = max(min(l, index.n), k)
        pool = min(lc, index.num_active)
        dense = joint_search(
            index,
            typed if typed.k is None else _dc.replace(typed, k=None),
            k=pool,
            l=lc,
            weights=weights,
            early_termination=early_termination,
            engine="heap",
            rng=rng,
            **search_kwargs,
        )
        mask = None
        if index.deleted is not None:
            mask = ~index.deleted
        if typed.filter is not None:
            fmask = compile_filter(
                typed.filter, index.space.vectors.attributes
            )
            mask = fmask if mask is None else mask & fmask
        ids, sims = hybrid_union_rescore(
            index.space,
            typed,
            dense.ids,
            min(k_eff, index.num_active),
            admissible=mask,
            weights=typed.resolve_weights(weights),
            engine=sparse_engine,
            stats=dense.stats,
        )
        return SearchResult(ids=ids, similarities=sims, stats=dense.stats)

    def query(
        self,
        query: MultiVector | Query,
        options: SearchOptions | None = None,
    ) -> SearchResult:
        """One typed query against the captured state.

        Mirrors :meth:`MUST.query` for a single request.  The kwargs
        are derived from the option fields (``n_jobs`` excepted — a
        snapshot read is single-query; ``collection`` too — routing is
        the service's concern, a snapshot *is* one collection's state),
        so a new :class:`SearchOptions` field can never be silently
        dropped on this path.
        """
        opts = options if options is not None else SearchOptions()
        return self.search(
            query, **opts.to_kwargs(exclude=("n_jobs", "collection"))
        )

    def _flat(self) -> FlatIndex:
        """The legacy exact scanner over the frozen bitset."""
        return FlatIndex(self._exact_space(), deleted=self._graph().deleted)

    def graph_wave(
        self,
        queries: "list[MultiVector | Query]",
        k: int = 10,
        l: int = 100,
        weights: Weights | None = None,
        early_termination: bool = False,
        refine: int | None = None,
        check_monotone: bool = False,
        rng: Any = 0,
        rngs: list[Any] | None = None,
        sparse_engine: str = "auto",
    ) -> "tuple[list[SearchResult], SearchStats]":
        """Coalesced graph batch — the serving layer's lockstep wave.

        One :func:`~repro.index.graph_wave.graph_wave_search` traversal
        per segment (or one for a single-graph snapshot) carries every
        request that shares this plan; ``rngs`` keeps each request's own
        init seed, so an answer is bit-identical to the same request
        dispatched alone with ``engine="wave"`` (composition
        independence).  Returns ``(results, wave_stats)``.
        """
        if self.view is not None:
            return self.view.graph_wave(
                queries,
                k=k,
                l=l,
                weights=weights,
                early_termination=early_termination,
                rng=rng,
                rngs=rngs,
                refine=refine,
                check_monotone=check_monotone,
                sparse_engine=sparse_engine,
            )
        from repro.index.graph_wave import graph_wave_search

        typed = [as_query(q) for q in queries]
        if any(t.sparse is not None for t in typed):
            # Hybrid requests leave the wave under their own per-query
            # seed (bit-identical however the wave is composed); plain
            # requests stay batched.
            if rngs is None:
                from repro.utils.rng import spawn_seed_sequences

                rngs = list(spawn_seed_sequences(rng, len(typed)))
            routed: dict[int, SearchResult] = {}
            for i, t in enumerate(typed):
                if t.sparse is not None:
                    routed[i] = self._hybrid_one(
                        t, k, l, weights, early_termination,
                        sparse_engine, rng=rngs[i],
                    )
            plain = [i for i in range(len(typed)) if i not in routed]
            plain_results: list[SearchResult] = []
            wave_stats = SearchStats()
            if plain:
                plain_results, wave_stats = graph_wave_search(
                    self._graph(),
                    [typed[i] for i in plain],
                    k=k,
                    l=min(l, self._graph().n),
                    weights=weights,
                    early_termination=early_termination,
                    rngs=[rngs[i] for i in plain],
                    refine=refine,
                    check_monotone=check_monotone,
                    filter_memo={},
                )
            results: list[SearchResult] = []
            it = iter(plain_results)
            for i in range(len(typed)):
                results.append(routed[i] if i in routed else next(it))
            return results, wave_stats
        return graph_wave_search(
            self._graph(),
            queries,
            k=k,
            l=min(l, self._graph().n),
            weights=weights,
            early_termination=early_termination,
            rng=rng,
            rngs=rngs,
            refine=refine,
            check_monotone=check_monotone,
            filter_memo={},
        )

    def exact_wave(
        self,
        queries: "list[MultiVector | Query]",
        k: int,
        weights: Weights | None = None,
        refine: int | None = None,
        margin: float = 1e-4,
        sparse_engine: str = "auto",
    ) -> list[SearchResult]:
        """Coalesced exact batch — the serving layer's GEMM fast path.

        On a segmented snapshot this is
        :meth:`~repro.index.segments.SegmentView.exact_wave`:
        bit-identical to per-query :meth:`search` with ``exact=True``
        (float32 GEMM prefilter + layout-independent float64 rerank
        within ``margin`` of each cut-off).  On a single-graph snapshot
        the legacy exact scan is a full-matrix float32 GEMV whose values
        cannot be reproduced on row subsets, so the wave falls back to
        :meth:`FlatIndex.batch_search` — same ranks on non-degenerate
        data, similarities within ~1e-7 (see its docstring).
        """
        if self.view is not None:
            return self.view.exact_wave(
                queries,
                k,
                weights=weights,
                refine=refine,
                margin=margin,
                sparse_engine=sparse_engine,
            )
        return self._flat().batch_search(
            list(queries),
            k,
            weights=weights,
            refine=refine,
            sparse_engine=sparse_engine,
        )
