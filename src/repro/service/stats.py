"""Serving-side observability: request counters, latency percentiles,
batch-size and queue-depth histograms.

:class:`ServiceStats` is the one mutable object shared between client
threads (submits, rejections) and the dispatcher (batches, completions),
so every update goes through its lock — the trackers themselves
(:class:`~repro.metrics.timing.PercentileTracker`) are not thread-safe.
Latencies are recorded in **seconds** and reported in milliseconds by
:meth:`ServiceStats.summary`.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Any, Iterable

from repro.metrics.timing import PercentileTracker

__all__ = ["ServiceStats"]


class ServiceStats:
    """Live counters for one :class:`~repro.service.MustService`.

    * ``submitted`` / ``completed`` / ``failed`` / ``rejected`` —
      per-request outcomes (``rejected`` counts admission-control drops,
      which never reach the queue).
    * ``batches`` / ``coalesced_batches`` / ``coalesced_requests`` — how
      often the dispatcher actually merged concurrent callers into one
      wave (a batch of one is dispatch overhead, not coalescing).
    * ``latency`` — submit→response seconds per request (the number a
      client experiences); ``wait`` — submit→dispatch queueing delay.
    * ``batch_sizes`` / ``queue_depths`` — histograms (size → count,
      depth-at-dispatch → count) for tuning ``max_batch`` /
      ``max_wait_ms`` / ``max_queue``.
    * ``graph_waves`` / ``wave_frontier_sizes`` — histograms of the
      lockstep graph waves (waves-per-coalesced-group → count, stacked
      frontier size → count), recorded once per ``engine="wave"``
      group the dispatcher executes; both empty unless clients opt
      into the wave engine.
    """

    def __init__(self, latency_window: int = 10_000) -> None:
        self._lock = threading.Lock()
        self._latency_window = latency_window
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.batches = 0
        self.coalesced_batches = 0
        self.coalesced_requests = 0
        self.latency = PercentileTracker(latency_window)
        self.wait = PercentileTracker(latency_window)
        self.batch_sizes: Counter[int] = Counter()
        self.queue_depths: Counter[int] = Counter()
        self.graph_waves: Counter[int] = Counter()
        self.wave_frontier_sizes: Counter[int] = Counter()
        # Per-shard instruments (populated only by ShardedService): for
        # each shard, round-trip latency percentiles of its scatter
        # waves and a histogram of how many queries each wave carried —
        # the numbers that expose a skewed partition or a straggler
        # worker.  ``shards_lost`` counts workers declared dead.
        self.shard_latency: dict[int, PercentileTracker] = {}
        self.shard_wave_sizes: dict[int, Counter[int]] = {}
        self.shard_waves: Counter[int] = Counter()
        self.shards_lost = 0

    # ------------------------------------------------------------------
    # Recording (called by the service)
    # ------------------------------------------------------------------
    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_batch(self, size: int, queue_depth: int) -> None:
        with self._lock:
            self.batches += 1
            self.batch_sizes[int(size)] += 1
            self.queue_depths[int(queue_depth)] += 1
            if size > 1:
                self.coalesced_batches += 1
                self.coalesced_requests += int(size)

    def record_graph_wave(
        self, waves: int, frontier_sizes: Iterable[int]
    ) -> None:
        """One coalesced ``engine="wave"`` group: its wave count and
        the per-wave stacked frontier sizes."""
        with self._lock:
            self.graph_waves[int(waves)] += 1
            for size in frontier_sizes:
                self.wave_frontier_sizes[int(size)] += 1

    def record_shard_wave(
        self, shard: int, seconds: float, size: int
    ) -> None:
        """One scatter round-trip to *shard*: latency and queries carried."""
        with self._lock:
            shard = int(shard)
            self.shard_waves[shard] += 1
            tracker = self.shard_latency.get(shard)
            if tracker is None:
                tracker = PercentileTracker(self._latency_window)
                self.shard_latency[shard] = tracker
            tracker.record(seconds)
            sizes: Counter[int] | None = self.shard_wave_sizes.get(shard)
            if sizes is None:
                sizes = Counter()
                self.shard_wave_sizes[shard] = sizes
            sizes[int(size)] += 1

    def record_shard_lost(self, shard: int) -> None:
        with self._lock:
            self.shards_lost += 1

    def record_wait(self, seconds: float) -> None:
        with self._lock:
            self.wait.record(seconds)

    def record_done(self, latency_seconds: float, ok: bool = True) -> None:
        with self._lock:
            self.latency.record(latency_seconds)
            if ok:
                self.completed += 1
            else:
                self.failed += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests accepted but not yet answered."""
        with self._lock:
            return self.submitted - self.completed - self.failed

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            total = sum(s * c for s, c in self.batch_sizes.items())
            count = sum(self.batch_sizes.values())
        return total / count if count else float("nan")

    def summary(self) -> dict[str, Any]:
        """JSON-ready snapshot of every counter (latencies in ms)."""
        with self._lock:
            batch_sizes = {
                int(size): int(count)
                for size, count in sorted(self.batch_sizes.items())
            }
            queue_depths = {
                int(depth): int(count)
                for depth, count in sorted(self.queue_depths.items())
            }
            graph_waves = {
                int(waves): int(count)
                for waves, count in sorted(self.graph_waves.items())
            }
            wave_frontier_sizes = {
                int(size): int(count)
                for size, count in sorted(self.wave_frontier_sizes.items())
            }
            shards = {
                int(shard): {
                    "waves": int(self.shard_waves[shard]),
                    "latency_ms": self.shard_latency[shard].summary(scale=1e3),
                    "wave_sizes": {
                        int(size): int(count)
                        for size, count in sorted(
                            self.shard_wave_sizes.get(shard, Counter()).items()
                        )
                    },
                }
                for shard in sorted(self.shard_latency)
            }
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "batches": self.batches,
                "coalesced_batches": self.coalesced_batches,
                "coalesced_requests": self.coalesced_requests,
                "latency_ms": self.latency.summary(scale=1e3),
                "wait_ms": self.wait.summary(scale=1e3),
                "batch_sizes": batch_sizes,
                "queue_depths": queue_depths,
                "graph_waves": graph_waves,
                "wave_frontier_sizes": wave_frontier_sizes,
                "shards": shards,
                "shards_lost": self.shards_lost,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceStats(submitted={self.submitted}, "
            f"completed={self.completed}, failed={self.failed}, "
            f"rejected={self.rejected}, batches={self.batches})"
        )
