"""Sparse lexical modality: CSR term-frequency plane + BM25/TF-IDF.

The package that turns the engine hybrid.  A
:class:`~repro.sparse.store.SparseStore` rides on a
:class:`~repro.core.multivector.MultiVectorSet` exactly like the
attribute table (constructor kwarg, ``subset``/``concat``, ``sparse__``
npz prefix) and is scored by the kernels in
:mod:`repro.sparse.kernels`, served by the posting-list engine in
:mod:`repro.sparse.inverted`, and mixed into the dense joint similarity
by :mod:`repro.sparse.hybrid`.
"""

from repro.sparse.hybrid import (
    add_sparse,
    hybrid_rerank,
    hybrid_union_rescore,
    is_hybrid,
    sparse_candidates,
    sparse_plane,
)
from repro.sparse.inverted import (
    sparse_scores,
    sparse_scores_inverted,
    sparse_topk,
)
from repro.sparse.kernels import (
    SparseQuery,
    as_sparse_query,
    sparse_scores_bruteforce,
    sparse_scores_reference,
)
from repro.sparse.store import (
    SPARSE_PREFIX,
    SparseStats,
    SparseStore,
    sum_stats,
)

__all__ = [
    "SPARSE_PREFIX",
    "SparseQuery",
    "SparseStats",
    "SparseStore",
    "add_sparse",
    "as_sparse_query",
    "hybrid_rerank",
    "hybrid_union_rescore",
    "is_hybrid",
    "sparse_candidates",
    "sparse_plane",
    "sparse_scores",
    "sparse_scores_bruteforce",
    "sparse_scores_inverted",
    "sparse_scores_reference",
    "sparse_topk",
    "sum_stats",
]
