"""Dense + lexical score fusion: one result list, two modality families.

A hybrid query carries a dense multi-vector *and* a
:class:`~repro.sparse.kernels.SparseQuery`; its joint similarity is::

    score(q, x) = Σ_i ω_i²·IP_i(q, x)  +  ω_s²·lex(q_s, x_s)

where ``lex`` is the sparse plane's registered metric (BM25 / TF-IDF)
and ``ω_s`` is the per-query ``Query.sparse_weight`` — squared to mirror
the dense ω² convention, so a sparse plane behaves exactly like one more
modality in the weighted aggregation.

Everything here is a composition of already-bit-pinned pieces: the
sparse score array is bit-identical across engines
(:mod:`repro.sparse.inverted`), the dense exact kernels are
layout-independent (:meth:`~repro.core.space.JointSpace.query_ids_stable`),
and the combination is per-row independent float64 arithmetic — so the
hybrid exact answer inherits every parity property of its parts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.sparse.inverted import (
    sparse_scores,
    sparse_scores_inverted,
    sparse_topk,
)
from repro.sparse.kernels import sparse_scores_bruteforce
from repro.sparse.store import SparseStore

if TYPE_CHECKING:
    from repro.core.results import SearchStats
    from repro.core.space import JointSpace
    from repro.core.weights import Weights

__all__ = [
    "add_sparse",
    "hybrid_rerank",
    "hybrid_union_rescore",
    "is_hybrid",
    "sparse_candidates",
    "sparse_plane",
]


def is_hybrid(query: Any) -> bool:
    """True when *query* is a typed Query carrying a sparse component.

    Duck-typed (``getattr``) so raw :class:`~repro.core.multivector.
    MultiVector` inputs — which have no ``sparse`` attribute — answer
    False without this module importing :mod:`repro.core.query`.
    """
    return getattr(query, "sparse", None) is not None


def sparse_plane(space: "JointSpace", context: str = "corpus") -> SparseStore:
    """The space's sparse plane, or an actionable error when absent."""
    plane = space.vectors.sparse
    if plane is None:
        raise ValueError(
            f"query carries a sparse component but the {context} has no "
            f"sparse plane — attach one with "
            f"MultiVectorSet.set_sparse(...) / MUST(..., sparse=...) "
            f"(inserted objects must carry the same sparse vocabulary "
            f"as the corpus)"
        )
    return plane


def add_sparse(
    sims: np.ndarray,
    space: "JointSpace",
    typed: Any,
    engine: str = "auto",
    context: str = "corpus",
) -> np.ndarray:
    """Full-corpus hybrid scores: ``dense + ω_s²·sparse`` (float64).

    *sims* is a full ``(n,)`` dense score array; the sparse term is
    bit-identical across engines, so the combined array is too.
    """
    plane = sparse_plane(space, context)
    w2 = float(typed.sparse_weight) ** 2
    return sims + w2 * sparse_scores(plane, typed.sparse, engine)


def sparse_candidates(
    plane: SparseStore,
    typed: Any,
    k: int,
    admissible: np.ndarray | None = None,
    engine: str = "auto",
) -> tuple[np.ndarray, np.ndarray]:
    """Lexical top-*k* candidates: ``(local ids, full score array)``.

    The candidate generator of the graph-path hybrid: the sparse engine
    proposes its best admissible rows, which then join the dense graph
    candidates for an exact union rescore.  Both engines return the
    same ids (the inverted engine's touched-rows shortcut is proven
    equal to the full lexsort) and the same score bits.
    """
    if engine == "exact":
        scores = sparse_scores_bruteforce(plane, typed.sparse)
        ids, _ = sparse_topk(scores, k, admissible)
    else:
        scores, touched = sparse_scores_inverted(plane, typed.sparse)
        ids, _ = sparse_topk(scores, k, admissible, touched)
    return ids, scores


def hybrid_union_rescore(
    space: "JointSpace",
    typed: Any,
    dense_ids: np.ndarray,
    k: int,
    admissible: np.ndarray | None = None,
    weights: "Weights | None" = None,
    engine: str = "auto",
    stats: "SearchStats | None" = None,
    context: str = "corpus",
) -> tuple[np.ndarray, np.ndarray]:
    """Graph-path fusion: sparse top-*k* ∪ dense candidates, rescored.

    The dense graph traversal proposes *dense_ids* (local rows, already
    admissibility-checked by the searcher); the sparse engine proposes
    its own top-*k* admissible rows.  The union is exact-rescored under
    the combined metric (row-stable dense kernel + the engine-invariant
    sparse array) and cut to *k* by the canonical
    ``(-similarity, id)`` order.  Candidate recall is what the graph
    path trades for speed; the *scores* of whatever is returned are
    exact.
    """
    plane = sparse_plane(space, context)
    lex_ids, lex_scores = sparse_candidates(
        plane, typed, k, admissible=admissible, engine=engine
    )
    cand = np.union1d(np.asarray(dense_ids, dtype=np.int64), lex_ids)
    if cand.size == 0:
        return cand, np.zeros(0, dtype=np.float64)
    dense = space.query_ids_stable(
        typed.vector, cand, weights=weights, stats=stats
    )
    w2 = float(typed.sparse_weight) ** 2
    sims = dense + w2 * lex_scores[cand]
    order = np.lexsort((cand, -sims))[:k]
    return cand[order], sims[order]


def hybrid_rerank(
    space: "JointSpace",
    typed: Any,
    ids: np.ndarray,
    k: int,
    weights: "Weights | None" = None,
    stats: "SearchStats | None" = None,
    engine: str = "auto",
    context: str = "corpus",
) -> tuple[np.ndarray, np.ndarray]:
    """Hybrid stage two of ``refine=``: full-precision combined top-*k*.

    Mirrors :func:`~repro.index.scoring.rerank_exact` — dense scores
    come from the store's cold exact tier — with the sparse term added
    at the shortlist rows before the canonical cut.
    """
    plane = sparse_plane(space, context)
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return ids, np.zeros(0, dtype=np.float64)
    dense = space.query_ids_exact(
        typed.vector, ids, weights=weights, stats=stats
    )
    w2 = float(typed.sparse_weight) ** 2
    sims = dense + w2 * sparse_scores(plane, typed.sparse, engine)[ids]
    order = np.lexsort((ids, -sims))[:k]
    return ids[order], sims[order]
