"""Posting-list engine: sparse top-k that only touches query-term rows.

:func:`sparse_scores_inverted` scatter-adds each query term's
contribution at its posting rows (the CSC column), performing exactly
the additions :func:`~repro.sparse.kernels.sparse_scores_bruteforce`
performs — minus the explicit ``+0.0`` at untouched rows, which cannot
change a non-negative float64 accumulator.  The two score arrays are
therefore bit-identical while the work drops from
``O(n · query terms)`` to ``O(postings of the query terms)``.

:func:`sparse_topk` turns a score array into the canonical top-k: the
same ``np.lexsort((ids, −scores))`` order the dense exact paths use
(descending score, ascending id on ties).  When the engine knows which
rows it touched, the selection ranks only those and back-fills the
remaining slots with untouched admissible ids ascending — provably the
same answer, because every untouched row scores exactly ``+0.0``,
strictly below every touched row's positive score, and ties at zero
break by ascending id.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.kernels import (
    BM25_B,
    BM25_K1,
    SparseQueryLike,
    as_sparse_query,
    sparse_scores_bruteforce,
    term_weights,
)
from repro.sparse.store import SparseStore
from repro.utils.validation import require

__all__ = ["sparse_scores", "sparse_scores_inverted", "sparse_topk"]


def sparse_scores_inverted(
    store: SparseStore, query: SparseQueryLike
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter-add scores; returns ``(scores, touched_rows)``.

    ``scores`` is the full ``(n,)`` float64 array (untouched rows are
    exactly ``+0.0``); ``touched_rows`` the sorted unique rows holding
    at least one query term — the only rows whose scores can be
    positive, which :func:`sparse_topk` exploits.
    """
    query = as_sparse_query(query)
    out = np.zeros(store.n, dtype=np.float64)
    terms, weights = term_weights(store, query)
    if terms.size == 0 or store.n == 0:
        return out, np.empty(0, dtype=np.int64)
    csc = store.postings()
    dl = store.row_lengths()
    bm25 = store.metric == "bm25"
    # Hoisted out of the per-term loop (this is the engine's hot path —
    # per-query cost must stay O(postings), not O(n), with minimal
    # Python overhead).  The inlined expressions below perform exactly
    # the operations of kernels._doc_norm / kernels.term_contrib in the
    # same order, preserving the bit-parity contract.
    avgdl = store.stats.avgdl if bm25 else 1.0
    indptr, indices, data = csc.indptr, csc.indices, csc.data
    touched: list[np.ndarray] = []
    for t, w_t in zip(terms, weights):
        start, end = indptr[t], indptr[t + 1]
        rows = indices[start:end]
        if rows.size == 0:
            continue
        tf = data[start:end].astype(np.float64)
        # Row indices within a CSC column are unique, so a plain fancy
        # add applies each contribution exactly once — and the per-row
        # addition order across terms matches the brute-force scan's
        # ascending-term accumulation.
        if bm25:
            norm = BM25_K1 * (1.0 - BM25_B + BM25_B * (dl[rows] / avgdl))
            contrib = w_t * ((tf * (BM25_K1 + 1.0)) / (tf + norm))
        else:
            contrib = w_t * tf
        out[rows] += contrib
        touched.append(rows)
    if not touched:
        return out, np.empty(0, dtype=np.int64)
    return out, np.unique(np.concatenate(touched)).astype(np.int64)


def sparse_scores(
    store: SparseStore, query: SparseQueryLike, engine: str = "auto"
) -> np.ndarray:
    """Full float64 score array under the chosen sparse engine.

    ``auto``/``inverted`` route through the posting-list scatter;
    ``exact`` through the brute-force per-term scan.  Both return the
    same bits — the engine choice is purely a cost model.
    """
    require(
        engine in ("auto", "inverted", "exact"),
        f"unknown sparse engine {engine!r}; valid: auto, inverted, exact",
    )
    if engine == "exact":
        return sparse_scores_bruteforce(store, query)
    scores, _ = sparse_scores_inverted(store, query)
    return scores


def sparse_topk(
    scores: np.ndarray,
    k: int,
    admissible: np.ndarray | None = None,
    touched: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Canonical top-*k* ``(ids, scores)`` of a sparse score array.

    *admissible* is an optional boolean mask (filter ∧ ¬deleted); rows
    outside it never appear.  *touched* — when the inverted engine
    supplies it — restricts the sort to rows that can score above zero;
    the remaining slots fill with untouched admissible ids ascending,
    which equals the full ``lexsort((ids, −scores))`` answer because
    untouched rows all hold exactly ``+0.0``.
    """
    n = int(scores.shape[0])
    if touched is None:
        cand = (
            np.arange(n, dtype=np.int64)
            if admissible is None
            else np.flatnonzero(admissible).astype(np.int64)
        )
        order = np.lexsort((cand, -scores[cand]))
        top = cand[order[:k]]
        return top, scores[top]
    cand = (
        touched
        if admissible is None
        else touched[admissible[touched]]
    )
    order = np.lexsort((cand, -scores[cand]))
    top = cand[order[:k]].astype(np.int64)
    if top.shape[0] < k:
        untouched = (
            np.ones(n, dtype=bool) if admissible is None else admissible.copy()
        )
        untouched[touched] = False
        fill = np.flatnonzero(untouched).astype(np.int64)[: k - top.shape[0]]
        top = np.concatenate([top, fill])
    return top, scores[top]
