"""BM25 / TF-IDF scoring kernels for the sparse lexical plane.

The arithmetic contract that makes the whole sparse engine testable bit
for bit: a query's score against a document is the **sum, in ascending
query-term order, of per-term contributions**, each contribution an
elementwise float64 expression of ``(query weight, idf, tf, length
norm)``.  Every implementation in this package — the per-document
reference loop here, the per-term brute-force scan here, and the
posting-list scatter engine in :mod:`repro.sparse.inverted` — performs
*the same additions in the same order*, so their score arrays are
bit-identical, not merely close.  Documents containing none of the
query's terms score exactly ``+0.0`` (contributions are non-negative
and absent terms add nothing), which is what lets the inverted engine
rank only the touched rows.

Metric formulas (``N``/``df``/``avgdl`` from the plane's
:class:`~repro.sparse.store.SparseStats`):

* **bm25** — ``idf = ln(1 + (N − df + 0.5)/(df + 0.5))`` (strictly
  positive for ``df ≤ N``), contribution
  ``qv·idf · tf·(k1+1) / (tf + k1·(1 − b + b·dl/avgdl))`` with the
  standard ``k1 = 1.2``, ``b = 0.75``.
* **tfidf** — ``idf = ln((N+1)/(df+1)) + 1`` (strictly positive),
  contribution ``qv·idf·tf``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence, Union

import numpy as np

from repro.utils.validation import require

if TYPE_CHECKING:
    from repro.sparse.store import SparseStats, SparseStore

__all__ = [
    "BM25_B",
    "BM25_K1",
    "SparseQuery",
    "SparseQueryLike",
    "as_sparse_query",
    "sparse_scores_bruteforce",
    "sparse_scores_reference",
    "term_weights",
]

BM25_K1 = 1.2
BM25_B = 0.75


@dataclass(frozen=True)
class SparseQuery:
    """A normalised sparse query: unique ascending terms, positive weights.

    Construct via :func:`as_sparse_query`, which coalesces duplicate
    terms, drops zero weights, and sorts — the canonical form whose
    term order defines the (bit-pinned) contribution-summation order.
    """

    indices: np.ndarray
    values: np.ndarray

    @property
    def num_terms(self) -> int:
        return int(self.indices.shape[0])


SparseQueryLike = Union[
    SparseQuery,
    Mapping[int, float],
    "tuple[Sequence[int], Sequence[float]]",
]


def as_sparse_query(sparse: SparseQueryLike) -> SparseQuery:
    """Normalise user input into a canonical :class:`SparseQuery`.

    Accepts a ready :class:`SparseQuery`, a ``{term: weight}`` mapping,
    or an ``(indices, values)`` pair.  Duplicate terms are summed, zero
    weights dropped, terms sorted ascending; weights must be finite and
    non-negative (negative query weights would break the inverted
    engine's untouched-rows-score-zero invariant).
    """
    if isinstance(sparse, SparseQuery):
        return sparse
    if isinstance(sparse, Mapping):
        idx = np.fromiter((int(t) for t in sparse.keys()), dtype=np.int64)
        val = np.fromiter(
            (float(v) for v in sparse.values()), dtype=np.float64
        )
    else:
        require(
            isinstance(sparse, tuple) and len(sparse) == 2,
            f"sparse query must be a SparseQuery, a {{term: weight}} "
            f"mapping, or an (indices, values) pair, got "
            f"{type(sparse).__name__}",
        )
        idx = np.asarray(sparse[0], dtype=np.int64).ravel()
        val = np.asarray(sparse[1], dtype=np.float64).ravel()
    require(
        idx.shape == val.shape,
        f"sparse query has {idx.shape[0]} term ids but {val.shape[0]} "
        f"weights",
    )
    require(
        bool(np.all(np.isfinite(val))) and bool(np.all(val >= 0.0)),
        "sparse query weights must be finite and non-negative",
    )
    require(
        idx.size == 0 or bool(np.all(idx >= 0)),
        "sparse query term ids must be non-negative",
    )
    if idx.size:
        order = np.argsort(idx, kind="stable")
        idx, val = idx[order], val[order]
        uniq, start = np.unique(idx, return_index=True)
        val = np.add.reduceat(val, start) if uniq.size else val
        idx = uniq
        keep = val > 0.0
        idx, val = idx[keep], val[keep]
    return SparseQuery(
        indices=np.ascontiguousarray(idx, dtype=np.int64),
        values=np.ascontiguousarray(val, dtype=np.float64),
    )


# ----------------------------------------------------------------------
# Per-term weights and contributions
# ----------------------------------------------------------------------
def _idf(metric: str, stats: "SparseStats", terms: np.ndarray) -> np.ndarray:
    df = stats.doc_freq[terms].astype(np.float64)
    n = float(stats.n_docs)
    if metric == "bm25":
        return np.log1p((n - df + 0.5) / (df + 0.5))
    if metric == "tfidf":
        return np.log((n + 1.0) / (df + 1.0)) + 1.0
    raise ValueError(f"unknown sparse metric {metric!r}")


def term_weights(
    store: "SparseStore", query: SparseQuery
) -> tuple[np.ndarray, np.ndarray]:
    """``(terms, w)`` — in-vocabulary query terms and their ``qv·idf``.

    Out-of-vocabulary term ids are dropped: they have no postings, so
    they contribute exactly nothing on every engine.
    """
    keep = query.indices < store.vocab
    terms = query.indices[keep]
    values = query.values[keep]
    if terms.size == 0:
        return terms, values
    idf = _idf(store.metric, store.stats, terms)
    return terms, values * idf


def _doc_norm(store: "SparseStore", dl: np.ndarray) -> np.ndarray:
    """BM25 length normalisation ``k1·(1 − b + b·dl/avgdl)``.

    A pure elementwise expression of the per-row document length, so
    evaluating it on a gather of rows equals gathering its full-array
    evaluation — the identity the inverted engine's bit-parity rests on.
    """
    avgdl = store.stats.avgdl
    return BM25_K1 * (1.0 - BM25_B + BM25_B * (dl / avgdl))


def term_contrib(
    metric: str, w_t: float, tf: np.ndarray, norm: np.ndarray | None
) -> np.ndarray:
    """One term's contribution at its posting rows (elementwise f64)."""
    tf = tf.astype(np.float64)
    if metric == "bm25":
        assert norm is not None
        return w_t * ((tf * (BM25_K1 + 1.0)) / (tf + norm))
    return w_t * tf


# ----------------------------------------------------------------------
# Scorers
# ----------------------------------------------------------------------
def sparse_scores_bruteforce(
    store: "SparseStore", query: SparseQueryLike
) -> np.ndarray:
    """Brute-force per-term scan: the exact engine and the QPS yardstick.

    For each query term (ascending), materialises a full ``(n,)``
    contribution array — zero except at the term's posting rows — and
    accumulates.  O(n · query terms) work: the "scan every row for
    every term" baseline the inverted engine is gated ≥1.5× faster
    than, while producing the *same bits* (adding an explicit ``+0.0``
    at untouched rows cannot change a non-negative float64 accumulator).
    """
    query = as_sparse_query(query)
    out = np.zeros(store.n, dtype=np.float64)
    terms, weights = term_weights(store, query)
    if terms.size == 0 or store.n == 0:
        return out
    csc = store.postings()
    dl = store.row_lengths()
    norm_full = _doc_norm(store, dl) if store.metric == "bm25" else None
    for t, w_t in zip(terms, weights):
        start, end = csc.indptr[t], csc.indptr[t + 1]
        rows = csc.indices[start:end]
        contrib = np.zeros(store.n, dtype=np.float64)
        if rows.size:
            tf = csc.data[start:end]
            norm = None if norm_full is None else norm_full[rows]
            contrib[rows] = term_contrib(store.metric, float(w_t), tf, norm)
        out += contrib
    return out


def sparse_scores_reference(
    store: "SparseStore", query: SparseQueryLike
) -> np.ndarray:
    """Independent per-document reference scorer (tests only).

    Walks each document's own CSR row with plain Python floats — no
    postings, no vectorisation — performing the same additions in the
    same order as the engines.  Deliberately slow and deliberately
    structured differently from both production paths, so a bug shared
    by the scatter and brute-force implementations cannot hide.
    """
    query = as_sparse_query(query)
    out = np.zeros(store.n, dtype=np.float64)
    terms, weights = term_weights(store, query)
    if terms.size == 0:
        return out
    csr = store.csr
    dl = store.row_lengths()
    avgdl = store.stats.avgdl
    weight_of = {int(t): float(w) for t, w in zip(terms, weights)}
    for j in range(store.n):
        start, end = csr.indptr[j], csr.indptr[j + 1]
        row_terms = csr.indices[start:end]
        row_tfs = csr.data[start:end]
        tf_of = {int(t): float(v) for t, v in zip(row_terms, row_tfs)}
        score = 0.0
        for t in terms:  # ascending — the pinned summation order
            t = int(t)
            if t not in tf_of:
                continue
            tf = tf_of[t]
            if store.metric == "bm25":
                norm = BM25_K1 * (
                    1.0 - BM25_B + BM25_B * (dl[j] / avgdl)
                )
                score += weight_of[t] * (
                    (tf * (BM25_K1 + 1.0)) / (tf + norm)
                )
            else:
                score += weight_of[t] * tf
        out[j] = score
    return out
