"""Scipy-CSR-backed sparse lexical plane.

A :class:`SparseStore` holds one term-frequency row per object — the
lexical sibling of a dense modality matrix — plus the corpus statistics
(document frequencies, document-length normalisation) its scoring
metrics need.  It mirrors the :class:`~repro.store.VectorStore` seam
everywhere persistence and lifecycle touch it:

* ``subset`` / :meth:`SparseStore.concat` so the plane survives
  segmented seal/compact and sharded row partitioning,
* ``to_arrays`` / ``from_arrays`` codecs under the ``sparse__`` key
  prefix (the lexical analogue of the attribute table's ``attr__``),
  so it round-trips through ``.npz`` segment archives,
* ``hot_bytes`` / ``cold_bytes`` accounting (the CSR arrays are always
  hot; there is no cold tier — postings are the index).

**Statistics are corpus-global, stamped per plane.**  BM25 scores
depend on document frequencies and the average document length of the
*whole* corpus, but a segmented index stores rows across many planes.
Each plane therefore carries a frozen :class:`SparseStats` snapshot of
the global statistics; the segmented index recomputes them (by summing
per-plane local counts) on insert/seal/compact and re-stamps every live
plane via :meth:`SparseStore.with_stats` — a cheap re-wrap sharing the
CSR arrays, so older snapshots keep their stats (and their answers)
untouched.  A standalone plane with ``stats=None`` falls back to its
own local counts, which *are* the global ones for an unsegmented
corpus.

Determinism: rows are kept in canonical CSR form (sorted column
indices, explicit zeros eliminated, duplicates summed), so a row's
data array — and therefore every per-row reduction and per-posting
contribution — is bit-identical no matter how the corpus is split into
planes.  Values must be finite and non-negative: term frequencies and
query term weights are counts or count-like, and non-negativity is
what makes "untouched row scores exactly 0.0" a sound top-k shortcut
for the inverted engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.registry import resolve_metric
from repro.utils.validation import require

try:  # scipy is an optional dependency of the sparse modality only
    import scipy.sparse as sp
except ImportError:  # pragma: no cover - exercised only without scipy
    sp = None

__all__ = [
    "SPARSE_PREFIX",
    "SparseStats",
    "SparseStore",
    "require_scipy",
    "sum_stats",
]

#: npz / shared-memory key prefix for sparse-plane arrays (the lexical
#: sibling of :data:`repro.core.attributes.ATTRIBUTE_PREFIX`).
SPARSE_PREFIX = "sparse__"


def require_scipy() -> None:
    """Fail with an actionable error when scipy is absent."""
    require(
        sp is not None,
        "the sparse lexical modality needs scipy (scipy.sparse CSR "
        "storage) — install scipy or drop the sparse= argument",
    )


@dataclass(frozen=True)
class SparseStats:
    """Corpus-global lexical statistics one plane scores against.

    ``n_docs`` counts every stored row — including soft-deleted ones,
    which still occupy postings until a compaction rewrites the plane;
    this keeps the statistics a pure function of the stored rows, so
    every plane of a segmented corpus agrees on them.  ``doc_freq`` is
    the per-term document count (int64, one entry per vocabulary slot)
    and ``total_len`` the summed row mass (for the BM25 average
    document length).
    """

    n_docs: int
    doc_freq: np.ndarray
    total_len: float

    @property
    def avgdl(self) -> float:
        """Average document length (1.0 floor for empty corpora)."""
        if self.n_docs <= 0 or self.total_len <= 0.0:
            return 1.0
        return float(self.total_len) / float(self.n_docs)

    def key(self) -> tuple:
        """Hashable equality key (tests / cache invalidation)."""
        return (
            int(self.n_docs),
            self.doc_freq.tobytes(),
            float(self.total_len),
        )


class SparseStore:
    """One CSR term-frequency plane plus its scoring statistics.

    Construct from a ``scipy.sparse`` matrix (any format; converted to
    canonical CSR float32) or via :meth:`from_rows`.  ``metric`` names
    the registered sparse metric (``bm25`` or ``tfidf``) the plane is
    scored with — declared at ingest, like a dense modality's metric.
    """

    def __init__(
        self,
        matrix: Any,
        metric: str = "bm25",
        stats: SparseStats | None = None,
    ) -> None:
        require_scipy()
        resolve_metric(metric, kind="sparse")
        require(
            sp.issparse(matrix),
            f"SparseStore needs a scipy.sparse matrix, got "
            f"{type(matrix).__name__} — build one with "
            f"scipy.sparse.csr_matrix((data, indices, indptr), shape=...)",
        )
        csr = matrix.tocsr().astype(np.float32)
        # Canonical form: duplicate columns summed, explicit zeros
        # dropped, column indices sorted — the layout-independence
        # anchor (see module docstring).
        csr.sum_duplicates()
        csr.eliminate_zeros()
        csr.sort_indices()
        require(
            np.all(np.isfinite(csr.data)) and bool(np.all(csr.data >= 0.0)),
            "sparse term frequencies must be finite and non-negative — "
            "negative or NaN/inf entries break the inverted engine's "
            "untouched-row-scores-zero invariant",
        )
        self._csr = csr
        self.metric = str(metric)
        self._stats = stats
        self._csc = None  # lazy postings (CSC) for the inverted engine
        self._row_len: np.ndarray | None = None  # lazy f64 row sums
        self._local: SparseStats | None = None  # lazy local_stats cache

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Sequence[dict[int, float]] | Sequence[Sequence[tuple[int, float]]],
        vocab: int,
        metric: str = "bm25",
    ) -> "SparseStore":
        """Build from per-object ``{term: tf}`` mappings (or pair lists)."""
        require_scipy()
        lil = sp.lil_matrix((len(rows), vocab), dtype=np.float32)
        for j, row in enumerate(rows):
            items = row.items() if isinstance(row, dict) else row
            for term, value in items:
                lil[j, int(term)] = float(value)
        return cls(lil.tocsr(), metric=metric)

    @classmethod
    def empty(cls, vocab: int, metric: str = "bm25") -> "SparseStore":
        """A zero-row plane (the delta segment's starting state)."""
        require_scipy()
        return cls(sp.csr_matrix((0, vocab), dtype=np.float32), metric=metric)

    # ------------------------------------------------------------------
    # Shape / introspection
    # ------------------------------------------------------------------
    @property
    def csr(self) -> Any:
        """The canonical CSR matrix (read-only by convention)."""
        return self._csr

    @property
    def n(self) -> int:
        return int(self._csr.shape[0])

    @property
    def vocab(self) -> int:
        return int(self._csr.shape[1])

    @property
    def nnz(self) -> int:
        return int(self._csr.nnz)

    @property
    def stats(self) -> SparseStats:
        """The statistics this plane scores against.

        The stamped corpus-global snapshot when one is attached;
        otherwise the plane's own local counts (correct for an
        unsegmented corpus, where local *is* global).
        """
        if self._stats is not None:
            return self._stats
        return self.local_stats()

    @property
    def stamped_stats(self) -> SparseStats | None:
        """The explicitly stamped stats, or None when falling back."""
        return self._stats

    def local_stats(self) -> SparseStats:
        """Statistics of this plane's own rows (summable across planes).

        With integer-valued term frequencies (the normal case) every
        sum here is exact in float64, so the global statistics — and
        therefore every BM25 score — are bit-identical no matter how
        the corpus is split into planes.  Fractional frequencies keep
        engine-vs-oracle parity on any fixed layout but may differ in
        the last ulp across layouts.

        Cached after the first call: the CSR triplet never mutates
        (subset/concat build new stores), so the O(nnz) scatter must not
        run once per scored query.
        """
        cached = self._local
        if cached is None:
            doc_freq = np.zeros(self.vocab, dtype=np.int64)
            if self._csr.nnz:
                np.add.at(doc_freq, self._csr.indices, 1)
            total_len = float(np.add.reduce(self._csr.data, dtype=np.float64))
            cached = SparseStats(
                n_docs=self.n, doc_freq=doc_freq, total_len=total_len
            )
            self._local = cached
        return cached

    def row_lengths(self) -> np.ndarray:
        """Per-row mass ``Σ tf`` as float64 (BM25 length normalisation).

        Each row reduces over its own canonical data slice, so the value
        is bit-identical no matter which plane the row lives in.
        """
        cached = self._row_len
        if cached is None:
            csr = self._csr
            out = np.zeros(self.n, dtype=np.float64)
            data = csr.data.astype(np.float64)
            indptr = csr.indptr
            if csr.nnz:
                # reduceat misbehaves on empty segments; mask them out.
                starts = indptr[:-1]
                nonempty = np.flatnonzero(np.diff(indptr) > 0)
                if nonempty.size:
                    sums = np.add.reduceat(data, starts[nonempty])
                    out[nonempty] = sums
            cached = out
            self._row_len = cached
        return cached

    def postings(self) -> Any:
        """The CSC view (term → posting rows), built lazily and cached."""
        cached = self._csc
        if cached is None:
            cached = self._csr.tocsc()
            cached.sort_indices()
            self._csc = cached
        return cached

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def with_stats(self, stats: SparseStats | None) -> "SparseStore":
        """Same rows, different stamped statistics (cheap re-wrap)."""
        out = SparseStore.__new__(SparseStore)
        out._csr = self._csr
        out.metric = self.metric
        out._stats = stats
        out._csc = self._csc
        out._row_len = self._row_len
        out._local = self._local
        return out

    def subset(self, ids: np.ndarray) -> "SparseStore":
        """Plane over the rows in *ids* (order kept, stats preserved).

        The stamped global statistics ride along unchanged — a subset is
        a *view* of the same corpus, so its rows must keep scoring
        against the corpus-wide frequencies, not recompute local ones.
        """
        ids = np.asarray(ids)
        out = SparseStore.__new__(SparseStore)
        sub = self._csr[ids]
        sub.sort_indices()
        out._csr = sub
        out.metric = self.metric
        out._stats = self._stats
        out._csc = None
        out._row_len = None
        out._local = None
        return out

    @classmethod
    def concat(
        cls,
        stores: Sequence["SparseStore"],
        stats: SparseStats | None = None,
    ) -> "SparseStore":
        """Stack planes vertically (seal/compact path).

        All planes must agree on vocabulary size and metric.  The result
        carries *stats* when given, else the first plane's stamped stats
        (the caller — the segmented index — re-stamps right after).
        """
        require_scipy()
        require(len(stores) >= 1, "concat needs at least one sparse plane")
        vocab = stores[0].vocab
        metric = stores[0].metric
        for i, store in enumerate(stores):
            require(
                store.vocab == vocab,
                f"sparse plane {i} has vocabulary {store.vocab}, expected "
                f"{vocab} — all planes of one corpus share one vocabulary",
            )
            require(
                store.metric == metric,
                f"sparse plane {i} declares metric {store.metric!r}, "
                f"expected {metric!r}",
            )
        stacked = sp.vstack([s.csr for s in stores], format="csr")
        out = cls(
            stacked,
            metric=metric,
            stats=stats if stats is not None else stores[0]._stats,
        )
        return out

    # ------------------------------------------------------------------
    # Byte accounting (VectorStore seam)
    # ------------------------------------------------------------------
    def hot_bytes(self) -> int:
        """Resident bytes of the CSR arrays (+ stamped stats)."""
        csr = self._csr
        out = int(csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes)
        if self._stats is not None:
            out += int(self._stats.doc_freq.nbytes)
        return out

    def cold_bytes(self) -> int:
        """The sparse plane has no cold tier — postings are the index."""
        return 0

    # ------------------------------------------------------------------
    # Persistence (npz codecs, ``sparse__`` prefix)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Array payload for an ``.npz`` archive / shared-memory pack.

        The stamped statistics are serialised alongside the CSR triplet:
        a loaded plane must answer with the stats it was saved with, not
        locally recomputed ones (a shard or a single reloaded segment
        only sees part of the corpus).
        """
        csr = self._csr
        stats = self.stats  # stamped, or local for a standalone plane
        meta = np.array(
            [self.n, self.vocab, stats.n_docs], dtype=np.int64
        )
        return {
            f"{SPARSE_PREFIX}data": csr.data,
            f"{SPARSE_PREFIX}indices": csr.indices.astype(np.int64),
            f"{SPARSE_PREFIX}indptr": csr.indptr.astype(np.int64),
            f"{SPARSE_PREFIX}meta": meta,
            f"{SPARSE_PREFIX}metric": np.array([self.metric]),
            f"{SPARSE_PREFIX}doc_freq": stats.doc_freq,
            f"{SPARSE_PREFIX}total_len": np.array(
                [stats.total_len], dtype=np.float64
            ),
        }

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray]
    ) -> "SparseStore | None":
        """Inverse of :meth:`to_arrays`; None when no sparse keys exist.

        Mirrors :meth:`AttributeTable.from_arrays` so archives written
        before the sparse plane existed load unchanged.
        """
        if f"{SPARSE_PREFIX}data" not in arrays:
            return None
        require_scipy()
        meta = np.asarray(arrays[f"{SPARSE_PREFIX}meta"], dtype=np.int64)
        n, vocab, n_docs = (int(meta[0]), int(meta[1]), int(meta[2]))
        csr = sp.csr_matrix(
            (
                np.asarray(arrays[f"{SPARSE_PREFIX}data"], dtype=np.float32),
                np.asarray(arrays[f"{SPARSE_PREFIX}indices"]),
                np.asarray(arrays[f"{SPARSE_PREFIX}indptr"]),
            ),
            shape=(n, vocab),
        )
        metric = str(np.asarray(arrays[f"{SPARSE_PREFIX}metric"])[0])
        stats = SparseStats(
            n_docs=n_docs,
            doc_freq=np.ascontiguousarray(
                arrays[f"{SPARSE_PREFIX}doc_freq"], dtype=np.int64
            ),
            total_len=float(
                np.asarray(arrays[f"{SPARSE_PREFIX}total_len"])[0]
            ),
        )
        return cls(csr, metric=metric, stats=stats)


def sum_stats(parts: Sequence[SparseStats]) -> SparseStats:
    """Combine per-plane local statistics into one global snapshot."""
    require(len(parts) >= 1, "sum_stats needs at least one part")
    vocab = parts[0].doc_freq.shape[0]
    for part in parts:
        require(
            part.doc_freq.shape[0] == vocab,
            "sparse statistics cover different vocabularies — the planes "
            "do not belong to one corpus",
        )
    doc_freq = np.zeros(vocab, dtype=np.int64)
    n_docs = 0
    total_len = 0.0
    for part in parts:
        doc_freq += part.doc_freq
        n_docs += int(part.n_docs)
        total_len += float(part.total_len)
    return SparseStats(n_docs=n_docs, doc_freq=doc_freq, total_len=total_len)
