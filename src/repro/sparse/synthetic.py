"""Synthetic text-heavy corpus for hybrid dense+lexical evaluation.

The generator plants a two-level structure the two modality families
resolve at different depths:

* **topics** — each topic has one dense centroid and a block of shared
  vocabulary terms.  Documents are noisy draws around their topic's
  centroid, so *dense* search finds the right topic but cannot tell the
  topic's groups apart (all of them share the centroid).
* **groups** — each topic splits into groups of ``group_size``
  documents; each group owns a private block of *rare* terms that only
  its members contain.  A query carries a few of its target group's
  rare terms, so *lexical* scoring pins the exact group.

Ground truth for a query is its target group's member rows.  Dense-only
recall@k therefore saturates around ``group_size / (groups_per_topic ·
group_size)`` (a random sample of the topic), while hybrid fusion
recovers the group — the separation the hybrid bench gates on.

Term frequencies are **integer counts** by construction, keeping every
statistics sum exact in float64 (see
:meth:`~repro.sparse.store.SparseStore.local_stats`) — the property the
cross-layout bit-parity tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.multivector import normalize_rows
from repro.sparse.kernels import SparseQuery, as_sparse_query
from repro.sparse.store import SparseStore, require_scipy

__all__ = ["HybridDataset", "synthetic_hybrid"]


@dataclass(frozen=True)
class HybridDataset:
    """One generated corpus plus its query workload and ground truth."""

    dense: np.ndarray  #: (n, dim) unit-norm dense vectors
    sparse: SparseStore  #: (n, vocab) integer term frequencies
    query_dense: np.ndarray  #: (q, dim) unit-norm dense query vectors
    query_sparse: tuple[SparseQuery, ...]  #: per-query lexical terms
    truth: np.ndarray  #: (q, group_size) ground-truth row ids, sorted
    topic: np.ndarray  #: (n,) topic label per document
    group: np.ndarray  #: (n,) global group label per document

    @property
    def n(self) -> int:
        return int(self.dense.shape[0])

    @property
    def num_queries(self) -> int:
        return int(self.query_dense.shape[0])


def synthetic_hybrid(
    n_topics: int = 8,
    groups_per_topic: int = 5,
    group_size: int = 10,
    dim: int = 32,
    num_queries: int = 40,
    shared_terms: int = 12,
    rare_terms: int = 6,
    noise: float = 0.9,
    metric: str = "bm25",
    seed: int = 0,
) -> HybridDataset:
    """Generate a :class:`HybridDataset` (deterministic for one *seed*)."""
    require_scipy()
    import scipy.sparse as sp

    rng = np.random.default_rng(seed)
    n_groups = n_topics * groups_per_topic
    n = n_groups * group_size
    vocab = n_topics * shared_terms + n_groups * rare_terms
    rare_base = n_topics * shared_terms

    centroids = normalize_rows(
        rng.standard_normal((n_topics, dim)).astype(np.float32)
    )
    topic = np.repeat(np.arange(n_topics), groups_per_topic * group_size)
    group = np.repeat(np.arange(n_groups), group_size)

    dense = normalize_rows(
        centroids[topic]
        + np.float32(noise) * rng.standard_normal((n, dim)).astype(np.float32)
    )

    rows = sp.lil_matrix((n, vocab), dtype=np.float32)
    for j in range(n):
        t, g = int(topic[j]), int(group[j])
        picked = rng.choice(
            shared_terms, size=max(shared_terms // 2, 1), replace=False
        )
        for term in picked:
            rows[j, t * shared_terms + int(term)] = float(
                rng.integers(1, 5)
            )
        picked = rng.choice(
            rare_terms, size=max(rare_terms // 2, 1), replace=False
        )
        for term in picked:
            rows[j, rare_base + g * rare_terms + int(term)] = float(
                rng.integers(1, 5)
            )
    plane = SparseStore(rows.tocsr(), metric=metric)

    target = rng.integers(0, n_groups, size=num_queries)
    query_dense = normalize_rows(
        centroids[target // groups_per_topic]
        + np.float32(noise)
        * rng.standard_normal((num_queries, dim)).astype(np.float32)
    )
    query_sparse = []
    for g in target:
        count = max(rare_terms // 2, 1)
        picked = rng.choice(rare_terms, size=count, replace=False)
        terms = rare_base + int(g) * rare_terms + np.sort(picked)
        query_sparse.append(
            as_sparse_query(
                (terms.astype(np.int64), np.ones(count, dtype=np.float64))
            )
        )
    truth = np.stack(
        [np.flatnonzero(group == int(g)).astype(np.int64) for g in target]
    )
    return HybridDataset(
        dense=dense,
        sparse=plane,
        query_dense=query_dense,
        query_sparse=tuple(query_sparse),
        truth=truth,
        topic=topic.astype(np.int64),
        group=group.astype(np.int64),
    )
