"""Pluggable vector-store backends (memory/compression layer).

==============  ======================  ==========  =====================
kind            hot representation      bytes/dim   scoring kernel
==============  ======================  ==========  =====================
``"none"``      float32 matrices        4           BLAS (bit-identical)
``"float16"``   float16 matrices        2           up-cast GEMV/GEMM
``"int8"``      uint8 min/max codes     1           affine-rescaled GEMV
``"pq"``        PQ codes + codebooks    1/pq_dims   ADC lookup tables
==============  ======================  ==========  =====================

Compressed backends keep an optional full-precision cold tier
(``keep_exact=True``) consulted only by the ``refine=`` rerank stage and
by compaction; :meth:`VectorStore.hot_bytes` is the resident figure.
"""

from repro.store.base import (
    STORE_KINDS,
    ModalityKernel,
    VectorStore,
    make_store,
    register_store,
    store_from_arrays,
)
from repro.store.dense import DenseStore, HalfStore
from repro.store.mmap import (
    ColdPlane,
    GatherPlane,
    MmapPlane,
    ResidentPlane,
    as_cold_plane,
    evict_page_cache,
    spill_cold,
)
from repro.store.pq import PQStore
from repro.store.quant import ScalarQuantStore

__all__ = [
    "STORE_KINDS",
    "ModalityKernel",
    "VectorStore",
    "make_store",
    "register_store",
    "store_from_arrays",
    "DenseStore",
    "HalfStore",
    "ScalarQuantStore",
    "PQStore",
    "ColdPlane",
    "ResidentPlane",
    "MmapPlane",
    "GatherPlane",
    "as_cold_plane",
    "spill_cold",
    "evict_page_cache",
]
