"""Pluggable compressed vector-store layer — the backing seam of
:class:`~repro.core.multivector.MultiVectorSet`.

At production scale the corpus no longer fits hot in RAM as float32 and
memory bandwidth — not FLOPs — bounds QPS.  A :class:`VectorStore` owns
the **hot** per-modality representation every scan and frontier wave
reads (float32, float16, int8 scalar-quantised codes, or PQ codes) and
exposes **asymmetric distance kernels**: the query stays full-precision
float32 while the corpus side is decoded implicitly inside the kernel
(affine rescale for scalar quantisation, ADC lookup tables for PQ).

Two-tier layout (the DiskANN serving model): compressed codes are the
*hot* tier that every traversal touches; the original float32 vectors
are an optional *cold* tier — conceptually disk/secondary storage —
consulted only by the two-stage rerank pipeline (``search(...,
refine=r)``) for the handful of survivors per query, and by compaction
so rebuilt segments never accumulate quantisation error.
:meth:`VectorStore.hot_bytes` is therefore the resident-memory figure
benchmarks report.

Backends register themselves in :data:`STORE_KINDS`; the segment
manifest persists ``kind`` + ``dtype`` per segment and
:func:`store_from_arrays` refuses unknown ones with an actionable error
instead of failing deep inside ``.npz`` parsing.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.utils.validation import require

__all__ = [
    "ModalityKernel",
    "VectorStore",
    "STORE_KINDS",
    "register_store",
    "make_store",
    "store_from_arrays",
]


class ModalityKernel(abc.ABC):
    """Asymmetric scoring kernel: one float32 query vs one hot modality.

    Built once per (query, modality) — :class:`~repro.index.scoring.Scorer`
    holds its kernels for the whole search, so per-query preprocessing
    (the PQ ADC lookup table, the scalar-quant affine rescale) is paid
    once, not per frontier wave.
    """

    @abc.abstractmethod
    def all(self) -> np.ndarray:
        """Inner products of the query against every row, shape ``(n,)``."""

    @abc.abstractmethod
    def ids(self, ids: np.ndarray) -> np.ndarray:
        """Inner products against the rows in *ids* only."""


class VectorStore(abc.ABC):
    """Per-modality column store behind a :class:`MultiVectorSet`.

    Subclasses own the hot representation; the interface keeps every
    consumer (scorers, graph search, segment persistence, compaction)
    representation-agnostic.
    """

    #: registry key, also persisted in segment manifests.
    kind: str = "abstract"
    #: storage dtype of the hot tier, persisted for format validation.
    dtype: str = "abstract"

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of objects."""

    @property
    @abc.abstractmethod
    def dims(self) -> tuple[int, ...]:
        """Per-modality vector dimensionality."""

    @property
    def num_modalities(self) -> int:
        return len(self.dims)

    # ------------------------------------------------------------------
    # Decoding (reconstruction) — cold paths
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def modality(self, i: int) -> np.ndarray:
        """Decoded float32 ``(n, d_i)`` matrix of modality *i*.

        Exact for :class:`DenseStore`; a reconstruction elsewhere.  This
        materialises the full matrix — scan/frontier paths must use
        :meth:`query_kernel` instead.
        """

    def rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        """Decoded float32 rows *ids* of modality *i*."""
        return self.modality(i)[np.asarray(ids)]

    # ------------------------------------------------------------------
    # Exact (cold) tier — rerank + compaction
    # ------------------------------------------------------------------
    @property
    def has_exact(self) -> bool:
        """True when a full-precision cold tier is attached."""
        return False

    def exact_modality(self, i: int) -> np.ndarray:
        """Full-precision matrix of modality *i* (cold tier).

        Falls back to the decoded reconstruction when the store was
        built with ``keep_exact=False`` — rerank then degrades to a
        no-op and compaction rebuilds from reconstructions.
        """
        return self.modality(i)

    def exact_rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        """Full-precision rows for the two-stage rerank pipeline."""
        return self.exact_modality(i)[np.asarray(ids)]

    # ------------------------------------------------------------------
    # Asymmetric scoring
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def query_kernel(self, i: int, query: np.ndarray) -> ModalityKernel:
        """Kernel scoring float32 *query* against hot modality *i*."""

    def batch_scores(self, i: int, queries: np.ndarray) -> np.ndarray:
        """Inner products of a ``(b, d_i)`` query stack, shape ``(n, b)``.

        Default loops per-query kernels; dense-ish backends override
        with one GEMM per modality (the executor's exact batch wave).
        """
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        out = np.empty((self.n, queries.shape[0]), dtype=np.float32)
        for col in range(queries.shape[0]):
            out[:, col] = self.query_kernel(i, queries[col]).all()
        return out

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def subset(self, ids: np.ndarray) -> "VectorStore":
        """New store over the rows in *ids* (codebooks/scales shared)."""

    @abc.abstractmethod
    def hot_bytes(self) -> int:
        """Resident bytes of the hot tier (codes + codebooks/scales)."""

    def cold_bytes(self) -> int:
        """Logical bytes of the cold exact tier (0 when not kept).

        Counts the tier wherever it lives — RAM or a memory-mapped
        sidecar file; :meth:`resident_bytes` is the RAM-only figure.
        """
        return 0

    def resident_bytes(self) -> int:
        """RAM-resident bytes: hot tier plus any in-RAM cold tier.

        Equals ``hot_bytes() + cold_bytes()`` for all-resident stores;
        stores whose cold plane is memory-mapped subtract the mapped
        portion (the OS page cache is reclaimable, not pinned).
        """
        return self.hot_bytes() + self.cold_bytes()

    # ------------------------------------------------------------------
    # Cold-plane seam (mmap-backed cold tier)
    # ------------------------------------------------------------------
    @property
    def cold_plane(self):
        """The attached :class:`~repro.store.mmap.ColdPlane`, or None."""
        return None

    def with_cold_plane(self, plane) -> "VectorStore":
        """Same hot tier, different cold plane (shares codes/codebooks)."""
        raise ValueError(
            f"store kind {self.kind!r} has no detachable cold tier — only "
            f"compressed backends (float16/int8/pq) separate hot codes "
            f"from the exact float32 plane"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def store_meta(self) -> dict:
        """JSON-safe descriptor: at least ``kind`` and ``dtype``."""

    @abc.abstractmethod
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Array payload for a ``.npz`` segment archive.

        Mapped cold planes are *not* serialised here — their bytes
        already live in sidecar files the manifest records; only
        resident cold tiers emit ``exact_{i}`` entries.
        """

    def hot_arrays(self) -> dict[str, np.ndarray]:
        """The hot-tier subset of :meth:`to_arrays` (no ``exact_{i}``).

        What a v3 (mmap) segment archive stores, and what a sharded
        spawn ships through shared memory.
        """
        return {
            k: v for k, v in self.to_arrays().items()
            if not k.startswith("exact_")
        }

    @classmethod
    @abc.abstractmethod
    def from_arrays(cls, meta: dict, arrays: dict) -> "VectorStore":
        """Inverse of :meth:`to_arrays` + :meth:`store_meta`."""

    @classmethod
    @abc.abstractmethod
    def from_matrices(
        cls, matrices: Sequence[np.ndarray], **options
    ) -> "VectorStore":
        """Encode full-precision per-modality matrices (trains codebooks
        where the backend has any)."""


#: kind → store class; populated by :func:`register_store` at import time.
STORE_KINDS: dict[str, type[VectorStore]] = {}


def register_store(cls: type[VectorStore]) -> type[VectorStore]:
    """Class decorator adding a backend to :data:`STORE_KINDS`."""
    STORE_KINDS[cls.kind] = cls
    return cls


def make_store(
    kind: str, matrices: Sequence[np.ndarray], **options
) -> VectorStore:
    """Encode *matrices* with the backend registered under *kind*."""
    require(
        kind in STORE_KINDS,
        f"unknown vector-store kind {kind!r}; supported: "
        f"{sorted(STORE_KINDS)}",
    )
    return STORE_KINDS[kind].from_matrices(matrices, **options)


def store_from_arrays(meta: dict, arrays: dict) -> VectorStore:
    """Rebuild a persisted store, validating kind and dtype first.

    Raises a clear, actionable error for stores written by a newer (or
    corrupted) format instead of failing deep inside array parsing.
    """
    kind = meta.get("kind")
    if kind not in STORE_KINDS:
        raise ValueError(
            f"segment declares vector-store kind {kind!r} but this build "
            f"only supports {sorted(STORE_KINDS)} — the index was written "
            f"by a newer version; upgrade the library or re-save the index "
            f"with a supported compression setting"
        )
    cls = STORE_KINDS[kind]
    dtype = meta.get("dtype")
    if dtype != cls.dtype:
        raise ValueError(
            f"segment store kind {kind!r} declares dtype {dtype!r} but "
            f"this build stores it as {cls.dtype!r} — the archive is from "
            f"an incompatible format version; re-save the index with this "
            f"library version"
        )
    return cls.from_arrays(meta, arrays)
