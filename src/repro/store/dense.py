"""Uncompressed and half-precision vector stores.

:class:`DenseStore` is today's behaviour made explicit: the hot tier *is*
the float32 corpus, kernels are plain BLAS products, and every result is
bit-identical to the historical in-matrix layout.

:class:`HalfStore` halves resident bytes by keeping the hot tier in
float16; kernels up-cast to float32 inside the product (float16 storage,
float32 accumulate), so scores equal the decoded reconstruction's exact
inner products.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.store.base import ModalityKernel, VectorStore, register_store
from repro.store.mmap import ColdPlane, as_cold_plane
from repro.utils.validation import require

__all__ = ["DenseStore", "HalfStore"]


class _MatKernel(ModalityKernel):
    """Gather + GEMV over one stored matrix (float32 or float16)."""

    __slots__ = ("mat", "q")

    def __init__(self, mat: np.ndarray, q: np.ndarray):
        self.mat = mat
        self.q = np.ascontiguousarray(q, dtype=np.float32)

    def all(self) -> np.ndarray:
        return self.mat @ self.q

    def ids(self, ids: np.ndarray) -> np.ndarray:
        return self.mat[np.asarray(ids)] @ self.q


def _check_matrices(matrices: Sequence[np.ndarray], dtype) -> tuple[np.ndarray, ...]:
    mats = tuple(np.ascontiguousarray(m, dtype=dtype) for m in matrices)
    require(len(mats) >= 1, "at least one modality matrix required")
    n = mats[0].shape[0]
    for i, m in enumerate(mats):
        require(m.ndim == 2, f"modality {i} must be 2-D")
        require(m.shape[0] == n, f"modality {i} has {m.shape[0]} rows, expected {n}")
    return mats


@register_store
class DenseStore(VectorStore):
    """Float32 hot tier — the exact, bit-identical reference backend."""

    kind = "none"
    dtype = "float32"

    def __init__(self, matrices: Sequence[np.ndarray]):
        self._mats = _check_matrices(matrices, np.float32)

    # -- shape ----------------------------------------------------------
    @property
    def n(self) -> int:
        return self._mats[0].shape[0]

    @property
    def dims(self) -> tuple[int, ...]:
        return tuple(m.shape[1] for m in self._mats)

    # -- decode / exact -------------------------------------------------
    def modality(self, i: int) -> np.ndarray:
        return self._mats[i]

    @property
    def has_exact(self) -> bool:
        return True

    # -- scoring --------------------------------------------------------
    def query_kernel(self, i: int, query: np.ndarray) -> ModalityKernel:
        return _MatKernel(self._mats[i], query)

    def batch_scores(self, i: int, queries: np.ndarray) -> np.ndarray:
        q = np.ascontiguousarray(queries, dtype=np.float32)
        return self._mats[i] @ q.T

    # -- lifecycle ------------------------------------------------------
    def subset(self, ids: np.ndarray) -> "DenseStore":
        ids = np.asarray(ids)
        return DenseStore([m[ids] for m in self._mats])

    def hot_bytes(self) -> int:
        return int(sum(m.nbytes for m in self._mats))

    # -- persistence ----------------------------------------------------
    def store_meta(self) -> dict:
        return {"kind": self.kind, "dtype": self.dtype,
                "num_modalities": self.num_modalities}

    def to_arrays(self) -> dict[str, np.ndarray]:
        # Keys match the v1 segment layout, so dense archives stay
        # readable by (and from) the pre-store format.
        return {f"mod_{i}": m for i, m in enumerate(self._mats)}

    @classmethod
    def from_arrays(cls, meta: dict, arrays: dict) -> "DenseStore":
        m = int(meta["num_modalities"])
        return cls([arrays[f"mod_{i}"] for i in range(m)])

    @classmethod
    def from_matrices(cls, matrices: Sequence[np.ndarray], **options) -> "DenseStore":
        require(not options, f"DenseStore takes no options, got {sorted(options)}")
        return cls(matrices)


@register_store
class HalfStore(VectorStore):
    """Float16 hot tier, float32 accumulate — 2× fewer resident bytes.

    ``keep_exact`` (default True) retains the original float32 matrices
    as the cold tier for ``refine=`` rerank and lossless compaction.
    """

    kind = "float16"
    dtype = "float16"

    def __init__(
        self,
        half: Sequence[np.ndarray],
        exact: Sequence[np.ndarray] | ColdPlane | None = None,
    ):
        self._half = _check_matrices(half, np.float16)
        self._exact = as_cold_plane(
            exact,
            n=self._half[0].shape[0],
            dims=tuple(m.shape[1] for m in self._half),
        )

    # -- shape ----------------------------------------------------------
    @property
    def n(self) -> int:
        return self._half[0].shape[0]

    @property
    def dims(self) -> tuple[int, ...]:
        return tuple(m.shape[1] for m in self._half)

    # -- decode / exact -------------------------------------------------
    def modality(self, i: int) -> np.ndarray:
        return self._half[i].astype(np.float32)

    def rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        return self._half[i][np.asarray(ids)].astype(np.float32)

    @property
    def has_exact(self) -> bool:
        return self._exact is not None

    def exact_modality(self, i: int) -> np.ndarray:
        if self._exact is not None:
            return self._exact.modality(i)
        return self.modality(i)

    def exact_rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        if self._exact is not None:
            return self._exact.rows(i, np.asarray(ids))
        return self.rows(i, np.asarray(ids))

    # -- scoring --------------------------------------------------------
    def query_kernel(self, i: int, query: np.ndarray) -> ModalityKernel:
        # float16 @ float32 promotes to a float32 product (the up-cast
        # happens inside NumPy; storage stays half precision).
        return _MatKernel(self._half[i], query)

    def batch_scores(self, i: int, queries: np.ndarray) -> np.ndarray:
        q = np.ascontiguousarray(queries, dtype=np.float32)
        return self._half[i] @ q.T

    # -- lifecycle ------------------------------------------------------
    def subset(self, ids: np.ndarray) -> "HalfStore":
        ids = np.asarray(ids)
        exact = None if self._exact is None else self._exact.subset(ids)
        return HalfStore([m[ids] for m in self._half], exact)

    def hot_bytes(self) -> int:
        return int(sum(m.nbytes for m in self._half))

    def cold_bytes(self) -> int:
        return 0 if self._exact is None else self._exact.nbytes()

    def resident_bytes(self) -> int:
        cold = 0 if self._exact is None else self._exact.resident_bytes()
        return self.hot_bytes() + cold

    @property
    def cold_plane(self) -> ColdPlane | None:
        return self._exact

    def with_cold_plane(self, plane: ColdPlane | None) -> "HalfStore":
        return HalfStore(self._half, plane)

    # -- persistence ----------------------------------------------------
    def store_meta(self) -> dict:
        return {"kind": self.kind, "dtype": self.dtype,
                "num_modalities": self.num_modalities,
                "keep_exact": self.has_exact}

    def to_arrays(self) -> dict[str, np.ndarray]:
        out = {f"half_{i}": m for i, m in enumerate(self._half)}
        if self._exact is not None and self._exact.is_resident:
            out.update(
                {
                    f"exact_{i}": self._exact.modality(i)
                    for i in range(self.num_modalities)
                }
            )
        return out

    @classmethod
    def from_arrays(cls, meta: dict, arrays: dict) -> "HalfStore":
        m = int(meta["num_modalities"])
        half = [arrays[f"half_{i}"] for i in range(m)]
        exact = None
        if meta.get("keep_exact") and f"exact_0" in arrays:
            exact = [arrays[f"exact_{i}"] for i in range(m)]
        return cls(half, exact)

    @classmethod
    def from_matrices(
        cls, matrices: Sequence[np.ndarray], keep_exact: bool = True, **options
    ) -> "HalfStore":
        require(not options, f"HalfStore options: keep_exact; got {sorted(options)}")
        mats = _check_matrices(matrices, np.float32)
        return cls([m.astype(np.float16) for m in mats],
                   mats if keep_exact else None)
