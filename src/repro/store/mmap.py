"""Memory-mapped cold tier: the beyond-RAM seam of the vector stores.

The two-tier hot/cold split (compressed codes hot, exact float32 cold)
keeps QPS bounded by the hot tier — the cold tier is touched for ~40
rerank rows per query plus compaction.  Keeping it resident therefore
wastes the bulk of RAM: at PQ the hot tier is ~116 bytes/vector while
the cold tier is ``4·d``.  This module makes the cold tier's *location*
pluggable:

``ResidentPlane``
    float32 matrices in RAM — bit-for-bit today's behaviour.
``MmapPlane``
    one uncompressed ``.npy`` file per modality, opened lazily with
    ``np.load(..., mmap_mode="r")`` on first probe.  A rerank gather
    (``plane.rows``) pages in only the touched rows; nothing is read at
    construction beyond the 128-byte header (validated eagerly so a
    truncated file fails loudly at load, not mid-query).
``GatherPlane``
    a row-addressed view over several underlying planes — how a
    :class:`~repro.service.sharded.ShardedService` worker serves its
    shard's cold rows straight out of the parent's segment files
    without ever receiving them through shared memory.

Bit-identity contract: every plane returns the *same float32 bytes* the
resident path would, so ``rerank_exact``/``query_ids_exact`` results
are bit-identical regardless of where the cold tier lives.  The memory
split is reported per tier: ``hot_bytes`` (codes, always resident),
``cold_bytes`` (logical size of the exact tier wherever it lives) and
``resident_bytes`` (hot plus whatever part of the cold tier is RAM).

``.npz`` archives are zip files and cannot be memory-mapped, which is
why mmap cold tiers live in *sidecar* ``.npy`` files next to the
segment archive (see ``must-segments-v3`` in
:mod:`repro.index.segments`).
"""

from __future__ import annotations

import abc
import os
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.store.base import VectorStore

__all__ = [
    "ColdPlane",
    "ResidentPlane",
    "MmapPlane",
    "GatherPlane",
    "as_cold_plane",
    "spill_cold",
    "evict_page_cache",
]


class ColdPlane(abc.ABC):
    """Full-precision float32 cold tier behind a compressed store."""

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of rows."""

    @property
    @abc.abstractmethod
    def dims(self) -> tuple[int, ...]:
        """Per-modality vector dimensionality."""

    @property
    def num_modalities(self) -> int:
        return len(self.dims)

    @property
    @abc.abstractmethod
    def is_resident(self) -> bool:
        """True when the plane's bytes live in RAM (not a file mapping)."""

    @abc.abstractmethod
    def modality(self, i: int) -> np.ndarray:
        """Full ``(n, d_i)`` float32 matrix of modality *i*.

        Mapped planes return the memmap itself (zero-copy; consumers
        that fancy-index it page in only the touched rows).  Gather
        planes materialise — reserve for build/compaction paths.
        """

    @abc.abstractmethod
    def rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        """Float32 rows *ids* of modality *i* (pages in only those rows)."""

    @abc.abstractmethod
    def subset(self, ids: np.ndarray) -> "ColdPlane":
        """Plane over the rows in *ids*, preserving their order."""

    def nbytes(self) -> int:
        """Logical bytes of the cold tier, wherever it lives."""
        return 4 * self.n * int(sum(self.dims))

    @abc.abstractmethod
    def resident_bytes(self) -> int:
        """The RAM-resident portion of :meth:`nbytes` (0 for pure mmap)."""


class ResidentPlane(ColdPlane):
    """Cold tier held in RAM — bit-for-bit the historical behaviour."""

    __slots__ = ("_mats",)

    def __init__(self, matrices: Sequence[np.ndarray]):
        mats = tuple(np.ascontiguousarray(m, dtype=np.float32) for m in matrices)
        require(len(mats) >= 1, "cold plane needs at least one modality")
        n = mats[0].shape[0]
        for i, m in enumerate(mats):
            require(m.ndim == 2, f"cold modality {i} must be 2-D")
            require(
                m.shape[0] == n,
                f"cold modality {i} has {m.shape[0]} rows, expected {n}",
            )
        self._mats = mats

    @property
    def n(self) -> int:
        return self._mats[0].shape[0]

    @property
    def dims(self) -> tuple[int, ...]:
        return tuple(m.shape[1] for m in self._mats)

    @property
    def is_resident(self) -> bool:
        return True

    def modality(self, i: int) -> np.ndarray:
        return self._mats[i]

    def rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        return self._mats[i][np.asarray(ids)]

    def subset(self, ids: np.ndarray) -> "ResidentPlane":
        ids = np.asarray(ids)
        return ResidentPlane([m[ids] for m in self._mats])

    def nbytes(self) -> int:
        return int(sum(m.nbytes for m in self._mats))

    def resident_bytes(self) -> int:
        return self.nbytes()


def _read_npy_header(path: Path) -> tuple[tuple[int, ...], np.dtype, int]:
    """Parse an ``.npy`` header without touching the data pages.

    Returns ``(shape, dtype, data_offset)`` or raises ``ValueError``
    with an actionable message for anything that is not a well-formed
    2-D C-order array file.
    """
    try:
        with open(path, "rb") as fh:
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                header = np.lib.format.read_array_header_1_0(fh)
            elif version == (2, 0):
                header = np.lib.format.read_array_header_2_0(fh)
            else:
                raise ValueError(f"unsupported .npy format version {version}")
            shape, fortran, dtype = header
            offset = fh.tell()
    except FileNotFoundError:
        raise FileNotFoundError(
            f"cold-tier file {path} is missing — the index directory is "
            f"incomplete; restore the sidecar .npy files next to the "
            f"segment archives or re-save the index"
        ) from None
    except (ValueError, OSError) as exc:
        raise ValueError(
            f"cold-tier file {path} has a corrupt .npy header ({exc}) — "
            f"the file was truncated or overwritten; re-save the index"
        ) from exc
    require(
        not fortran,
        f"cold-tier file {path} is Fortran-ordered; expected C-order",
    )
    return tuple(int(s) for s in shape), np.dtype(dtype), int(offset)


#: Rows closer than this share one ``WILLNEED`` advice range — beyond
#: it a fresh range costs less than reading the untouched gap.  64 rows
#: of a typical 128-d float32 modality is two 16 KiB readahead windows.
_ADVISE_GAP = 64


class MmapPlane(ColdPlane):
    """Cold tier in per-modality ``.npy`` files, mapped lazily.

    Headers are validated eagerly (shape, dtype, file size) so a
    missing or truncated file fails at load time with a pointed error;
    the data mapping itself is deferred to the first probe, which is
    what lets a sealed segment load without touching its cold bytes.
    """

    __slots__ = ("_paths", "_shapes", "_offsets", "_maps", "_fds")

    def __init__(self, paths: Sequence[str | Path]):
        require(len(paths) >= 1, "mmap cold plane needs at least one file")
        self._paths = tuple(Path(p) for p in paths)
        shapes: list[tuple[int, ...]] = []
        offsets: list[int] = []
        for path in self._paths:
            shape, dtype, offset = _read_npy_header(path)
            require(
                len(shape) == 2,
                f"cold-tier file {path} holds a {len(shape)}-D array; "
                f"expected a 2-D (n, d) matrix",
            )
            require(
                dtype == np.dtype(np.float32),
                f"cold-tier file {path} holds dtype {dtype}; the cold "
                f"tier is always float32 — the file is not a cold-tier "
                f"sidecar or was written by an incompatible version",
            )
            expected = offset + 4 * shape[0] * shape[1]
            actual = path.stat().st_size
            require(
                actual == expected,
                f"cold-tier file {path} is truncated: {actual} bytes on "
                f"disk, header promises {expected} — restore the file "
                f"from a backup or re-save the index",
            )
            shapes.append(shape)
            offsets.append(offset)
        n = shapes[0][0]
        for path, shape in zip(self._paths, shapes):
            require(
                shape[0] == n,
                f"cold-tier file {path} has {shape[0]} rows but its "
                f"sibling modalities have {n} — the sidecar set is "
                f"inconsistent; re-save the index",
            )
        self._shapes = tuple(shapes)
        self._offsets = tuple(offsets)
        self._maps: list[np.ndarray | None] = [None] * len(self._paths)
        self._fds: list[int | None] = [None] * len(self._paths)

    @property
    def paths(self) -> tuple[Path, ...]:
        return self._paths

    @property
    def n(self) -> int:
        return self._shapes[0][0]

    @property
    def dims(self) -> tuple[int, ...]:
        return tuple(shape[1] for shape in self._shapes)

    @property
    def is_resident(self) -> bool:
        return False

    def _map(self, i: int) -> np.ndarray:
        mapped = self._maps[i]
        if mapped is None:
            mapped = np.load(self._paths[i], mmap_mode="r")
            self._maps[i] = mapped
        return mapped

    def modality(self, i: int) -> np.ndarray:
        return self._map(i)

    def rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        # Fancy-indexing a memmap pages in only the touched rows and
        # returns an ordinary in-RAM ndarray of the same bytes.  A
        # WILLNEED advice ahead of the gather lets the kernel start
        # readahead for all touched ranges at once instead of faulting
        # them in one row at a time (a large win on a cold page cache;
        # harmless when the pages are already resident).
        ids = np.asarray(ids)
        self._advise_willneed(i, ids)
        return self._map(i)[ids]

    def _advise_willneed(self, i: int, ids: np.ndarray) -> None:
        """Issue ``posix_fadvise(WILLNEED)`` for the rows about to be read.

        Touched rows are coalesced into contiguous runs (rows less than
        ``_ADVISE_GAP`` apart share one advice call) so a scattered
        gather issues a handful of syscalls, not one per row.  No-op on
        platforms without ``posix_fadvise`` and for empty gathers.
        """
        if not hasattr(os, "posix_fadvise") or ids.size == 0:
            return
        fd = self._fds[i]
        if fd is None:
            fd = os.open(str(self._paths[i]), os.O_RDONLY)
            self._fds[i] = fd
        row_bytes = 4 * self._shapes[i][1]
        base = self._offsets[i]
        sorted_ids = np.unique(ids.astype(np.int64, copy=False))
        # Runs split where consecutive touched rows are far apart.
        splits = np.flatnonzero(np.diff(sorted_ids) > _ADVISE_GAP) + 1
        for run in np.split(sorted_ids, splits):
            start = base + int(run[0]) * row_bytes
            length = (int(run[-1]) - int(run[0]) + 1) * row_bytes
            try:
                os.posix_fadvise(fd, start, length, os.POSIX_FADV_WILLNEED)
            except OSError:  # pragma: no cover - advice is best-effort
                return

    def subset(self, ids: np.ndarray) -> "GatherPlane":
        ids = np.asarray(ids, dtype=np.int64)
        return GatherPlane([self], np.zeros(ids.shape[0], dtype=np.int64), ids)

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        for fd in getattr(self, "_fds", ()):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass

    def nbytes(self) -> int:
        return 4 * self.n * int(sum(self.dims))

    def resident_bytes(self) -> int:
        # The OS page cache may hold recently-touched pages, but they
        # are reclaimable — nothing here pins process-resident memory.
        return 0


class GatherPlane(ColdPlane):
    """Row-addressed composite over several source planes.

    Row ``j`` of this plane is row ``row_of[j]`` of source plane
    ``src_of[j]``.  A sharded worker uses one of these to read its
    shard's cold rows straight out of the parent's per-segment mmap
    files (plus an optional small resident source for rows that only
    exist in the parent's in-RAM delta).
    """

    __slots__ = ("_sources", "_src_of", "_row_of")

    def __init__(
        self,
        sources: Sequence[ColdPlane],
        src_of: np.ndarray,
        row_of: np.ndarray,
    ):
        require(len(sources) >= 1, "gather plane needs at least one source")
        dims = sources[0].dims
        for s, source in enumerate(sources):
            require(
                source.dims == dims,
                f"gather source {s} has dims {source.dims}, expected {dims}",
            )
        self._sources = tuple(sources)
        self._src_of = np.ascontiguousarray(src_of, dtype=np.int64)
        self._row_of = np.ascontiguousarray(row_of, dtype=np.int64)
        require(
            self._src_of.shape == self._row_of.shape and self._src_of.ndim == 1,
            "src_of and row_of must be equal-length 1-D arrays",
        )

    @property
    def n(self) -> int:
        return int(self._src_of.shape[0])

    @property
    def dims(self) -> tuple[int, ...]:
        return self._sources[0].dims

    @property
    def is_resident(self) -> bool:
        return False

    def rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        src = self._src_of[ids]
        row = self._row_of[ids]
        out = np.empty((src.shape[0], self.dims[i]), dtype=np.float32)
        for s in np.unique(src):
            mask = src == s
            out[mask] = self._sources[s].rows(i, row[mask])
        return out

    def modality(self, i: int) -> np.ndarray:
        return self.rows(i, np.arange(self.n))

    def subset(self, ids: np.ndarray) -> "GatherPlane":
        ids = np.asarray(ids)
        return GatherPlane(self._sources, self._src_of[ids], self._row_of[ids])

    def resident_bytes(self) -> int:
        return int(sum(s.resident_bytes() for s in self._sources))


def as_cold_plane(
    exact: "Sequence[np.ndarray] | ColdPlane | None",
    n: int,
    dims: tuple[int, ...],
) -> ColdPlane | None:
    """Normalise a store's ``exact=`` argument into a cold plane.

    Accepts ``None`` (no cold tier), a ready-made :class:`ColdPlane`,
    or the historical sequence of float32 matrices (wrapped into a
    :class:`ResidentPlane`).  Shape-checks against the hot tier either
    way.
    """
    if exact is None:
        return None
    plane = exact if isinstance(exact, ColdPlane) else ResidentPlane(exact)
    require(
        plane.n == n and plane.dims == dims,
        f"cold tier shape mismatch: hot tier is n={n}, dims={dims}; "
        f"cold plane is n={plane.n}, dims={plane.dims}",
    )
    return plane


def spill_cold(
    store: "VectorStore", directory: str | Path, stem: str
) -> "VectorStore":
    """Write a store's cold tier to sidecar files and re-seat it on mmap.

    Writes one ``{stem}.cold_{i}.npy`` per modality under *directory*
    (streamed by ``np.save``; nothing extra is materialised when the
    source is already resident) and returns the same store with its
    cold plane replaced by an :class:`MmapPlane` over those files.
    """
    require(
        store.has_exact,
        f"store kind {store.kind!r} has no exact cold tier to spill — "
        f"build it with keep_exact=True",
    )
    require(
        store.kind != "none",
        "dense stores keep the float32 corpus as the hot tier; an mmap "
        "cold tier requires a compressed backend "
        "(float16/int8/pq) so graph traversal never touches the mapping",
    )
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for i in range(store.num_modalities):
        target = out_dir / f"{stem}.cold_{i}.npy"
        np.save(
            target,
            np.ascontiguousarray(store.exact_modality(i), dtype=np.float32),
        )
        paths.append(target)
    return store.with_cold_plane(MmapPlane(paths))


def evict_page_cache(plane: ColdPlane) -> bool:
    """Best-effort eviction of a mapped plane's pages from the OS cache.

    Used by the mmap bench to measure a genuinely cold first read.
    Returns True when the advice was issued (Linux/POSIX), False when
    unsupported or the plane has no file backing.
    """
    if not isinstance(plane, MmapPlane) or not hasattr(os, "posix_fadvise"):
        return False
    for path in plane.paths:
        fd = os.open(str(path), os.O_RDONLY)
        try:
            os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
        finally:
            os.close(fd)
    return True
