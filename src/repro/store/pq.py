"""Product quantisation with per-modality codebooks and ADC kernels.

Each modality's vectors are split into ``M`` contiguous subvectors of
``pq_dims`` dimensions (the trailing subvector is zero-padded, which
leaves inner products unchanged); a k-means codebook of up to 256
centroids is trained per subspace at build time, and every row is stored
as ``M`` uint8 centroid ids — ``d/pq_dims`` bytes instead of ``4·d``.

Scoring is **asymmetric distance computation** (ADC): the kernel
precomputes one lookup table ``lut[m, c] = codebook[m][c] · q[m]`` per
query, after which scoring any row is ``Σ_m lut[m, codes[row, m]]`` —
pure table gathers, no decoding, exactly the inner product of the query
with the row's reconstruction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.store.base import ModalityKernel, VectorStore, register_store
from repro.store.mmap import ColdPlane, as_cold_plane
from repro.utils.validation import require

__all__ = ["PQStore"]


def _kmeans(
    data: np.ndarray, ncent: int, rng: np.random.Generator, iters: int
) -> np.ndarray:
    """Plain Lloyd's k-means (random init, empty clusters resampled)."""
    n = data.shape[0]
    centroids = data[rng.choice(n, size=ncent, replace=False)].copy()
    for _ in range(iters):
        # Nearest centroid by ||x−c||² = ||x||² − 2·x·c + ||c||².
        dots = data @ centroids.T
        c2 = np.einsum("ij,ij->i", centroids, centroids)
        assign = np.argmax(2.0 * dots - c2[None, :], axis=1)
        for c in range(ncent):
            members = assign == c
            if members.any():
                centroids[c] = data[members].mean(axis=0)
            else:
                centroids[c] = data[rng.integers(0, n)]
    return centroids.astype(np.float32)


def _pad(mat: np.ndarray, m_sub: int, ds: int) -> np.ndarray:
    """Zero-pad columns so the matrix reshapes into (n, M, ds)."""
    n, d = mat.shape
    padded = m_sub * ds
    if padded == d:
        return mat
    out = np.zeros((n, padded), dtype=np.float32)
    out[:, :d] = mat
    return out


class _ADCKernel(ModalityKernel):
    __slots__ = ("codes", "lut")

    def __init__(self, codes: np.ndarray, codebook: np.ndarray, q: np.ndarray):
        self.codes = codes  # (n, M) uint8
        m_sub, ncent, ds = codebook.shape
        q_pad = np.zeros(m_sub * ds, dtype=np.float32)
        q_pad[: q.shape[0]] = np.ascontiguousarray(q, dtype=np.float32)
        # lut[m, c] = codebook[m, c] · q_sub[m]
        self.lut = np.einsum(
            "mcd,md->mc", codebook, q_pad.reshape(m_sub, ds)
        ).astype(np.float32)

    def _gather(self, codes: np.ndarray) -> np.ndarray:
        out = np.zeros(codes.shape[0], dtype=np.float32)
        for m in range(self.lut.shape[0]):
            out += self.lut[m, codes[:, m]]
        return out

    def all(self) -> np.ndarray:
        return self._gather(self.codes)

    def ids(self, ids: np.ndarray) -> np.ndarray:
        return self._gather(self.codes[np.asarray(ids)])


@register_store
class PQStore(VectorStore):
    """Product-quantised hot tier: uint8 codes + per-subspace codebooks."""

    kind = "pq"
    dtype = "uint8"

    def __init__(
        self,
        codes: Sequence[np.ndarray],
        codebooks: Sequence[np.ndarray],
        dims: Sequence[int],
        exact: Sequence[np.ndarray] | ColdPlane | None = None,
    ):
        self._codes = tuple(np.ascontiguousarray(c, dtype=np.uint8) for c in codes)
        self._books = tuple(
            np.ascontiguousarray(b, dtype=np.float32) for b in codebooks
        )
        self._dims = tuple(int(d) for d in dims)
        require(len(self._codes) == len(self._books) == len(self._dims),
                "one codebook per modality required")
        n = self._codes[0].shape[0]
        for i, (c, b, d) in enumerate(zip(self._codes, self._books, self._dims)):
            require(c.ndim == 2 and c.shape[0] == n,
                    f"modality {i} codes must be (n, M)")
            require(b.ndim == 3 and b.shape[0] == c.shape[1],
                    f"modality {i} codebook must be (M, ncent, ds)")
            require(b.shape[0] * b.shape[2] >= d,
                    f"modality {i} codebook covers fewer than d={d} dims")
        self._exact = as_cold_plane(exact, n=n, dims=self._dims)

    # -- shape ----------------------------------------------------------
    @property
    def n(self) -> int:
        return self._codes[0].shape[0]

    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    # -- decode / exact -------------------------------------------------
    def _decode(self, i: int, codes: np.ndarray) -> np.ndarray:
        book = self._books[i]
        m_sub, _, ds = book.shape
        out = np.empty((codes.shape[0], m_sub * ds), dtype=np.float32)
        for m in range(m_sub):
            out[:, m * ds:(m + 1) * ds] = book[m][codes[:, m]]
        return out[:, : self._dims[i]]

    def modality(self, i: int) -> np.ndarray:
        return self._decode(i, self._codes[i])

    def rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        return self._decode(i, self._codes[i][np.asarray(ids)])

    @property
    def has_exact(self) -> bool:
        return self._exact is not None

    def exact_modality(self, i: int) -> np.ndarray:
        if self._exact is not None:
            return self._exact.modality(i)
        return self.modality(i)

    def exact_rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        if self._exact is not None:
            return self._exact.rows(i, np.asarray(ids))
        return self.rows(i, np.asarray(ids))

    # -- scoring --------------------------------------------------------
    def query_kernel(self, i: int, query: np.ndarray) -> ModalityKernel:
        return _ADCKernel(self._codes[i], self._books[i], query)

    def batch_scores(self, i: int, queries: np.ndarray) -> np.ndarray:
        q = np.ascontiguousarray(queries, dtype=np.float32)  # (b, d)
        book = self._books[i]
        m_sub, _, ds = book.shape
        q_pad = np.zeros((q.shape[0], m_sub * ds), dtype=np.float32)
        q_pad[:, : q.shape[1]] = q
        q_sub = q_pad.reshape(q.shape[0], m_sub, ds)
        # luts[b, m, c] = codebook[m, c] · q_sub[b, m]
        luts = np.einsum("mcd,bmd->bmc", book, q_sub).astype(np.float32)
        codes = self._codes[i]
        out = np.zeros((self.n, q.shape[0]), dtype=np.float32)
        for m in range(m_sub):
            out += luts[:, m, :].T[codes[:, m]]  # (n, b) gather
        return out

    # -- lifecycle ------------------------------------------------------
    def subset(self, ids: np.ndarray) -> "PQStore":
        ids = np.asarray(ids)
        exact = None if self._exact is None else self._exact.subset(ids)
        return PQStore(
            [c[ids] for c in self._codes], self._books, self._dims, exact
        )

    def hot_bytes(self) -> int:
        return int(
            sum(c.nbytes for c in self._codes)
            + sum(b.nbytes for b in self._books)
        )

    def cold_bytes(self) -> int:
        return 0 if self._exact is None else self._exact.nbytes()

    def resident_bytes(self) -> int:
        cold = 0 if self._exact is None else self._exact.resident_bytes()
        return self.hot_bytes() + cold

    @property
    def cold_plane(self) -> ColdPlane | None:
        return self._exact

    def with_cold_plane(self, plane: ColdPlane | None) -> "PQStore":
        return PQStore(self._codes, self._books, self._dims, plane)

    # -- persistence ----------------------------------------------------
    def store_meta(self) -> dict:
        return {"kind": self.kind, "dtype": self.dtype,
                "num_modalities": self.num_modalities,
                "dims": list(self._dims),
                "keep_exact": self.has_exact}

    def to_arrays(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for i in range(self.num_modalities):
            out[f"codes_{i}"] = self._codes[i]
            out[f"codebook_{i}"] = self._books[i]
            if self._exact is not None and self._exact.is_resident:
                out[f"exact_{i}"] = self._exact.modality(i)
        return out

    @classmethod
    def from_arrays(cls, meta: dict, arrays: dict) -> "PQStore":
        m = int(meta["num_modalities"])
        exact = None
        if meta.get("keep_exact") and "exact_0" in arrays:
            exact = [arrays[f"exact_{i}"] for i in range(m)]
        return cls(
            [arrays[f"codes_{i}"] for i in range(m)],
            [arrays[f"codebook_{i}"] for i in range(m)],
            [int(d) for d in meta["dims"]],
            exact,
        )

    @classmethod
    def from_matrices(
        cls,
        matrices: Sequence[np.ndarray],
        pq_dims: int = 4,
        pq_centroids: int = 256,
        pq_iters: int = 8,
        seed: int = 0,
        keep_exact: bool = True,
        **options,
    ) -> "PQStore":
        require(not options,
                f"PQStore options: pq_dims, pq_centroids, pq_iters, seed, "
                f"keep_exact; got {sorted(options)}")
        require(1 <= pq_centroids <= 256, "pq_centroids must fit in uint8")
        require(pq_dims >= 1, "pq_dims must be positive")
        mats = [np.ascontiguousarray(m, dtype=np.float32) for m in matrices]
        rng = np.random.default_rng(seed)
        codes, books = [], []
        for mat in mats:
            n, d = mat.shape
            m_sub = (d + pq_dims - 1) // pq_dims
            padded = _pad(mat, m_sub, pq_dims).reshape(n, m_sub, pq_dims)
            ncent = min(pq_centroids, n)
            book = np.empty((m_sub, ncent, pq_dims), dtype=np.float32)
            mat_codes = np.empty((n, m_sub), dtype=np.uint8)
            for m in range(m_sub):
                sub = np.ascontiguousarray(padded[:, m, :])
                cents = _kmeans(sub, ncent, rng, pq_iters)
                book[m] = cents
                dots = sub @ cents.T
                c2 = np.einsum("ij,ij->i", cents, cents)
                mat_codes[:, m] = np.argmax(
                    2.0 * dots - c2[None, :], axis=1
                ).astype(np.uint8)
            codes.append(mat_codes)
            books.append(book)
        return cls(codes, books, [m.shape[1] for m in mats],
                   mats if keep_exact else None)
