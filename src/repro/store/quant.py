"""Int8 scalar quantisation (per-modality, per-dimension min/max).

Each modality matrix is quantised column-wise: dimension ``d`` of
modality ``i`` maps the range ``[min_d, max_d]`` onto the 256 uint8
levels, so a stored code reconstructs as ``min_d + step_d · code``.
4× fewer resident bytes than float32 at ~0.2% reconstruction error on
unit-norm data.

The asymmetric kernel never decodes: because reconstruction is affine,

    IP(decode(row), q) = codes_row · (step ⊙ q) + min · q

— one integer-matrix GEMV against a pre-scaled query plus a scalar
offset, computed once per (query, modality) by the kernel constructor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.store.base import ModalityKernel, VectorStore, register_store
from repro.store.mmap import ColdPlane, as_cold_plane
from repro.utils.validation import require

__all__ = ["ScalarQuantStore"]


class _SQKernel(ModalityKernel):
    __slots__ = ("codes", "q_scaled", "offset")

    def __init__(self, codes: np.ndarray, lo: np.ndarray, step: np.ndarray,
                 q: np.ndarray):
        q = np.ascontiguousarray(q, dtype=np.float32)
        self.codes = codes
        self.q_scaled = (step * q).astype(np.float32)
        self.offset = np.float32(lo @ q)

    def all(self) -> np.ndarray:
        return self.codes @ self.q_scaled + self.offset

    def ids(self, ids: np.ndarray) -> np.ndarray:
        return self.codes[np.asarray(ids)] @ self.q_scaled + self.offset


@register_store
class ScalarQuantStore(VectorStore):
    """Per-dimension min/max scalar quantisation to uint8 codes."""

    kind = "int8"
    dtype = "uint8"

    def __init__(
        self,
        codes: Sequence[np.ndarray],
        lows: Sequence[np.ndarray],
        steps: Sequence[np.ndarray],
        exact: Sequence[np.ndarray] | ColdPlane | None = None,
    ):
        self._codes = tuple(np.ascontiguousarray(c, dtype=np.uint8) for c in codes)
        self._lows = tuple(np.ascontiguousarray(v, dtype=np.float32) for v in lows)
        self._steps = tuple(np.ascontiguousarray(v, dtype=np.float32) for v in steps)
        require(len(self._codes) == len(self._lows) == len(self._steps),
                "one (low, step) pair per modality required")
        n = self._codes[0].shape[0]
        for i, (c, lo, st) in enumerate(
            zip(self._codes, self._lows, self._steps)
        ):
            require(c.ndim == 2 and c.shape[0] == n,
                    f"modality {i} codes must be (n, d)")
            require(lo.shape == (c.shape[1],) and st.shape == (c.shape[1],),
                    f"modality {i} scale vectors must match its dimension")
        self._exact = as_cold_plane(
            exact, n=n, dims=tuple(c.shape[1] for c in self._codes)
        )

    # -- shape ----------------------------------------------------------
    @property
    def n(self) -> int:
        return self._codes[0].shape[0]

    @property
    def dims(self) -> tuple[int, ...]:
        return tuple(c.shape[1] for c in self._codes)

    # -- decode / exact -------------------------------------------------
    def modality(self, i: int) -> np.ndarray:
        return (
            self._codes[i].astype(np.float32) * self._steps[i] + self._lows[i]
        )

    def rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        rows = self._codes[i][np.asarray(ids)].astype(np.float32)
        return rows * self._steps[i] + self._lows[i]

    @property
    def has_exact(self) -> bool:
        return self._exact is not None

    def exact_modality(self, i: int) -> np.ndarray:
        if self._exact is not None:
            return self._exact.modality(i)
        return self.modality(i)

    def exact_rows(self, i: int, ids: np.ndarray) -> np.ndarray:
        if self._exact is not None:
            return self._exact.rows(i, np.asarray(ids))
        return self.rows(i, np.asarray(ids))

    # -- scoring --------------------------------------------------------
    def query_kernel(self, i: int, query: np.ndarray) -> ModalityKernel:
        return _SQKernel(self._codes[i], self._lows[i], self._steps[i], query)

    def batch_scores(self, i: int, queries: np.ndarray) -> np.ndarray:
        q = np.ascontiguousarray(queries, dtype=np.float32)  # (b, d)
        scaled = q * self._steps[i]
        offsets = q @ self._lows[i]  # (b,)
        return self._codes[i] @ scaled.T + offsets[None, :]

    # -- lifecycle ------------------------------------------------------
    def subset(self, ids: np.ndarray) -> "ScalarQuantStore":
        ids = np.asarray(ids)
        exact = None if self._exact is None else self._exact.subset(ids)
        return ScalarQuantStore(
            [c[ids] for c in self._codes], self._lows, self._steps, exact
        )

    def hot_bytes(self) -> int:
        return int(
            sum(c.nbytes for c in self._codes)
            + sum(v.nbytes for v in self._lows)
            + sum(v.nbytes for v in self._steps)
        )

    def cold_bytes(self) -> int:
        return 0 if self._exact is None else self._exact.nbytes()

    def resident_bytes(self) -> int:
        cold = 0 if self._exact is None else self._exact.resident_bytes()
        return self.hot_bytes() + cold

    @property
    def cold_plane(self) -> ColdPlane | None:
        return self._exact

    def with_cold_plane(self, plane: ColdPlane | None) -> "ScalarQuantStore":
        return ScalarQuantStore(self._codes, self._lows, self._steps, plane)

    # -- persistence ----------------------------------------------------
    def store_meta(self) -> dict:
        return {"kind": self.kind, "dtype": self.dtype,
                "num_modalities": self.num_modalities,
                "keep_exact": self.has_exact}

    def to_arrays(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for i in range(self.num_modalities):
            out[f"codes_{i}"] = self._codes[i]
            out[f"qlow_{i}"] = self._lows[i]
            out[f"qstep_{i}"] = self._steps[i]
            if self._exact is not None and self._exact.is_resident:
                out[f"exact_{i}"] = self._exact.modality(i)
        return out

    @classmethod
    def from_arrays(cls, meta: dict, arrays: dict) -> "ScalarQuantStore":
        m = int(meta["num_modalities"])
        exact = None
        if meta.get("keep_exact") and "exact_0" in arrays:
            exact = [arrays[f"exact_{i}"] for i in range(m)]
        return cls(
            [arrays[f"codes_{i}"] for i in range(m)],
            [arrays[f"qlow_{i}"] for i in range(m)],
            [arrays[f"qstep_{i}"] for i in range(m)],
            exact,
        )

    @classmethod
    def from_matrices(
        cls, matrices: Sequence[np.ndarray], keep_exact: bool = True, **options
    ) -> "ScalarQuantStore":
        require(not options,
                f"ScalarQuantStore options: keep_exact; got {sorted(options)}")
        mats = [np.ascontiguousarray(m, dtype=np.float32) for m in matrices]
        codes, lows, steps = [], [], []
        for mat in mats:
            lo = mat.min(axis=0)
            hi = mat.max(axis=0)
            span = hi - lo
            # Constant columns quantise to code 0 with step 0 (decode = lo).
            step = np.where(span > 0.0, span / 255.0, 1.0).astype(np.float32)
            q = np.rint((mat - lo) / step)
            codes.append(np.clip(q, 0, 255).astype(np.uint8))
            lows.append(lo.astype(np.float32))
            steps.append(np.where(span > 0.0, span / 255.0, 0.0).astype(np.float32))
        return cls(codes, lows, steps, mats if keep_exact else None)
