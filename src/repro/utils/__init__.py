"""Shared low-level utilities (randomness, top-k selection, validation, IO)."""

from repro.utils.rng import derive_seed, make_rng, spawn
from repro.utils.topk import merge_top_k, top_k_indices, top_k_sorted
from repro.utils.validation import (
    as_float_matrix,
    as_float_vector,
    check_normalized,
    require,
)

__all__ = [
    "derive_seed",
    "make_rng",
    "spawn",
    "merge_top_k",
    "top_k_indices",
    "top_k_sorted",
    "as_float_matrix",
    "as_float_vector",
    "check_normalized",
    "require",
]
