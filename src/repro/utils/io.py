"""Serialisation for indexes and datasets.

Uses ``numpy.savez`` archives with a JSON metadata blob — dependency-free,
portable, and bit-exact for float32 payloads.  Variable-length structures
(adjacency lists) are stored flattened with an offsets array, the standard
CSR-style layout used by graph databases.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = [
    "pack_adjacency",
    "unpack_adjacency",
    "save_arrays",
    "load_arrays",
]


def pack_adjacency(neighbors: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a ragged adjacency list into (flat, offsets) CSR form."""
    offsets = np.zeros(len(neighbors) + 1, dtype=np.int64)
    for i, adj in enumerate(neighbors):
        offsets[i + 1] = offsets[i] + len(adj)
    if offsets[-1] == 0:
        flat = np.empty(0, dtype=np.int32)
    else:
        flat = np.concatenate([np.asarray(a, dtype=np.int32) for a in neighbors])
    return flat, offsets


def unpack_adjacency(flat: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    """Inverse of :func:`pack_adjacency`."""
    return [
        np.asarray(flat[offsets[i]:offsets[i + 1]], dtype=np.int32)
        for i in range(len(offsets) - 1)
    ]


def save_arrays(path: str | Path, metadata: dict, **arrays: np.ndarray) -> None:
    """Write *arrays* plus a JSON *metadata* dict to a ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta_blob = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    np.savez(path, __metadata__=meta_blob, **arrays)


def load_arrays(path: str | Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Read back an archive written by :func:`save_arrays`."""
    with np.load(Path(path)) as archive:
        payload = {key: archive[key] for key in archive.files}
    meta_blob = payload.pop("__metadata__")
    metadata = json.loads(bytes(meta_blob.tobytes()).decode("utf-8"))
    return metadata, payload
