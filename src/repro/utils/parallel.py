"""Thread-pool helpers shared by the executor and the index builders.

The library parallelises with **threads**, not processes: every heavy
kernel bottoms out in BLAS calls that release the GIL, the index and
corpus matrices are shared read-only, and each task is stateless (one
scorer / one block per task), so threads give speed-up without any
pickling or memory duplication.  ``n_jobs`` follows the scikit-learn
convention: ``1`` means sequential, ``-1`` means all cores.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["resolve_n_jobs", "thread_map"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` knob to a concrete worker count (≥ 1)."""
    if n_jobs is None or n_jobs == 0:
        return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return int(n_jobs)


def thread_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    n_jobs: int | None = 1,
) -> list[R]:
    """``[fn(x) for x in items]`` — sequential or on a thread pool.

    Output order always matches input order, and with ``n_jobs=1`` the
    call degenerates to a plain loop (no pool, no overhead), which keeps
    sequential runs bit-identical to their pre-parallel behaviour.
    """
    items = list(items)
    workers = resolve_n_jobs(n_jobs)
    if workers == 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))
