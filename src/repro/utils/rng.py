"""Deterministic random-number utilities.

Every stochastic component in the library (dataset generators, encoders,
graph initialisation, weight-learning batching) draws its randomness from a
:class:`numpy.random.Generator` derived here, so that experiments are exactly
reproducible given a seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed", "spawn"]

_MAX_SEED = 2**63 - 1


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator for *seed*.

    Accepts an int seed, an existing generator (returned as-is), or ``None``
    for OS entropy.  Centralising this keeps every call-site one line.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from *base_seed* and a label path.

    Hashing the label path decouples independent components: adding a new
    consumer of randomness does not shift the streams of existing ones,
    which keeps previously published experiment numbers stable.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode())
    for label in labels:
        digest.update(b"\x00")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "little") % _MAX_SEED


def spawn(base_seed: int, *labels: object) -> np.random.Generator:
    """Shorthand for ``make_rng(derive_seed(base_seed, *labels))``."""
    return make_rng(derive_seed(base_seed, *labels))
