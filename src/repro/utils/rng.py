"""Deterministic random-number utilities.

Every stochastic component in the library (dataset generators, encoders,
graph initialisation, weight-learning batching) draws its randomness from a
:class:`numpy.random.Generator` derived here, so that experiments are exactly
reproducible given a seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed", "spawn", "spawn_seed_sequences"]

_MAX_SEED = 2**63 - 1


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator for *seed*.

    Accepts an int seed, an existing generator (returned as-is), or ``None``
    for OS entropy.  Centralising this keeps every call-site one line.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from *base_seed* and a label path.

    Hashing the label path decouples independent components: adding a new
    consumer of randomness does not shift the streams of existing ones,
    which keeps previously published experiment numbers stable.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode())
    for label in labels:
        digest.update(b"\x00")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "little") % _MAX_SEED


def spawn(base_seed: int, *labels: object) -> np.random.Generator:
    """Shorthand for ``make_rng(derive_seed(base_seed, *labels))``."""
    return make_rng(derive_seed(base_seed, *labels))


def spawn_seed_sequences(
    base_seed: int | np.random.SeedSequence | None, n: int
) -> list[np.random.SeedSequence]:
    """*n* statistically independent child seeds for one query batch.

    Built on :meth:`numpy.random.SeedSequence.spawn`, so children are
    decorrelated yet fully determined by ``base_seed`` — a batch re-run
    with the same seed reproduces every per-query stream exactly, while
    two queries in the same batch never share an init draw (the
    degenerate-correlation bug of a shared ``rng=0`` default).
    """
    if isinstance(base_seed, np.random.SeedSequence):
        root = base_seed
    else:
        root = np.random.SeedSequence(base_seed)
    return root.spawn(n)
