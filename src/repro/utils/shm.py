"""Named shared-memory array packs for the process-sharded serving tier.

:class:`SharedArrays` places a set of numpy arrays into **one** POSIX
shared-memory block so worker processes can map the same physical pages
instead of receiving pickled copies — the mechanism that lets a shard's
vector planes cross the process boundary exactly once, at spawn.  The
lifecycle is the classic create/attach split:

* the parent calls :meth:`create` (copies each array into the block
  once), hands the JSON-able :attr:`spec` to each worker, and — after
  every worker has acknowledged attaching — calls :meth:`close` +
  :meth:`unlink` so the block disappears with its last mapping;
* each worker calls :meth:`attach` with the spec and reads zero-copy
  ``numpy`` views for as long as it lives.

Attached views are marked read-only: the planes are shared between
processes with no synchronisation, so an accidental in-place write in
one worker would silently corrupt every other's reads.

On CPython ≥ 3.8 the resource tracker registers a segment only in the
*creating* process, so worker attaches never race the parent's unlink.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.utils.validation import require

__all__ = ["SharedArrays"]

#: entry offsets are rounded up to cache-line multiples so every view is
#: at least 64-byte aligned — BLAS kernels prefer it and it costs bytes,
#: not correctness.
_ALIGNMENT = 64


class SharedArrays:
    """A named dict of numpy arrays living in one shared-memory block.

    ``arrays`` maps each key to its view into the block; ``spec`` is the
    pickle-light description (block name + per-entry dtype/shape/offset)
    a worker needs to :meth:`attach`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        arrays: dict[str, np.ndarray],
        spec: dict,
        owner: bool,
    ):
        self._shm = shm
        self.arrays = arrays
        self.spec = spec
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrays":
        """Copy *arrays* into a fresh shared block (one copy, at spawn)."""
        require(len(arrays) > 0, "SharedArrays.create needs at least one array")
        entries: list[dict] = []
        prepared: dict[str, np.ndarray] = {}
        offset = 0
        for key, value in arrays.items():
            arr = np.ascontiguousarray(value)
            offset = -(-offset // _ALIGNMENT) * _ALIGNMENT
            entries.append(
                {
                    "key": str(key),
                    "dtype": arr.dtype.str,
                    "shape": [int(d) for d in arr.shape],
                    "offset": int(offset),
                }
            )
            prepared[str(key)] = arr
            offset += arr.nbytes
        # A zero-byte block is invalid on every platform; empty arrays
        # still get well-formed (zero-length) views into a 1-byte block.
        shm = shared_memory.SharedMemory(create=True, size=max(int(offset), 1))
        try:
            views: dict[str, np.ndarray] = {}
            for entry in entries:
                arr = prepared[entry["key"]]
                view = np.ndarray(
                    arr.shape,
                    dtype=arr.dtype,
                    buffer=shm.buf,
                    offset=entry["offset"],
                )
                view[...] = arr
                views[entry["key"]] = view
        except BaseException:
            # Population failed after the named block was created: the
            # caller never sees the handle, so unlink here or the
            # segment leaks until process exit.
            views.clear()
            view = None  # noqa: F841 — drop the exported buffer view
            try:
                shm.close()
            except Exception:
                pass
            shm.unlink()
            raise
        spec = {"name": shm.name, "entries": entries}
        return cls(shm, views, spec, owner=True)

    @classmethod
    def attach(cls, spec: dict) -> "SharedArrays":
        """Map an existing block by its :attr:`spec`; views are read-only."""
        shm = shared_memory.SharedMemory(name=spec["name"], create=False)
        views: dict[str, np.ndarray] = {}
        for entry in spec["entries"]:
            view = np.ndarray(
                tuple(entry["shape"]),
                dtype=np.dtype(entry["dtype"]),
                buffer=shm.buf,
                offset=entry["offset"],
            )
            view.flags.writeable = False
            views[entry["key"]] = view
        return cls(shm, views, spec, owner=False)

    def close(self) -> None:
        """Release this process's mapping (idempotent).

        Dropping the views first is mandatory — ``SharedMemory.close``
        raises ``BufferError`` while exported pointers exist.  A worker
        that handed views to long-lived structures (a built index) calls
        this only at exit, where a still-pinned buffer is harmless: the
        tolerated ``BufferError`` leaves cleanup to process teardown.
        """
        if self._closed:
            return
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:
            return
        self._closed = True

    def unlink(self) -> None:
        """Remove the named block (owner only; after every attach ack)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    @property
    def nbytes(self) -> int:
        return self._shm.size
