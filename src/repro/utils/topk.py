"""Top-k selection helpers shared by the search kernels.

Similarities in this library follow the paper's convention: **larger inner
product = more similar**.  All helpers therefore select maxima.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices", "top_k_sorted", "merge_top_k"]


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the *k* largest entries of *scores*, unordered.

    Uses ``argpartition`` (O(n)) instead of a full sort; callers that need
    ranked output should use :func:`top_k_sorted`.
    """
    n = scores.shape[0]
    if k >= n:
        return np.arange(n)
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    return np.argpartition(scores, n - k)[n - k:]


def top_k_sorted(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the *k* largest entries, best first.

    Ordering within the result breaks ties by index; which of several
    equal-score entries straddling the selection boundary is included is
    deterministic for a given input but unspecified (argpartition's
    choice) — the returned *scores* are always the true top-k multiset.
    """
    idx = top_k_indices(scores, k)
    # Secondary key on the index makes the ordering fully deterministic.
    order = np.lexsort((idx, -scores[idx]))
    return idx[order]


def merge_top_k(
    ids_a: np.ndarray,
    scores_a: np.ndarray,
    ids_b: np.ndarray,
    scores_b: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two scored id lists into the overall top-*k* (deduplicated).

    When an id appears in both inputs its maximum score wins; this is the
    behaviour the MR baseline needs when pooling per-modality candidates.
    """
    ids = np.concatenate([ids_a, ids_b])
    scores = np.concatenate([scores_a, scores_b])
    # Keep the best score per id.
    order = np.lexsort((-scores, ids))
    ids, scores = ids[order], scores[order]
    keep = np.ones(len(ids), dtype=bool)
    keep[1:] = ids[1:] != ids[:-1]
    ids, scores = ids[keep], scores[keep]
    sel = top_k_sorted(scores, k)
    return ids[sel], scores[sel]
