"""Input validation helpers.

The public API validates eagerly and raises with actionable messages; the
internal kernels assume validated inputs and stay branch-free.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "require",
    "as_float_matrix",
    "as_float_vector",
    "check_normalized",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def as_float_matrix(array: np.ndarray | list, name: str = "array") -> np.ndarray:
    """Coerce to a C-contiguous float32 2-D matrix."""
    out = np.ascontiguousarray(array, dtype=np.float32)
    require(out.ndim == 2, f"{name} must be 2-D, got shape {out.shape}")
    return out


def as_float_vector(array: np.ndarray | list, name: str = "array") -> np.ndarray:
    """Coerce to a contiguous float32 1-D vector."""
    out = np.ascontiguousarray(array, dtype=np.float32)
    require(out.ndim == 1, f"{name} must be 1-D, got shape {out.shape}")
    return out


def check_normalized(matrix: np.ndarray, atol: float = 1e-3) -> bool:
    """Return True when every row of *matrix* has (near-)unit L2 norm."""
    norms = np.linalg.norm(matrix, axis=-1)
    return bool(np.all(np.abs(norms - 1.0) <= atol))
