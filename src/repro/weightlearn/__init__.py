"""Vector weight learning (paper §VI): contrastive learning of ω."""

from repro.weightlearn.loss import contrastive_loss_and_grad, joint_logits
from repro.weightlearn.negatives import (
    build_features,
    mine_hard_negatives,
    sample_random_negatives,
)
from repro.weightlearn.trainer import (
    TrainHistory,
    VectorWeightLearner,
    WeightLearningResult,
)

__all__ = [
    "contrastive_loss_and_grad",
    "joint_logits",
    "build_features",
    "mine_hard_negatives",
    "sample_random_negatives",
    "TrainHistory",
    "VectorWeightLearner",
    "WeightLearningResult",
]
