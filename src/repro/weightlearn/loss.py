"""Contrastive loss over joint similarities with its analytic gradient.

The paper's loss (Eq. 6) for a minibatch of anchors ``p``::

    L = 1/M · Σ_p −log [ exp(IP(p̂,p̂⁺)) / (exp(IP(p̂,p̂⁺)) + Σ exp(IP(p̂,p̂⁻))) ]

Because ``IP(p̂,ô) = Σ_i ω_i² · IP_i(p,o)`` (Lemma 1), the loss depends on
the weights only through a linear form of ``ω²`` over per-modality
similarity *features*.  The gradient is therefore exact and closed-form —
no autograd framework needed (this replaces the paper's PyTorch module,
see DESIGN.md §2)::

    ∂L/∂ω_i = 2·ω_i · 1/M · Σ_p Σ_c (softmax_c − 1[c = positive]) · F[p,c,i]
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require

__all__ = ["contrastive_loss_and_grad", "joint_logits"]


def joint_logits(features: np.ndarray, omegas: np.ndarray) -> np.ndarray:
    """Joint similarities from per-modality features: ``F @ ω²``.

    ``features`` has shape ``(batch, candidates, m)``; candidate 0 is the
    positive example by convention.
    """
    return features @ (omegas**2)


def contrastive_loss_and_grad(
    features: np.ndarray, omegas: np.ndarray
) -> tuple[float, np.ndarray]:
    """Loss value and ``∂L/∂ω`` for one (mini)batch.

    Returns ``(loss, grad)`` with ``grad.shape == omegas.shape``.
    """
    features = np.asarray(features, dtype=np.float64)
    require(features.ndim == 3, "features must be (batch, candidates, m)")
    omegas = np.asarray(omegas, dtype=np.float64)
    batch = features.shape[0]
    require(batch >= 1, "empty batch")

    logits = joint_logits(features, omegas)  # (B, C)
    shifted = logits - logits.max(axis=1, keepdims=True)
    expd = np.exp(shifted)
    probs = expd / expd.sum(axis=1, keepdims=True)
    loss = float(-np.log(np.maximum(probs[:, 0], 1e-300)).mean())

    dlogits = probs.copy()
    dlogits[:, 0] -= 1.0
    dlogits /= batch
    grad_w2 = np.einsum("bc,bcm->m", dlogits, features)
    grad = 2.0 * omegas * grad_w2
    return loss, grad
