"""Negative-example acquisition (paper §VI-A).

Hard negatives are the objects most similar to the anchor under the
*current* weights — found by vector search in the unified space and
refreshed as the weights move (the paper's key trick; Fig. 9 shows it
converging faster and to better weights than random negatives).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import require

__all__ = ["mine_hard_negatives", "sample_random_negatives", "build_features"]


def mine_hard_negatives(
    modality_sims: np.ndarray,
    positives: np.ndarray,
    omegas: np.ndarray,
    num_negatives: int,
) -> np.ndarray:
    """Top-k pool rows by current joint similarity, positives excluded.

    ``modality_sims`` is the precomputed feature tensor ``(m, B, P)`` of
    per-modality IPs between anchors and the pool; mining is then one
    tensor contraction per refresh (Eq. 5 materialised).
    """
    m, batch, pool = modality_sims.shape
    require(num_negatives < pool, "pool too small for requested negatives")
    joint = np.tensordot(omegas**2, modality_sims, axes=1)  # (B, P)
    joint[np.arange(batch), positives] = -np.inf
    idx = np.argpartition(-joint, num_negatives - 1, axis=1)[:, :num_negatives]
    # Order hardest-first for reproducibility.
    row_scores = np.take_along_axis(joint, idx, axis=1)
    order = np.argsort(-row_scores, axis=1, kind="stable")
    return np.take_along_axis(idx, order, axis=1)


def sample_random_negatives(
    pool_size: int,
    positives: np.ndarray,
    num_negatives: int,
    rng: np.random.Generator | int | None,
) -> np.ndarray:
    """Uniformly random negatives, never equal to the anchor's positive."""
    require(num_negatives < pool_size, "pool too small for requested negatives")
    rng = make_rng(rng)
    batch = positives.shape[0]
    draws = rng.integers(1, pool_size, size=(batch, num_negatives))
    # Shift around the positive so it can never be drawn.
    return (positives[:, None] + draws) % pool_size


def build_features(
    modality_sims: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
) -> np.ndarray:
    """Gather the ``(B, 1+num_neg, m)`` feature tensor for the loss.

    Candidate 0 is the positive example; the rest are negatives.
    """
    candidates = np.concatenate([positives[:, None], negatives], axis=1)
    batch = positives.shape[0]
    # modality_sims: (m, B, P) → features: (B, C, m)
    gathered = modality_sims[:, np.arange(batch)[:, None], candidates]
    return np.moveaxis(gathered, 0, -1)
