"""Vector weight learning (paper §VI): the training loop.

Given anchors (queries), their positive objects, and a pool of true
objects ``T``, gradient descent on the contrastive loss learns the
per-modality weights ``ω``.  The per-modality similarity features between
anchors and the pool are precomputed once, so each epoch is a handful of
dense tensor ops — the paper reports <200 s training even at million
scale and calls the model "lightweight"; this implementation trains in
milliseconds at bench scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.multivector import MultiVector, MultiVectorSet
from repro.core.weights import Weights
from repro.utils.rng import make_rng
from repro.utils.validation import require
from repro.weightlearn.loss import contrastive_loss_and_grad
from repro.weightlearn.negatives import (
    build_features,
    mine_hard_negatives,
    sample_random_negatives,
)

__all__ = ["TrainHistory", "WeightLearningResult", "VectorWeightLearner"]

_MIN_OMEGA = 1e-3


@dataclass
class TrainHistory:
    """Per-epoch curves (loss, training recall, ω² snapshots) — Fig. 9/13."""

    loss: list[float] = field(default_factory=list)
    recall: list[float] = field(default_factory=list)
    squared_weights: list[np.ndarray] = field(default_factory=list)


@dataclass
class WeightLearningResult:
    """Learned weights plus provenance for the experiment tables."""

    weights: Weights
    history: TrainHistory
    seconds: float
    strategy: str
    epochs: int


class VectorWeightLearner:
    """Contrastive weight learner with hard or random negatives."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        epochs: int = 200,
        num_negatives: int = 10,
        strategy: str = "hard",
        remine_every: int = 1,
        normalize: bool = True,
        temperature: float = 8.0,
        seed: int = 0,
    ):
        """``normalize`` rescales ω after every step so ``Σ ω² = 1``.

        Without it, gradient descent inflates the overall weight *scale*
        (a sharper softmax lowers the loss without changing any ranking)
        instead of rotating the modality *ratio*, stalling learning.
        ``temperature`` multiplies the similarity features inside the
        softmax, controlling how hard the loss focuses on the closest
        negatives (rankings depend only on the ratio, never on scale).
        """
        require(strategy in ("hard", "random"), "strategy: 'hard' or 'random'")
        require(epochs >= 1, "need at least one epoch")
        require(num_negatives >= 1, "need at least one negative")
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.num_negatives = int(num_negatives)
        self.strategy = strategy
        self.remine_every = max(1, int(remine_every))
        self.normalize = bool(normalize)
        self.temperature = float(temperature)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def _anchor_matrices(
        self, anchors: list[MultiVector], pool: MultiVectorSet
    ) -> np.ndarray:
        """Per-modality anchor↔pool IPs, shape ``(m, B, P)``.

        Anchors with a missing modality contribute zero similarity in that
        slot (consistent with the ω_i = 0 rule for absent modalities).
        """
        m = pool.num_modalities
        batch = len(anchors)
        sims = np.zeros((m, batch, pool.n))
        for i in range(m):
            rows = [a.vectors[i] for a in anchors]
            present = [r is not None for r in rows]
            if not any(present):
                continue
            dim = pool.dims[i]
            stacked = np.stack(
                [r if r is not None else np.zeros(dim, dtype=np.float32)
                 for r in rows]
            )
            sims[i] = stacked @ pool.modality(i).T
        return sims

    # ------------------------------------------------------------------
    def fit(
        self,
        anchors: list[MultiVector],
        positives: np.ndarray,
        pool: MultiVectorSet,
    ) -> WeightLearningResult:
        """Learn weights from (anchor, positive) pairs over *pool*.

        ``positives[b]`` is the row in *pool* of anchor ``b``'s true
        object (the paper's ``T`` set is exactly the pool).
        """
        require(len(anchors) >= 1, "need at least one anchor")
        positives = np.asarray(positives, dtype=np.int64)
        require(positives.shape == (len(anchors),),
                "one positive per anchor required")
        require(bool((positives >= 0).all() and (positives < pool.n).all()),
                "positive row out of pool range")

        start = time.perf_counter()
        rng = make_rng(self.seed)
        modality_sims = self._anchor_matrices(anchors, pool)
        m = pool.num_modalities

        # Random positive initialisation, as in §VI-B.
        omegas = rng.uniform(0.3, 1.0, size=m)
        history = TrainHistory()
        negatives = None
        for epoch in range(self.epochs):
            if negatives is None or epoch % self.remine_every == 0:
                if self.strategy == "hard":
                    negatives = mine_hard_negatives(
                        modality_sims, positives, omegas, self.num_negatives
                    )
                else:
                    negatives = sample_random_negatives(
                        pool.n, positives, self.num_negatives, rng
                    )
            features = build_features(modality_sims, positives, negatives)
            loss, grad = contrastive_loss_and_grad(
                self.temperature * features, omegas
            )
            omegas = np.maximum(omegas - self.learning_rate * grad, _MIN_OMEGA)
            if self.normalize:
                omegas = omegas / np.linalg.norm(omegas)

            joint = np.tensordot(omegas**2, modality_sims, axes=1)
            recall = float(
                (joint.argmax(axis=1) == positives).mean()
            )
            history.loss.append(loss)
            history.recall.append(recall)
            history.squared_weights.append(omegas**2)

        # Checkpoint selection: return the weights of the best-recall
        # epoch.  On very noisy encoder combinations the contrastive loss
        # can drift towards degenerate ratios late in training (it
        # flattens logits for unwinnable anchors); the retrieval metric
        # itself is the model-selection criterion.
        best_epoch = int(np.argmax(history.recall))
        best_w2 = history.squared_weights[best_epoch]
        return WeightLearningResult(
            weights=Weights(best_w2),
            history=history,
            seconds=time.perf_counter() - start,
            strategy=self.strategy,
            epochs=self.epochs,
        )
