"""Shared fixtures: small deterministic corpora and prebuilt indexes.

Session-scoped so expensive artifacts (graph builds, weight training) are
constructed once for the whole suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multivector import MultiVector, MultiVectorSet, normalize_rows
from repro.core.space import JointSpace
from repro.core.weights import Weights
from repro.datasets import EncoderCombo, encode_dataset, make_mitstates
from repro.index.pipeline import FusedIndexBuilder
from repro.utils.rng import make_rng


def random_multivector_set(
    n: int, dims: tuple[int, ...], seed: int = 0
) -> MultiVectorSet:
    """Normalised random multi-vector corpus for structural tests."""
    rng = make_rng(seed)
    mats = [
        normalize_rows(rng.standard_normal((n, d)).astype(np.float32))
        for d in dims
    ]
    return MultiVectorSet(mats)


def random_query(dims: tuple[int, ...], seed: int = 0) -> MultiVector:
    rng = make_rng(seed)
    return MultiVector(
        tuple(
            (lambda v: (v / np.linalg.norm(v)).astype(np.float32))(
                rng.standard_normal(d)
            )
            for d in dims
        )
    )


@pytest.fixture(scope="session")
def tiny_set() -> MultiVectorSet:
    """200 objects × 2 modalities (16 and 8 dims)."""
    return random_multivector_set(200, (16, 8), seed=1)


@pytest.fixture(scope="session")
def tiny_space(tiny_set) -> JointSpace:
    return JointSpace(tiny_set, Weights([0.4, 0.6]))


@pytest.fixture(scope="session")
def tiny_index(tiny_space):
    return FusedIndexBuilder(gamma=10, seed=3).build(tiny_space)


@pytest.fixture(scope="session")
def mitstates_small():
    """A small MIT-States corpus shared by dataset/framework tests."""
    return make_mitstates(
        num_nouns=12, num_states=6, instances_per_pair=2, num_queries=40, seed=5
    )


@pytest.fixture(scope="session")
def mitstates_encoded(mitstates_small):
    return encode_dataset(
        mitstates_small, EncoderCombo("resnet50", ("lstm",)), seed=0
    )
