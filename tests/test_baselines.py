"""Tests for the baselines: merging, MR, JE, brute force."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BruteForceMUST,
    JointEmbeddingSearch,
    MultiStreamedRetrieval,
    merge_candidates,
)
from repro.core.multivector import MultiVector
from repro.core.weights import Weights
from repro.datasets import EncoderCombo, encode_dataset

from tests.conftest import random_multivector_set, random_query


class TestMergeCandidates:
    def test_single_list_passthrough(self):
        out = merge_candidates([np.array([5, 2, 9])], k=2)
        assert list(out) == [5, 2]

    def test_intersection_comes_first(self):
        a = np.array([1, 2, 3, 4])
        b = np.array([9, 3, 2, 8])
        out = merge_candidates([a, b], k=3)
        assert set(out[:2]) == {2, 3}  # the intersection

    def test_intersection_ordered_by_target_rank(self):
        a = np.array([1, 2, 3])  # target stream
        b = np.array([3, 2, 1])
        out = merge_candidates([a, b], k=3)
        assert list(out) == [1, 2, 3]  # target-rank order

    def test_shortfall_filled_from_union(self):
        a = np.array([1, 2])
        b = np.array([3, 4])
        out = merge_candidates([a, b], k=3)
        assert len(out) == 3  # intersection empty → union fill

    def test_rank_sum_strategy(self):
        a = np.array([1, 2, 3])
        b = np.array([2, 1, 9])
        out = merge_candidates([a, b], k=2, strategy="rank-sum")
        # rank sums: 1→0+1=1, 2→1+0=1, 3→2+3=5, 9→3+2=5
        assert set(out) == {1, 2}

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            merge_candidates([np.array([1])], 1, strategy="magic")

    def test_never_exceeds_k(self):
        lists = [np.arange(20), np.arange(5, 25)]
        assert len(merge_candidates(lists, k=7)) == 7

    def test_empty_lists_rejected(self):
        with pytest.raises(ValueError):
            merge_candidates([], 3)


@pytest.fixture(scope="module")
def corpus():
    return random_multivector_set(200, (8, 6), seed=77)


@pytest.fixture(scope="module")
def queries():
    return [random_query((8, 6), seed=s) for s in range(10)]


class TestMultiStreamedRetrieval:
    def test_build_and_search(self, corpus, queries):
        mr = MultiStreamedRetrieval(corpus).build()
        res = mr.search(queries[0], k=5, candidates_per_modality=40)
        assert len(res.ids) == 5
        assert mr.build_seconds > 0
        assert mr.name == "MR"

    def test_exact_variant(self, corpus, queries):
        mr = MultiStreamedRetrieval(corpus, exact=True).build()
        assert mr.name == "MR--"
        res = mr.search(queries[0], k=5, candidates_per_modality=40)
        assert len(res.ids) == 5
        assert mr.index_size_in_bytes() == 0

    def test_exact_and_graph_agree_at_high_budget(self, corpus, queries):
        graph = MultiStreamedRetrieval(corpus).build()
        exact = MultiStreamedRetrieval(corpus, exact=True).build()
        overlap = 0
        for q in queries:
            a = graph.search(q, k=10, candidates_per_modality=150)
            b = exact.search(q, k=10, candidates_per_modality=150)
            overlap += np.intersect1d(a.ids, b.ids).size
        assert overlap / (10 * len(queries)) > 0.8

    def test_missing_modality_uses_remaining_stream(self, corpus, queries):
        mr = MultiStreamedRetrieval(corpus).build()
        q = queries[0].replace(1, None)
        res = mr.search(q, k=5, candidates_per_modality=40)
        assert len(res.ids) == 5

    def test_search_before_build_rejected(self, corpus, queries):
        mr = MultiStreamedRetrieval(corpus)
        with pytest.raises(ValueError):
            mr.search(queries[0], 5)

    def test_index_size_positive(self, corpus):
        mr = MultiStreamedRetrieval(corpus).build()
        assert mr.index_size_in_bytes() > 0

    def test_stats_aggregate_streams(self, corpus, queries):
        mr = MultiStreamedRetrieval(corpus).build()
        res = mr.search(queries[0], k=5, candidates_per_modality=40)
        # Two streams → at least two searches worth of evaluations.
        assert res.stats.joint_evals >= 80


class TestJointEmbedding:
    def test_requires_target_slot(self, corpus):
        je = JointEmbeddingSearch(corpus).build()
        q = MultiVector((None, np.ones(6, dtype=np.float32)))
        with pytest.raises(ValueError, match="composition"):
            je.search(q, 5)

    def test_search_only_uses_target_modality(self, corpus, queries):
        je = JointEmbeddingSearch(corpus).build()
        full = je.search(queries[0], k=5)
        target_only = je.search(queries[0].replace(1, None), k=5)
        assert np.array_equal(full.ids, target_only.ids)

    def test_exact_variant_matches_argmax(self, corpus, queries):
        je = JointEmbeddingSearch(corpus, exact=True).build()
        res = je.search(queries[0], k=1)
        sims = corpus.modality(0) @ queries[0].vectors[0]
        assert res.ids[0] == int(np.argmax(sims))

    def test_build_required(self, corpus, queries):
        with pytest.raises(ValueError):
            JointEmbeddingSearch(corpus).search(queries[0], 5)


class TestBruteForceMUST:
    def test_exact_joint_top1(self, corpus, queries):
        weights = Weights([0.4, 0.6])
        bf = BruteForceMUST(corpus, weights).build()
        res = bf.search(queries[0], k=1)
        sims = 0.4 * (corpus.modality(0) @ queries[0].vectors[0]) + 0.6 * (
            corpus.modality(1) @ queries[0].vectors[1]
        )
        assert res.ids[0] == int(np.argmax(sims))

    def test_weight_override(self, corpus, queries):
        bf = BruteForceMUST(corpus, Weights([0.5, 0.5])).build()
        default = bf.search(queries[1], k=10)
        skewed = bf.search(queries[1], k=10, weights=Weights([0.99, 0.01]))
        assert not np.array_equal(default.ids, skewed.ids)


class TestFrameworkOrdering:
    """Integration sanity on a real workload: MUST ≥ baselines (Tab. III)."""

    def test_must_beats_je_on_mitstates(self, mitstates_small):
        from repro.core.framework import MUST
        from repro.metrics import mean_hit_rate

        enc = encode_dataset(
            mitstates_small, EncoderCombo("clip", ("lstm",)), seed=0
        )
        gt = enc.ground_truth
        must = MUST.from_dataset(enc)
        anchors = enc.queries[:20]
        positives = np.asarray([g[0] for g in gt[:20]])
        must.fit_weights(anchors, positives, epochs=120, learning_rate=0.25)
        must.build()
        test_q = enc.queries[20:]
        test_gt = gt[20:]
        must_res = [must.search(q, k=10, l=80) for q in test_q]
        must_r = mean_hit_rate([r.ids for r in must_res], test_gt, 10)

        je = JointEmbeddingSearch(enc.objects).build()
        je_res = [je.search(q, k=10, l=80) for q in test_q]
        je_r = mean_hit_rate([r.ids for r in je_res], test_gt, 10)
        assert must_r >= je_r
