"""Parity suite for the unified scoring engine + batch executor.

The contract under test: ``MUST.batch_search`` through the
:class:`~repro.index.executor.BatchExecutor` returns **bit-identical**
ids and similarities to a hand-written sequential loop with the same
per-query child seeds — for every ``n_jobs``, both engines, with and
without Lemma-4 early termination and query-time weight overrides.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.results import SearchStats
from repro.core.weights import Weights
from repro.index.executor import BatchExecutor, BatchResult
from repro.index.flat import FlatIndex
from repro.index.scoring import Scorer, batch_score_all
from repro.index.search import joint_search
from repro.utils.rng import spawn_seed_sequences

from tests.conftest import random_multivector_set, random_query

N = 350
DIMS = (10, 6)
K, L = 8, 50


@pytest.fixture(scope="module")
def must():
    objects = random_multivector_set(N, DIMS, seed=7)
    m = MUST(objects, weights=Weights([0.6, 0.4]))
    m.build()
    return m


@pytest.fixture(scope="module")
def queries():
    return [random_query(DIMS, seed=s) for s in range(12)]


def sequential_reference(must, queries, rng=0, **kwargs):
    """The plain Python loop the executor must reproduce bit-for-bit."""
    seeds = spawn_seed_sequences(rng, len(queries))
    return [
        joint_search(
            must.index,
            q,
            k=K,
            l=L,
            rng=np.random.default_rng(seed),
            **kwargs,
        )
        for q, seed in zip(queries, seeds)
    ]


class TestGraphParity:
    @pytest.mark.parametrize("n_jobs", [1, 2, 4, -1])
    @pytest.mark.parametrize("engine", ["heap", "paper"])
    @pytest.mark.parametrize("early_termination", [False, True])
    def test_bit_identical_to_sequential_loop(
        self, must, queries, n_jobs, engine, early_termination
    ):
        expected = sequential_reference(
            must, queries, engine=engine, early_termination=early_termination
        )
        got = must.batch_search(
            queries, k=K, l=L, engine=engine,
            early_termination=early_termination, n_jobs=n_jobs,
        )
        assert len(got) == len(expected)
        for res, ref in zip(got, expected):
            assert np.array_equal(res.ids, ref.ids)
            assert np.array_equal(res.similarities, ref.similarities)

    @pytest.mark.parametrize("n_jobs", [1, 3])
    def test_weight_override_parity(self, must, queries, n_jobs):
        override = Weights([0.9, 0.1])
        expected = sequential_reference(must, queries, weights=override)
        # Pin the heap engine: the sequential reference is heap-engine
        # output, and the batch default now routes to the wave engine.
        got = must.batch_search(queries, k=K, l=L, weights=override,
                                engine="heap", n_jobs=n_jobs)
        for res, ref in zip(got, expected):
            assert np.array_equal(res.ids, ref.ids)
            assert np.array_equal(res.similarities, ref.similarities)

    def test_parallel_identical_to_executor_sequential(self, must, queries):
        seq = must.batch_search(queries, k=K, l=L, n_jobs=1)
        par = must.batch_search(queries, k=K, l=L, n_jobs=4)
        for a, b in zip(seq, par):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.similarities, b.similarities)

    def test_batch_reproducible_from_rng(self, must, queries):
        a = must.batch_search(queries, k=K, l=L, rng=42)
        b = must.batch_search(queries, k=K, l=L, rng=42, n_jobs=2)
        for x, y in zip(a, b):
            assert np.array_equal(x.ids, y.ids)


class TestSeedDerivation:
    def test_children_are_distinct(self):
        a, b = spawn_seed_sequences(0, 2)
        assert not np.array_equal(a.generate_state(4), b.generate_state(4))

    def test_children_are_reproducible(self):
        first = [s.generate_state(4) for s in spawn_seed_sequences(5, 3)]
        second = [s.generate_state(4) for s in spawn_seed_sequences(5, 3)]
        for x, y in zip(first, second):
            assert np.array_equal(x, y)

    def test_duplicate_queries_get_independent_inits(self, must, queries):
        """Two copies of one query in a batch must not share init draws:
        their searches may differ (stats), unlike the old rng=0 default."""
        res = must.batch_search([queries[0], queries[0]], k=K, l=20)
        ref = [
            joint_search(must.index, queries[0], k=K, l=20, rng=0)
            for _ in range(2)
        ]
        # The legacy loop is degenerate: identical work, identical hops.
        assert ref[0].stats.hops == ref[1].stats.hops
        # Executor children are decorrelated — accept either outcome for
        # hops but require the seeds to actually differ via the visited
        # trace of a tiny-l search on a 350-vertex graph.
        a = must.batch_search([queries[0]] * 8, k=2, l=2)
        hop_counts = {r.stats.visited_vertices for r in a}
        joint_counts = {r.stats.joint_evals for r in a}
        assert len(hop_counts | joint_counts) > 1


class TestBatchResult:
    def test_sequence_protocol(self, must, queries):
        batch = must.batch_search(queries, k=K, l=L)
        assert isinstance(batch, BatchResult)
        assert len(batch) == len(queries)
        assert batch[0] is list(iter(batch))[0]

    def test_stats_aggregate_per_batch(self, must, queries):
        batch = must.batch_search(queries, k=K, l=L)
        total = SearchStats.aggregate(r.stats for r in batch)
        assert batch.stats.joint_evals == total.joint_evals > 0
        assert batch.stats.hops == total.hops > 0
        assert batch.stats.modality_evals == total.modality_evals > 0


class TestExactBatch:
    def test_ids_match_sequential_exact(self, must, queries):
        batch = must.batch_search(queries, k=K, exact=True)
        for q, res in zip(queries, batch):
            ref = must.search(q, k=K, exact=True)
            assert np.array_equal(res.ids, ref.ids)
            np.testing.assert_allclose(
                res.similarities, ref.similarities, rtol=1e-5, atol=1e-6
            )

    def test_gemm_wave_handles_fallback_queries(self, must, queries):
        """Queries lacking the concat fast path (zeroed index weight) take
        the per-query route inside the same batch."""
        zero = MUST(must.objects, weights=Weights([1.0, 0.0]))
        flat = FlatIndex(zero.space)
        override = Weights([0.5, 0.5])  # needs modality 1 → no fast path
        out = flat.batch_search(queries, K, weights=override)
        for q, res in zip(queries, out):
            ref = flat.search(q, K, weights=override)
            assert np.array_equal(res.ids, ref.ids)

    def test_batch_score_all_stats(self, must, queries):
        sims, stats = batch_score_all(must.space, queries)
        assert len(sims) == len(stats) == len(queries)
        for s, st in zip(sims, stats):
            assert s.shape == (N,)
            assert st.joint_evals == N
            assert st.modality_evals == N * len(DIMS)


class TestScorerUnification:
    """The scorer is the single home of the scoring branches."""

    def test_fast_path_matches_fallback(self, must, queries):
        fast = Scorer(must.space, queries[0])
        assert fast.has_fast_path
        ids = np.arange(0, N, 7)
        via_fast = fast.score_ids(ids)
        via_space = must.space.query_ids(queries[0], ids)
        np.testing.assert_allclose(via_fast, via_space, rtol=1e-5, atol=1e-6)

    def test_pruned_frontier_mask_is_lossless(self, must, queries):
        plain = Scorer(must.space, queries[0])
        pruned = Scorer(must.space, queries[0], early_termination=True)
        assert not pruned.has_fast_path
        ids = np.arange(0, N, 5)
        threshold = 0.4
        sims, keep = plain.score_frontier(ids, threshold)
        psims, pkeep = pruned.score_frontier(ids, threshold)
        assert np.array_equal(keep, pkeep)  # Lemma 4: same winners
        np.testing.assert_allclose(
            sims[keep], psims[pkeep], rtol=1e-5, atol=1e-6
        )

    def test_stats_accounting_matches_scan(self, must, queries):
        scorer = Scorer(must.space, queries[0])
        scorer.score_all()
        assert scorer.stats.joint_evals == N
        assert scorer.stats.modality_evals == N * len(DIMS)
        assert scorer.stats.visited_vertices == N


class TestBaselineBatchPaths:
    def test_brute_force_batch(self, must, queries):
        from repro.baselines import BruteForceMUST

        brute = BruteForceMUST(must.objects, must.weights).build()
        batch = brute.batch_search(queries, k=K)
        for q, res in zip(queries, batch):
            ref = brute.search(q, k=K)
            assert np.array_equal(res.ids, ref.ids)
        assert batch.stats.joint_evals == N * len(queries)

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_multi_streamed_batch(self, must, queries, n_jobs):
        from repro.baselines import MultiStreamedRetrieval

        mr = MultiStreamedRetrieval(must.objects, exact=True).build()
        batch = mr.batch_search(queries, k=5, n_jobs=n_jobs)
        assert len(batch) == len(queries)
        for q, res in zip(queries, batch):
            ref = mr.search(q, k=5)
            # Exact per-modality indexes ignore rng → full parity.
            assert np.array_equal(res.ids, ref.ids)
