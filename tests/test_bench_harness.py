"""Tests for the benchmark harness (formatting, persistence, registry)."""

from __future__ import annotations

from repro.bench.harness import Table, format_table, save_table
from repro.bench.report import _registry


class TestTableFormatting:
    def _table(self) -> Table:
        return Table(
            "Tab. T", "demo", ["A", "Metric"],
            [["x", 0.123456], ["longer-name", 1.0]],
            notes="a note",
        )

    def test_format_contains_everything(self):
        text = format_table(self._table())
        assert "Tab. T" in text and "demo" in text
        assert "0.1235" in text  # floats rendered at 4 decimals
        assert "longer-name" in text
        assert "note: a note" in text

    def test_columns_aligned(self):
        text = format_table(self._table())
        lines = text.splitlines()
        header, sep = lines[1], lines[2]
        assert len(header) == len(sep)

    def test_row_str_types(self):
        table = self._table()
        assert table.row_str([1, 2.5, "x"]) == ["1", "2.5000", "x"]

    def test_save_table_roundtrip(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        path = harness.save_table(self._table(), "demo")
        assert path.exists()
        assert "Tab. T" in path.read_text()


class TestReportRegistry:
    def test_registry_covers_every_paper_artifact(self):
        stems = [stem for stem, _ in _registry()]
        # The experiment index of DESIGN.md §4 — every table and figure.
        for artifact in (
            "tab3", "tab4", "tab5", "tab6", "tab7", "tab8", "tab9",
            "tab10", "tab11", "tab12", "tab21",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10ab", "fig10c",
            "fig11", "fig13", "fig14",
        ):
            assert any(stem.startswith(artifact) or artifact in stem
                       for stem in stems), f"{artifact} missing from registry"

    def test_registry_stems_unique(self):
        stems = [stem for stem, _ in _registry()]
        assert len(stems) == len(set(stems))
