"""Multi-tenant collections: routing, quotas, parity, persistence.

The tenancy contract has three legs, each pinned here:

* **Isolation** — a request executes against exactly one collection's
  index, and each collection's answers are *bit-identical* to a
  standalone ``MUST`` over the same corpus, across heterogeneous store
  configurations (dense / int8 / PQ+mmap side by side in one service),
  both service tiers, and interleaved cross-tenant write churn.
* **Admission** — per-tenant :class:`CollectionQuota` budgets reject
  (or block out) only the breaching tenant with
  :class:`CollectionOverloaded`; neighbours keep being admitted and the
  global queue bound still backstops the box with the plain
  :class:`ServiceOverloaded`.
* **Persistence** — the ``must-collections-v1`` manifest-of-manifests
  round-trips every collection (quotas included) corpus-free, and a
  plain single-collection segment save loads as the implicit
  ``"default"`` collection bit-identically.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core.framework import MUST
from repro.core.query import Query, SearchOptions
from repro.core.weights import Weights
from repro.index.pipeline import FusedIndexBuilder
from repro.index.segments import SegmentPolicy
from repro.service import (
    Collection,
    CollectionManager,
    CollectionOverloaded,
    CollectionQuota,
    MustService,
    ServiceConfig,
    ServiceOverloaded,
    ShardedService,
    UnknownCollection,
)

from tests.conftest import random_multivector_set, random_query

DIMS = (16, 8)
WEIGHTS = Weights([0.4, 0.6])
#: cheap graph build — the exact path never touches the graph, and the
#: sharded tests rebuild per-shard graphs at every spawn.
CHEAP_BUILDER = FusedIndexBuilder(gamma=8, epsilon=1, max_candidates=16)
POLICY = SegmentPolicy(seal_size=64, max_segments=8, max_deleted_fraction=0.9)

EXACT = SearchOptions(k=8, exact=True)


def _segmented_must(n: int = 110, seed: int = 1, **kwargs) -> MUST:
    """Built + streamed + partially deleted — the segmented layout."""
    must = MUST(
        random_multivector_set(n, DIMS, seed=seed),
        weights=WEIGHTS,
        builder=CHEAP_BUILDER,
        segment_policy=POLICY,
        **kwargs,
    ).build()
    must.insert(random_multivector_set(35, DIMS, seed=seed + 7))
    must.mark_deleted(np.arange(0, 30, 7))
    return must


def _manager(tmp_path=None) -> CollectionManager:
    """Three collections with deliberately heterogeneous stores."""
    manager = CollectionManager()
    manager.create("dense", _segmented_must(seed=11))
    manager.create("int8", _segmented_must(seed=22, compression="int8"))
    if tmp_path is not None:
        manager.create(
            "pqmmap",
            _segmented_must(
                seed=33,
                compression="pq",
                store_options={"pq_dims": 4},
                cold_storage="mmap",
                data_dir=tmp_path / "pqmmap-data",
            ),
        )
    return manager


def assert_same_result(res, ref):
    assert np.array_equal(res.ids, ref.ids)
    assert np.array_equal(res.similarities, ref.similarities)


@pytest.fixture()
def queries():
    return [random_query(DIMS, seed=s) for s in range(8)]


# ----------------------------------------------------------------------
# Registry + quota plumbing
# ----------------------------------------------------------------------
class TestManagerBasics:
    def test_registry_operations(self):
        manager = CollectionManager()
        must = _segmented_must(n=70, seed=5)
        col = manager.create("beta", must)
        manager.create("alpha", _segmented_must(n=70, seed=6))
        assert isinstance(col, Collection)
        assert manager.names() == ["alpha", "beta"]  # sorted
        assert [c.name for c in manager] == ["alpha", "beta"]
        assert "beta" in manager and "gamma" not in manager
        assert len(manager) == 2
        assert manager.get("beta").must is must
        dropped = manager.drop("beta")
        assert dropped.must is must
        assert "beta" not in manager

    def test_of_lifts_bare_must_as_default(self):
        must = _segmented_must(n=70, seed=5)
        manager = CollectionManager.of(must)
        assert manager.names() == ["default"]
        assert manager.get(None).must is must
        # Idempotent on an existing manager.
        assert CollectionManager.of(manager) is manager

    def test_unknown_collection_has_did_you_mean(self):
        manager = CollectionManager()
        manager.create("products", _segmented_must(n=70, seed=5))
        with pytest.raises(UnknownCollection, match="did you mean 'products'"):
            manager.get("product")

    def test_duplicate_create_rejected(self):
        manager = CollectionManager()
        must = _segmented_must(n=70, seed=5)
        manager.create("a", must)
        with pytest.raises(ValueError, match="already exists"):
            manager.create("a", must)

    @pytest.mark.parametrize(
        "bad", ["", ".hidden", "a/b", "../up", "x" * 65, "sp ace"]
    )
    def test_path_unsafe_names_rejected(self, bad):
        manager = CollectionManager()
        with pytest.raises(ValueError, match="invalid collection name"):
            manager.create(bad, _segmented_must(n=70, seed=5))

    def test_quota_validation(self):
        CollectionQuota()  # unlimited is fine
        CollectionQuota(max_pending=1, max_inflight=5)
        with pytest.raises(ValueError):
            CollectionQuota(max_pending=0)
        with pytest.raises(ValueError):
            CollectionQuota(max_inflight=-1)
        quota = CollectionQuota(max_pending=3)
        assert CollectionQuota.from_dict(quota.to_dict()) == quota


# ----------------------------------------------------------------------
# Routing (MustService)
# ----------------------------------------------------------------------
class TestRouting:
    def test_search_routes_to_named_collection(self, tmp_path, queries):
        manager = _manager(tmp_path)
        with manager.serve(ServiceConfig(max_batch=8, max_wait_ms=1.0)) as svc:
            for name in manager.names():
                oracle = manager.get(name).must
                plan = SearchOptions(k=8, exact=True, collection=name)
                for q in queries[:4]:
                    assert_same_result(svc.search(q, plan), oracle.query(q, EXACT))
                # The graph path routes identically (in-process snapshots
                # answer bit-identically to the live instance).
                graph_plan = SearchOptions(k=6, l=40, collection=name)
                for q in queries[:2]:
                    assert_same_result(
                        svc.search(q, graph_plan),
                        oracle.query(q, SearchOptions(k=6, l=40)),
                    )

    def test_default_and_legacy_kwargs_routes(self, queries):
        manager = _manager()
        with manager.serve() as svc:
            with pytest.raises(UnknownCollection):
                # No "default" collection exists in this manager.
                svc.search(queries[0], EXACT)
            res = svc.search(queries[0], k=8, exact=True, collection="int8")
            ref = manager.get("int8").must.query(queries[0], EXACT)
            assert_same_result(res, ref)

    def test_unknown_collection_fails_eagerly(self, queries):
        manager = _manager()
        with manager.serve() as svc:
            submitted = svc.stats.submitted
            with pytest.raises(UnknownCollection):
                svc.submit(
                    queries[0], SearchOptions(collection="nope")
                )
            # Rejected before admission: nothing was enqueued or counted.
            assert svc.stats.submitted == submitted

    def test_writes_route_and_stay_isolated(self, queries):
        manager = _manager()
        with manager.serve() as svc:
            before_dense = svc.active_ids("dense")
            batch = random_multivector_set(12, DIMS, seed=99)
            ext = svc.insert(batch, collection="int8")
            assert ext.size == 12
            # The neighbour's id space is untouched.
            assert np.array_equal(svc.active_ids("dense"), before_dense)
            svc.mark_deleted(ext[:3], collection="int8")
            assert not np.isin(ext[:3], svc.active_ids("int8")).any()
            fresh, active = svc.compact("int8")
            assert fresh is manager.get("int8").must
            assert np.array_equal(active, svc.active_ids("int8"))
            for q in queries[:3]:
                assert_same_result(
                    svc.search(q, SearchOptions(k=8, exact=True, collection="dense")),
                    manager.get("dense").must.query(q, EXACT),
                )

    def test_per_collection_stats(self, queries):
        manager = _manager()
        with manager.serve() as svc:
            for q in queries[:3]:
                svc.search(q, SearchOptions(k=5, exact=True, collection="dense"))
            svc.search(queries[0], SearchOptions(k=5, exact=True, collection="int8"))
            dense = manager.get("dense").stats
            int8 = manager.get("int8").stats
            assert dense.submitted == 3 and dense.completed == 3
            assert int8.submitted == 1 and int8.completed == 1
            assert svc.stats.submitted == 4 and svc.stats.completed == 4
            assert dense.latency.summary()["count"] == 3


# ----------------------------------------------------------------------
# Per-tenant admission control
# ----------------------------------------------------------------------
class TestPerTenantAdmission:
    def _service(self, **config_kwargs) -> tuple[CollectionManager, MustService]:
        manager = CollectionManager()
        manager.create(
            "hot",
            _segmented_must(n=70, seed=5),
            quota=CollectionQuota(max_pending=2, max_inflight=2),
        )
        manager.create("cold", _segmented_must(n=70, seed=6))
        svc = MustService(
            manager,
            ServiceConfig(max_queue=64, **config_kwargs),
            start=False,
        )
        return manager, svc

    def test_tenant_quota_rejects_only_that_tenant(self, queries):
        manager, svc = self._service(backpressure="reject")
        hot = SearchOptions(k=5, exact=True, collection="hot")
        cold = SearchOptions(k=5, exact=True, collection="cold")
        futs = [svc.submit(queries[i], hot) for i in range(2)]
        with pytest.raises(CollectionOverloaded, match="'hot'"):
            svc.submit(queries[2], hot)
        # The neighbour is untouched by the hot tenant's quota breach.
        futs += [svc.submit(queries[i], cold) for i in range(6)]
        assert manager.get("hot").stats.rejected == 1
        assert manager.get("cold").stats.rejected == 0
        assert svc.stats.rejected == 1
        svc.start()
        for fut in futs:
            assert fut.result(timeout=30) is not None
        # Quota slots were released: the tenant admits again.
        assert_same_result(
            svc.search(queries[2], hot),
            manager.get("hot").must.query(queries[2], SearchOptions(k=5, exact=True)),
        )
        svc.close()

    def test_global_queue_backstops_every_tenant(self, queries):
        manager = CollectionManager()
        manager.create("hot", _segmented_must(n=70, seed=5))
        manager.create("cold", _segmented_must(n=70, seed=6))
        svc = MustService(
            manager,
            ServiceConfig(max_queue=3, backpressure="reject"),
            start=False,
        )
        for i in range(3):
            name = "hot" if i % 2 == 0 else "cold"
            svc.submit(queries[i], SearchOptions(k=5, collection=name))
        with pytest.raises(ServiceOverloaded) as excinfo:
            svc.submit(queries[3], SearchOptions(k=5, collection="cold"))
        # Queue exhaustion is the box's problem, not one tenant's.
        assert not isinstance(excinfo.value, CollectionOverloaded)
        svc.start()
        svc.close()

    def test_block_backpressure_honors_tenant_quota(self, queries):
        manager, svc = self._service(
            backpressure="block", submit_timeout_s=0.05
        )
        hot = SearchOptions(k=5, exact=True, collection="hot")
        for i in range(2):
            svc.submit(queries[i], hot)
        with pytest.raises(CollectionOverloaded, match="'hot'"):
            svc.submit(queries[2], hot)
        svc.start()
        svc.close()


# ----------------------------------------------------------------------
# Bit-parity under cross-tenant churn
# ----------------------------------------------------------------------
class TestParityUnderChurn:
    @pytest.mark.parametrize("kind", ["must", "sharded"])
    def test_heterogeneous_collections_stay_bitwise(
        self, kind, tmp_path, queries
    ):
        """Dense, int8, and PQ+mmap collections served side by side:
        every exact answer is bit-identical to the same-kind
        *single-tenant* service over the same corpus — tenancy adds
        zero perturbation — before and after interleaved cross-tenant
        inserts, deletes, and compactions.  (For the in-process tier the
        oracle is the standalone ``MUST`` itself, the stricter check;
        for the sharded tier a resharded compressed store legitimately
        retrains shard-local quantizers, so the oracle is a
        single-collection ``ShardedService`` with the same layout.)"""
        manager = _manager(tmp_path)
        oracles: dict[str, object] = {}
        if kind == "must":
            svc = manager.serve(ServiceConfig(max_batch=8, max_wait_ms=1.0))
            ask = lambda name, q: manager.get(name).must.query(q, EXACT)
            ids_of = lambda name: (
                manager.get(name).must.segments.active_ext_ids()
            )
        else:
            svc = manager.serve_sharded(
                n_shards=2, max_batch=8, max_wait_ms=1.0
            )
            oracles = {
                name: manager.get(name).must.serve_sharded(n_shards=2)
                for name in manager.names()
            }
            ask = lambda name, q: oracles[name].search(q, EXACT)
            ids_of = lambda name: oracles[name].active_ids()
        try:
            def mutate(op, name, *args):
                """Apply one write to the tenant and to its oracle."""
                results = [getattr(svc, op)(*args, collection=name)]
                if kind == "must":
                    # svc writes through the shared MUST — the oracle
                    # is already in sync.
                    return results[0]
                results.append(getattr(oracles[name], op)(*args))
                return results

            def check():
                for name in manager.names():
                    plan = SearchOptions(k=8, exact=True, collection=name)
                    for q in queries[:4]:
                        assert_same_result(svc.search(q, plan), ask(name, q))
                    assert np.array_equal(svc.active_ids(name), ids_of(name))

            check()
            # Insert into one tenant, delete in another, compact a third
            # — each answer stays bitwise against its own oracle.
            batch = random_multivector_set(20, DIMS, seed=777)
            got = mutate("insert", "int8", batch)
            ext = got if kind == "must" else got[0]
            if kind == "sharded":
                assert np.array_equal(got[0], got[1])
            doomed = svc.active_ids("dense")[::9]
            mutate("mark_deleted", "dense", doomed)
            check()
            mutate("compact", "pqmmap")
            mutate("mark_deleted", "int8", ext[:5])
            check()
            if kind == "sharded":
                # The dense store has no quantizer, so the stronger
                # contract holds too: sharded answers equal the
                # standalone segmented oracle bit for bit.
                oracle = manager.get("dense").must
                oracle.mark_deleted(doomed)
                plan = SearchOptions(k=8, exact=True, collection="dense")
                for q in queries[:4]:
                    assert_same_result(svc.search(q, plan), oracle.query(q, EXACT))
        finally:
            svc.close()
            for oracle_svc in oracles.values():
                oracle_svc.close()


# ----------------------------------------------------------------------
# Concurrent multi-tenant stress
# ----------------------------------------------------------------------
class TestConcurrentMultiTenant:
    def test_stress_isolation_and_quiesced_parity(self, queries):
        """Reader threads across three tenants with writer churn and a
        throttled hot tenant: admission errors never leak across
        collections, and quiesced answers match each tenant's oracle."""
        manager = CollectionManager()
        manager.create(
            "hot",
            _segmented_must(n=90, seed=41),
            quota=CollectionQuota(max_inflight=2),
        )
        manager.create("warm", _segmented_must(n=90, seed=42))
        manager.create("cool", _segmented_must(n=90, seed=43))
        svc = MustService(
            manager,
            ServiceConfig(
                max_batch=8, max_wait_ms=1.0, backpressure="reject"
            ),
        )
        rejected_by: dict[str, int] = {"hot": 0, "warm": 0, "cool": 0}
        errors: list[BaseException] = []
        lock = threading.Lock()

        def reader(name: str, seed: int) -> None:
            plan = SearchOptions(k=5, exact=True, collection=name)
            for i in range(40):
                q = random_query(DIMS, seed=seed * 100 + i)
                try:
                    res = svc.search(q, plan)
                    assert len(res.ids) >= 1
                except CollectionOverloaded as exc:
                    # A rejection must name the tenant that breached.
                    with lock:
                        rejected_by[name] += 1
                    assert f"collection {name!r}" in str(exc)
                except BaseException as exc:  # pragma: no cover - fail loud
                    with lock:
                        errors.append(exc)
                    return

        def writer(name: str, seed: int) -> None:
            try:
                for i in range(5):
                    batch = random_multivector_set(
                        6, DIMS, seed=seed * 100 + i
                    )
                    ext = svc.insert(batch, collection=name)
                    svc.mark_deleted(ext[:2], collection=name)
            except BaseException as exc:  # pragma: no cover - fail loud
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(name, t * 7 + i))
            for i, name in enumerate(["hot", "warm", "cool"])
            for t in range(3)
        ] + [
            threading.Thread(target=writer, args=(name, 900 + i))
            for i, name in enumerate(["warm", "cool"])
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        # The throttled tenant's quota never spilled onto its neighbours.
        assert rejected_by["warm"] == 0 and rejected_by["cool"] == 0
        assert (
            manager.get("warm").stats.rejected == 0
            and manager.get("cool").stats.rejected == 0
        )
        assert manager.get("hot").stats.rejected == rejected_by["hot"]
        # Quiesced: every tenant answers bit-identically to its oracle.
        for name in manager.names():
            oracle = manager.get(name).must
            plan = SearchOptions(k=8, exact=True, collection=name)
            for q in queries[:4]:
                assert_same_result(svc.search(q, plan), oracle.query(q, EXACT))
        svc.close()


# ----------------------------------------------------------------------
# Persistence — must-collections-v1
# ----------------------------------------------------------------------
class TestPersistence:
    def test_multi_collection_roundtrip(self, tmp_path, queries):
        manager = CollectionManager()
        manager.create(
            "a",
            _segmented_must(seed=51),
            quota=CollectionQuota(max_pending=3),
        )
        manager.create("b", _segmented_must(seed=52, compression="int8"))
        root = tmp_path / "deployment"
        manager.save(root)
        manifest = json.loads((root / "collections.json").read_text())
        assert manifest["format"] == "must-collections-v1"
        assert [e["name"] for e in manifest["collections"]] == ["a", "b"]

        restored = CollectionManager.from_saved(root, builder=CHEAP_BUILDER)
        assert restored.names() == ["a", "b"]
        assert restored.get("a").quota == CollectionQuota(max_pending=3)
        for name in ("a", "b"):
            oracle = manager.get(name).must
            loaded = restored.get(name).must
            for q in queries[:4]:
                assert_same_result(loaded.query(q, EXACT), oracle.query(q, EXACT))

    def test_single_collection_save_loads_as_default(self, tmp_path, queries):
        must = _segmented_must(seed=61)
        must.save_index(tmp_path / "solo")
        manager = CollectionManager.from_saved(
            tmp_path / "solo", builder=CHEAP_BUILDER
        )
        assert manager.names() == ["default"]
        loaded = manager.get(None).must
        for q in queries[:4]:
            assert_same_result(loaded.query(q, EXACT), must.query(q, EXACT))

    def test_save_requires_segmented_collections(self, tmp_path):
        manager = CollectionManager()
        single_graph = MUST(
            random_multivector_set(60, DIMS, seed=3),
            weights=WEIGHTS,
            builder=CHEAP_BUILDER,
        ).build()
        manager.create("solo", single_graph)
        with pytest.raises(ValueError, match="single-graph"):
            manager.save(tmp_path / "out")

    def test_save_empty_manager_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no collections"):
            CollectionManager().save(tmp_path / "out")

    def test_from_saved_error_paths(self, tmp_path):
        missing = tmp_path / "nowhere"
        with pytest.raises(ValueError, match="neither"):
            CollectionManager.from_saved(missing)

        corrupt = tmp_path / "corrupt"
        corrupt.mkdir()
        (corrupt / "collections.json").write_text("{not json")
        with pytest.raises(ValueError, match="corrupt"):
            CollectionManager.from_saved(corrupt)

        wrong = tmp_path / "wrong-format"
        wrong.mkdir()
        (wrong / "collections.json").write_text(json.dumps({"format": "x"}))
        with pytest.raises(ValueError, match="not a must-collections-v1"):
            CollectionManager.from_saved(wrong)

        future = tmp_path / "future"
        future.mkdir()
        (future / "collections.json").write_text(
            json.dumps(
                {
                    "format": "must-collections-v1",
                    "format_version": 99,
                    "collections": [{"name": "a"}],
                }
            )
        )
        with pytest.raises(ValueError, match="format_version"):
            CollectionManager.from_saved(future)

        unsafe = tmp_path / "unsafe"
        unsafe.mkdir()
        (unsafe / "collections.json").write_text(
            json.dumps(
                {
                    "format": "must-collections-v1",
                    "format_version": 1,
                    "collections": [{"name": "a", "path": "../evil"}],
                }
            )
        )
        with pytest.raises(ValueError, match="unsafe save path"):
            CollectionManager.from_saved(unsafe)

        ghost = tmp_path / "ghost"
        ghost.mkdir()
        (ghost / "collections.json").write_text(
            json.dumps(
                {
                    "format": "must-collections-v1",
                    "format_version": 1,
                    "collections": [{"name": "a"}],
                }
            )
        )
        with pytest.raises(FileNotFoundError, match="segments missing"):
            CollectionManager.from_saved(ghost)

    def test_roundtrip_then_serve(self, tmp_path, queries):
        """A restored deployment serves every collection bit-identically
        to the manager that saved it."""
        manager = CollectionManager()
        manager.create("a", _segmented_must(seed=71))
        manager.create("b", _segmented_must(seed=72))
        root = tmp_path / "dep"
        manager.save(root)
        restored = CollectionManager.from_saved(root, builder=CHEAP_BUILDER)
        with restored.serve(ServiceConfig(max_batch=8, max_wait_ms=1.0)) as svc:
            for name in ("a", "b"):
                oracle = manager.get(name).must
                plan = SearchOptions(k=8, exact=True, collection=name)
                for q in queries[:4]:
                    assert_same_result(svc.search(q, plan), oracle.query(q, EXACT))
